//! # npf — Page Fault Support for Network Controllers, reproduced
//!
//! A deterministic-simulation reproduction of *Page Fault Support for
//! Network Controllers* (ASPLOS 2017) — the ODP paper. This facade
//! crate re-exports the workspace so examples and integration tests can
//! use one dependency; see the individual crates for the substance:
//!
//! * [`simcore`] — time, events, RNG, statistics
//! * [`memsim`] — host virtual memory (frames, demand paging, swap,
//!   reclaim, page cache, cgroups)
//! * [`iommu`] — I/O page tables, IOTLB, PRI-style fault reporting
//! * [`netsim`] — links, queues, flow control, switches
//! * [`tcpsim`] — a sans-IO TCP (the cold-ring dynamics live here)
//! * [`rdmasim`] — RC/UD queue pairs with RNR NACK
//! * [`nicsim`] — rings, DMA engine, the Figure-6 backup ring
//! * [`npf_core`] — **the paper's contribution**: the NPF engine,
//!   invalidation flow, backup-ring driver, and registration strategies
//! * [`workloads`] — memcached/memaslap, storage, MPI, streams
//! * [`testbed`] — the Ethernet pair and the InfiniBand cluster
//!
//! # Examples
//!
//! ```
//! use npf::prelude::*;
//!
//! let mm = MemoryManager::new(MemConfig::default());
//! let mut engine = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
//! let space = engine.memory_mut().create_space();
//! let channel = engine.create_channel(space);
//! let range = engine.memory_mut().mmap(space, ByteSize::mib(1), Backing::Anonymous)?;
//! assert!(!engine.dma_ready(channel, range.start.base(), 4096, true));
//! # Ok::<(), memsim::manager::MemError>(())
//! ```

pub use iommu;
pub use memsim;
pub use netsim;
pub use nicsim;
pub use npf_core;
pub use rdmasim;
pub use simcore;
pub use tcpsim;
pub use testbed;
pub use workloads;

/// The most common imports for driving the simulation.
pub mod prelude {
    pub use memsim::manager::{MemConfig, MemoryManager};
    pub use memsim::space::Backing;
    pub use npf_core::npf::{ArbiterPolicy, NpfConfig, NpfEngine};
    pub use npf_core::pinning::{Registrar, Strategy};
    pub use npf_core::{BackendKind, BackendSelect, SoftEmuConfig};
    pub use simcore::chaos::{ChaosConfig, ChaosEngine, ChaosProfile, InvariantChecker};
    pub use simcore::{Bandwidth, ByteSize, SimDuration, SimRng, SimTime};
    pub use testbed::builder::{ScenarioBuilder, ScenarioError};
    pub use testbed::eth::{EthConfig, EthTestbed, RxMode, TenantReport};
    pub use testbed::ib::{IbCluster, IbConfig};
}
