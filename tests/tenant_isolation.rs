//! Multi-tenant isolation: the cross-channel fault arbiter and the
//! partitioned backup-ring quota keep one tenant's load from eating
//! another tenant's resources.

use npf::prelude::*;
use npf::workloads::memcached::MemcachedConfig;

/// A skewed multi-tenant bed: `tenants` memcached instances on one
/// NIC, Zipf(1.2)-skewed connections, a small shared fault-slot pool,
/// and (optionally) a per-tenant backup quota.
fn skewed_bed(
    tenants: u32,
    policy: ArbiterPolicy,
    quota: Option<u64>,
    heavy_weight: u32,
    total_slots: u32,
) -> EthTestbed {
    let mut scenario = ScenarioBuilder::ethernet()
        .mode(RxMode::Backup)
        .instances(tenants)
        .conns_per_instance(2)
        .ring_entries(32)
        .bm_size(64)
        .backup_capacity(256)
        .host_memory(ByteSize::gib(1))
        .memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(8),
            ..MemcachedConfig::default()
        })
        .working_set_keys(2_000)
        .tenant_skew(1.2)
        .npf(
            NpfConfig::default()
                .with_arbiter(policy)
                .with_total_fault_slots(total_slots),
        )
        .seed(7);
    if let Some(q) = quota {
        scenario = scenario.backup_quota(q);
    }
    if heavy_weight > 1 {
        scenario = scenario.tenant_weight(0, heavy_weight);
    }
    scenario.build().expect("scenario validates")
}

#[test]
fn partitioned_quota_is_never_exceeded() {
    let quota = 8u64;
    let mut bed = skewed_bed(8, ArbiterPolicy::RoundRobin, Some(quota), 1, 8);
    bed.run_until(SimTime::from_millis(500));
    assert!(bed.total_ops() > 0, "tenants must make progress");
    let mut faults = 0;
    for i in 0..8 {
        let t = bed.tenant_report(i);
        faults += t.faults;
        assert!(
            t.backup_hwm <= quota,
            "tenant {i} exceeded its backup quota: hwm {} > {quota}",
            t.backup_hwm
        );
    }
    assert!(faults > 0, "cold rings must fault");
}

#[test]
fn arbiter_grants_every_tenant_under_contention() {
    let mut bed = skewed_bed(8, ArbiterPolicy::RoundRobin, None, 1, 8);
    bed.run_until(SimTime::from_millis(500));
    let mut queued = 0;
    for i in 0..8 {
        let t = bed.tenant_report(i);
        assert!(
            t.arb_grants > 0,
            "tenant {i} was starved of fault slots entirely"
        );
        queued += t.arb_queued;
    }
    assert!(
        queued > 0,
        "an 8-slot pool under 8 cold rings must see contention"
    );
}

#[test]
fn weighted_fair_bounds_light_tenant_starvation() {
    // Tenant 0 is heavy (weight 8 and the head of a strong Zipf skew)
    // and a tight cgroup keeps memory pressure on; the light tenants'
    // worst-case arbitration waits, summed, must not be worse under
    // weighted-fair than under round-robin, because WF reserves every
    // registered share instead of letting the heavy tenant flood the
    // pool. (The engine-level tests in npf-core pin the strict
    // per-fault ordering; this pins the property end to end.)
    let light_waits = |policy| {
        let mut bed = ScenarioBuilder::ethernet()
            .mode(RxMode::Backup)
            .instances(8)
            .conns_per_instance(2)
            .ring_entries(32)
            .bm_size(64)
            .backup_capacity(256)
            .host_memory(ByteSize::gib(1))
            .memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(8),
                ..MemcachedConfig::default()
            })
            .working_set_keys(20_000)
            .tenant_skew(1.5)
            .cgroup_limit(ByteSize::mib(24))
            .npf(
                NpfConfig::default()
                    .with_arbiter(policy)
                    .with_total_fault_slots(4),
            )
            .seed(7)
            .tenant_weight(0, 8)
            .build()
            .expect("scenario validates");
        bed.run_until(SimTime::from_millis(500));
        (1..8)
            .map(|i| bed.tenant_report(i).arb_max_wait)
            .fold(SimDuration::ZERO, |acc, w| acc + w)
    };
    let wf = light_waits(ArbiterPolicy::WeightedFair);
    let rr = light_waits(ArbiterPolicy::RoundRobin);
    assert!(
        wf <= rr,
        "weighted-fair must bound light-tenant waits: wf {wf:?} > rr {rr:?}"
    );
}

#[test]
fn tenant_reports_are_deterministic() {
    let run = || {
        let mut bed = skewed_bed(16, ArbiterPolicy::WeightedFair, Some(8), 4, 8);
        bed.run_until(SimTime::from_millis(300));
        (0..16).map(|i| bed.tenant_report(i)).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.ops, y.ops, "tenant {i} ops drifted");
        assert_eq!(x.faults, y.faults, "tenant {i} faults drifted");
        assert_eq!(x.arb_grants, y.arb_grants, "tenant {i} grants drifted");
        assert_eq!(x.arb_queued, y.arb_queued, "tenant {i} queueing drifted");
        assert_eq!(x.p99, y.p99, "tenant {i} p99 drifted");
    }
}
