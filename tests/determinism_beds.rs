//! Reproducibility: every testbed is bit-for-bit deterministic in its
//! seed.

use simcore::time::SimDuration;
use testbed::mpi_run::{run_collective, MpiRunConfig};
use testbed::storage_bed::{run_storage, StorageBedConfig};
use testbed::stream_eth::{run_stream, StreamBedConfig, StreamMode};

#[test]
fn stream_bed_is_deterministic() {
    let cfg = StreamBedConfig {
        fault_frequency: 1.0 / 2048.0,
        mode: StreamMode::Backup,
        duration: SimDuration::from_millis(200),
        ..StreamBedConfig::default()
    };
    let a = run_stream(cfg);
    let b = run_stream(cfg);
    assert_eq!(a.goodput_gbps.to_bits(), b.goodput_gbps.to_bits());
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.backup_packets, b.backup_packets);
}

#[test]
fn storage_bed_is_deterministic() {
    let cfg = StorageBedConfig {
        total_ios: 200,
        target_memory: simcore::ByteSize::gib(2),
        storage: workloads::storage::StorageConfig {
            lun_size: simcore::ByteSize::mib(256),
            total_chunks: 64,
            ..workloads::storage::StorageConfig::default()
        },
        pinned_headroom: simcore::ByteSize::ZERO,
        ..StorageBedConfig::default()
    };
    let a = run_storage(cfg).expect("run");
    let b = run_storage(cfg).expect("run");
    assert_eq!(a.bandwidth_gb_s.to_bits(), b.bandwidth_gb_s.to_bits());
    assert_eq!(a.resident, b.resident);
    assert_eq!(a.npf_events, b.npf_events);
}

#[test]
fn mpi_runner_is_deterministic() {
    let cfg = MpiRunConfig {
        ranks: 4,
        iterations: 6,
        ..MpiRunConfig::default()
    };
    let a = run_collective(cfg);
    let b = run_collective(cfg);
    assert_eq!(a.total, b.total);
    assert_eq!(a.npf_events, b.npf_events);
    assert_eq!(a.bytes_moved, b.bytes_moved);
}
