//! Differential ODP-backend conformance: the same scenarios run under
//! the firmware NPF path, the NP-RDMA-style software emulation, and
//! the pinned baseline must agree on everything the workload can see.
//!
//! The backends are free to differ in *how* a fault is serviced — and
//! therefore in timing, throughput, and servicing counters — but never
//! in correctness:
//!
//! - InfiniBand: exactly-once, in-order, byte-exact RC delivery, with
//!   the identical completion stream under every backend.
//! - Ethernet: the memcached service stays live (ops served, zero
//!   failed connections) and per-tenant backup quotas hold.
//! - Fault counts are explainable: every engine fault is booked to
//!   exactly one servicing path (`fw_npf_events`, `softemu_bounces`,
//!   or `pinned_unexpected_faults`), and the other paths' counters
//!   stay zero.
//!
//! The proptest-driven generator draws small random scenarios and
//! re-checks the invariants; a failing case prints its seed and
//! replays with `PROPTEST_SEED=<seed>`.

use npf::prelude::*;
use npf::rdmasim::types::{SendOp, WcStatus};
use npf::workloads::memcached::MemcachedConfig;
use proptest::prelude::*;

/// Every backend the suite must hold for, in artifact order.
const BACKENDS: [BackendKind; 3] = [
    BackendKind::Firmware,
    BackendKind::SoftEmu,
    BackendKind::Pinned,
];

/// Asserts the engine's fault total is booked to exactly the servicing
/// path `kind` owns, with the other paths' counters zero.
fn assert_explainable(kind: BackendKind, counters: &npf::simcore::stats::Counters, ctx: &str) {
    let faults = counters.get("npf_events");
    let fw = counters.get("fw_npf_events");
    let bounces = counters.get("softemu_bounces");
    let unexpected = counters.get("pinned_unexpected_faults");
    match kind {
        BackendKind::Firmware => {
            assert_eq!(fw, faults, "{ctx}: firmware must book every fault");
            assert_eq!(bounces, 0, "{ctx}: firmware must never bounce");
            assert_eq!(unexpected, 0, "{ctx}: firmware faults are expected");
        }
        BackendKind::SoftEmu => {
            assert_eq!(bounces, faults, "{ctx}: softemu must bounce every fault");
            assert_eq!(fw, 0, "{ctx}: softemu must raise no firmware NPF");
            assert_eq!(unexpected, 0, "{ctx}: softemu faults are expected");
        }
        BackendKind::Pinned => {
            assert_eq!(unexpected, faults, "{ctx}: pinned must book every fault");
            assert_eq!(bounces, 0, "{ctx}: pinned must never bounce");
        }
    }
}

/// One IB run: a fixed message pattern over cold ODP buffers, driven
/// to quiescence. Returns the workload-visible outcome — the receive
/// completion stream as `(wr_id, len, status-ok)` tuples — plus the
/// fault count for coverage assertions.
fn run_ib(kind: BackendKind, seed: u64) -> (Vec<(u64, u64, bool)>, u64) {
    const MSGS: u64 = 8;
    let mut c = ScenarioBuilder::infiniband()
        .nodes(2)
        .npf(NpfConfig::default().with_backend(BackendSelect::of(kind)))
        .seed(seed)
        .build()
        .expect("ib conformance scenario must validate");
    let (qa, qb) = c.connect(0, 1);
    let src = c.alloc_buffers(0, ByteSize::mib(1));
    let dst = c.alloc_buffers(1, ByteSize::mib(1));
    for i in 0..MSGS {
        c.post_recv(1, qb, 1000 + i, dst, 1 << 20);
    }
    for i in 0..MSGS {
        c.post_send(
            0,
            qa,
            i,
            SendOp::Send {
                local: src,
                len: (i + 1) * 4096,
            },
        );
    }
    c.run_until_quiescent(10_000_000);

    let send = c.drain_completions(0);
    let recv = c.drain_completions(1);
    assert_eq!(send.len() as u64, MSGS, "{kind:?}: send completions");
    assert_eq!(recv.len() as u64, MSGS, "{kind:?}: exactly-once delivery");
    let mut faults = 0;
    for n in 0..2 {
        let counters = c.node(n).engine().counters();
        assert_explainable(kind, counters, &format!("ib node {n} under {kind:?}"));
        faults += counters.get("npf_events");
    }
    let outcome = recv
        .iter()
        .map(|w| (w.wr_id, w.len, w.status == WcStatus::Success))
        .collect();
    (outcome, faults)
}

/// Cold ODP buffers must deliver the identical completion stream —
/// exactly-once, in-order, byte-exact — under all three backends, and
/// every backend's fault count must be explainable.
#[test]
fn ib_delivery_is_identical_across_backends() {
    let runs: Vec<_> = BACKENDS.iter().map(|&k| (k, run_ib(k, 7))).collect();
    for (kind, (outcome, faults)) in &runs {
        assert!(
            *faults > 0,
            "{kind:?}: cold buffers must fault, or the backend was never exercised"
        );
        for (i, (wr_id, len, ok)) in outcome.iter().enumerate() {
            assert_eq!(*wr_id, 1000 + i as u64, "{kind:?}: in-order delivery");
            assert_eq!(*len, (i as u64 + 1) * 4096, "{kind:?}: byte-exact delivery");
            assert!(ok, "{kind:?}: completion {i} failed");
        }
    }
    let (_, (reference, _)) = &runs[0];
    for (kind, (outcome, _)) in &runs[1..] {
        assert_eq!(
            outcome, reference,
            "{kind:?} delivered a different completion stream than {:?}",
            runs[0].0
        );
    }
}

/// One Ethernet run: the canonical multi-tenant backup-mode scenario.
/// Returns `(ops, faults)` after asserting liveness, quota, and
/// counter explainability.
fn run_eth(kind: BackendKind, seed: u64) -> (u64, u64) {
    let quota = 16u64;
    let mut bed = ScenarioBuilder::ethernet()
        .mode(RxMode::Backup)
        .instances(2)
        .conns_per_instance(2)
        .ring_entries(32)
        .bm_size(64)
        .backup_capacity(128)
        .backup_quota(quota)
        .host_memory(ByteSize::mib(256))
        .memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(8),
            ..MemcachedConfig::default()
        })
        .working_set_keys(500)
        .npf(NpfConfig::default().with_backend(BackendSelect::of(kind)))
        .seed(seed)
        .build()
        .expect("eth conformance scenario must validate");
    bed.run_until(SimTime::from_millis(100));

    assert_eq!(
        bed.total_failed_conns(),
        0,
        "{kind:?}: no connection may die"
    );
    assert!(
        bed.total_ops() > 100,
        "{kind:?}: the service must stay live: {} ops",
        bed.total_ops()
    );
    for i in 0..2 {
        let t = bed.tenant_report(i);
        assert!(
            t.backup_hwm <= quota,
            "{kind:?}: tenant {i} burst its quota: hwm {}",
            t.backup_hwm
        );
    }
    let counters = bed.engine().counters();
    assert_explainable(kind, counters, &format!("eth under {kind:?}"));
    // The NIC's receive path attributes bounced faults iff softemu.
    let bounced_rx = bed.rx_counters().get("bounced_fault");
    if kind == BackendKind::SoftEmu {
        assert!(bounced_rx > 0, "{kind:?}: rx must see bounced faults");
    } else {
        assert_eq!(bounced_rx, 0, "{kind:?}: rx must see no bounced faults");
    }
    (bed.total_ops(), counters.get("npf_events"))
}

/// The memcached service must stay live with quotas held under all
/// three backends, each backend must actually fault, and each run must
/// be deterministic in its seed.
#[test]
fn eth_service_conforms_under_every_backend() {
    for kind in BACKENDS {
        let (ops, faults) = run_eth(kind, 11);
        assert!(faults > 0, "{kind:?}: cold rings must fault");
        let (ops2, faults2) = run_eth(kind, 11);
        assert_eq!(
            (ops, faults),
            (ops2, faults2),
            "{kind:?}: a seed must replay bit-for-bit"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized scenarios: any small (tenants, connections, working
    /// set, seed) point must satisfy the conformance invariants under
    /// every backend. Failures print a seed replayable via
    /// `PROPTEST_SEED=<seed>`.
    #[test]
    fn random_scenarios_conform(
        instances in 1u32..3,
        conns in 1u32..3,
        keys in 200u64..600,
        seed in 1u64..1_000_000,
    ) {
        for kind in BACKENDS {
            let bed = ScenarioBuilder::ethernet()
                .mode(RxMode::Backup)
                .instances(instances)
                .conns_per_instance(conns)
                .ring_entries(32)
                .bm_size(64)
                .backup_capacity(128)
                .host_memory(ByteSize::mib(256))
                .memcached(MemcachedConfig {
                    max_bytes: ByteSize::mib(8),
                    ..MemcachedConfig::default()
                })
                .working_set_keys(keys)
                .npf(NpfConfig::default().with_backend(BackendSelect::of(kind)))
                .seed(seed)
                .build();
            let mut bed = match bed {
                Ok(bed) => bed,
                Err(e) => return Err(TestCaseError(format!("build failed under {kind:?}: {e}"))),
            };
            bed.run_until(SimTime::from_millis(50));
            prop_assert_eq!(bed.total_failed_conns(), 0);
            prop_assert!(
                bed.total_ops() > 0,
                "no progress under {:?} (instances={}, conns={}, keys={}, seed={})",
                kind, instances, conns, keys, seed
            );
            let c = bed.engine().counters();
            let faults = c.get("npf_events");
            let booked = c.get("fw_npf_events")
                + c.get("softemu_bounces")
                + c.get("pinned_unexpected_faults");
            prop_assert_eq!(
                faults, booked,
                "unexplained faults under {:?}: {} raised, {} booked",
                kind, faults, booked
            );
        }
    }
}
