//! Cross-crate integration: the InfiniBand cluster (rdmasim + memsim +
//! iommu + npf-core glued by testbed).

use memsim::types::PageRange;
use npf::prelude::*;
use rdmasim::types::{SendOp, WcOpcode, WcStatus};

fn pair() -> IbCluster {
    IbCluster::new(IbConfig::default().with_nodes(2))
}

#[test]
fn odp_send_faults_both_sides_and_completes() {
    let mut c = pair();
    let (qa, qb) = c.connect(0, 1);
    let src = c.alloc_buffers(0, ByteSize::mib(4));
    let dst = c.alloc_buffers(1, ByteSize::mib(4));
    c.post_recv(1, qb, 1, dst, 4 << 20);
    c.post_send(
        0,
        qa,
        2,
        SendOp::Send {
            local: src,
            len: 2 << 20,
        },
    );
    c.run_until_quiescent(2_000_000);
    let recv = c.drain_completions(1);
    assert_eq!(recv.len(), 1);
    assert_eq!(recv[0].status, WcStatus::Success);
    assert_eq!(recv[0].len, 2 << 20);
    // Send-side local fault and receive-side rNPF both happened.
    assert!(c.node(0).engine().counters().get("npf_events") >= 1);
    assert!(c.node(1).engine().counters().get("npf_events") >= 1);
    assert!(c.node(1).qp_stats(qb).rnr_nacks_sent >= 1);
    // And neither side pinned anything.
    let s0 = c.node(0).space();
    let s1 = c.node(1).space();
    assert_eq!(
        c.node(0).engine().memory().pinned_bytes(s0).unwrap(),
        ByteSize::ZERO
    );
    assert_eq!(
        c.node(1).engine().memory().pinned_bytes(s1).unwrap(),
        ByteSize::ZERO
    );
}

#[test]
fn warm_odp_equals_pinned_timing() {
    // After first touch, ODP transfers take the same time as pinned
    // ones: demand paging's steady state.
    let run = |pin: bool| {
        let mut c = pair();
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(1));
        let dst = c.alloc_buffers(1, ByteSize::mib(1));
        if pin {
            let da = c.node(0).domain_of(qa);
            let db = c.node(1).domain_of(qb);
            c.node_mut(0)
                .engine_mut()
                .pin_and_map(da, PageRange::covering(src, 1 << 20))
                .expect("pin");
            c.node_mut(1)
                .engine_mut()
                .pin_and_map(db, PageRange::covering(dst, 1 << 20))
                .expect("pin");
        }
        // Warm-up message.
        c.post_recv(1, qb, 1, dst, 1 << 20);
        c.post_send(
            0,
            qa,
            2,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        c.run_until_quiescent(2_000_000);
        c.drain_completions(1);
        // Timed message.
        let t0 = c.now();
        c.post_recv(1, qb, 3, dst, 1 << 20);
        c.post_send(
            0,
            qa,
            4,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        c.run_until_quiescent(2_000_000);
        c.now().saturating_since(t0)
    };
    let pinned = run(true);
    let odp = run(false);
    let ratio = odp.as_secs_f64() / pinned.as_secs_f64();
    assert!(
        (0.95..=1.05).contains(&ratio),
        "warm ODP must match pinned: {ratio:.3}"
    );
}

#[test]
fn differential_pinned_vs_odp_is_byte_identical() {
    // The paper's core claim, as a differential test: demand paging is
    // a transparent replacement for pinning. The same workload, run
    // once with every buffer pinned-and-mapped up front and once
    // relying purely on ODP, must produce the *identical* completion
    // stream — same wr_ids, same opcodes, same statuses, same lengths —
    // differing only in timing.
    let run = |pin: bool| {
        let mut c = pair();
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(4));
        let dst = c.alloc_buffers(1, ByteSize::mib(4));
        if pin {
            let da = c.node(0).domain_of(qa);
            let db = c.node(1).domain_of(qb);
            c.node_mut(0)
                .engine_mut()
                .pin_and_map(da, PageRange::covering(src, 4 << 20))
                .expect("pin src");
            c.node_mut(1)
                .engine_mut()
                .pin_and_map(db, PageRange::covering(dst, 4 << 20))
                .expect("pin dst");
        }
        const MSGS: u64 = 12;
        for i in 0..MSGS {
            c.post_recv(1, qb, 500 + i, dst, 4 << 20);
        }
        for i in 0..MSGS {
            // Varied sizes so a lost or re-segmented message shows up
            // as a length mismatch, not just a count mismatch.
            c.post_send(
                0,
                qa,
                i,
                SendOp::Send {
                    local: src,
                    len: (i + 1) * 64 * 1024,
                },
            );
        }
        c.run_until_quiescent(20_000_000);
        let faults = c.node(0).engine().counters().get("npf_events")
            + c.node(1).engine().counters().get("npf_events");
        let comps: Vec<_> = c
            .drain_completions(1)
            .iter()
            .map(|x| (x.wr_id, x.opcode, x.status, x.len))
            .collect();
        (comps, faults)
    };
    let (pinned, pinned_faults) = run(true);
    let (odp, odp_faults) = run(false);
    assert_eq!(pinned_faults, 0, "pinned path must never fault");
    assert!(odp_faults > 0, "the ODP path actually exercised NPFs");
    assert_eq!(
        pinned.len() as u64,
        12,
        "pinned run delivered every message"
    );
    assert_eq!(
        pinned, odp,
        "pinned and ODP must yield byte-identical completion streams"
    );
    let bytes: u64 = odp.iter().map(|&(_, _, _, len)| len).sum();
    assert_eq!(bytes, (1..=12).map(|i| i * 64 * 1024).sum::<u64>());
}

#[test]
fn rdma_read_initiator_fault_recovers_by_rewind() {
    let mut c = pair();
    let (qa, _qb) = c.connect(0, 1);
    let local = c.alloc_buffers(0, ByteSize::mib(2));
    let remote = c.alloc_buffers(1, ByteSize::mib(2));
    // Remote data resident (responder gather must not stall the test).
    for vpn in PageRange::covering(remote, 1 << 20).iter() {
        let s1 = c.node(1).space();
        c.node_mut(1)
            .engine_mut()
            .touch(s1, vpn, true)
            .expect("touch");
    }
    c.post_send(
        0,
        qa,
        9,
        SendOp::Read {
            local,
            remote,
            len: 1 << 20,
        },
    );
    c.run_until_quiescent(2_000_000);
    let comps = c.drain_completions(0);
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].opcode, WcOpcode::Read);
    assert_eq!(comps[0].status, WcStatus::Success);
    // The initiator's scatter faulted (cold local buffer) and recovered
    // by dropping + re-requesting (§4: no RNR for reads).
    assert!(
        c.node(0).qp_stats(qa).rx_dropped > 0,
        "read responses were dropped"
    );
    assert!(c.node(0).engine().counters().get("npf_events") >= 1);
}

#[test]
fn eight_node_all_pairs_traffic() {
    let mut c = IbCluster::new(IbConfig::default());
    let mut qps = Vec::new();
    for i in 0..8u32 {
        let j = (i + 1) % 8;
        let (qa, qb) = c.connect(i, j);
        let src = c.alloc_buffers(i, ByteSize::mib(1));
        let dst = c.alloc_buffers(j, ByteSize::mib(1));
        c.post_recv(j, qb, u64::from(i), dst, 1 << 20);
        c.post_send(
            i,
            qa,
            100 + u64::from(i),
            SendOp::Send {
                local: src,
                len: 256 * 1024,
            },
        );
        qps.push((i, j));
    }
    c.run_until_quiescent(5_000_000);
    for &(i, j) in &qps {
        let comps = c.drain_completions(j);
        assert!(
            comps.iter().any(|x| x.opcode == WcOpcode::Recv),
            "ring transfer {i}->{j} must complete"
        );
    }
}

#[test]
fn cluster_is_deterministic() {
    let run = || {
        let mut c = pair();
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(2));
        let dst = c.alloc_buffers(1, ByteSize::mib(2));
        for i in 0..8 {
            c.post_recv(1, qb, i, dst, 2 << 20);
        }
        for i in 0..8 {
            c.post_send(
                0,
                qa,
                100 + i,
                SendOp::Send {
                    local: src,
                    len: 128 * 1024,
                },
            );
        }
        c.run_until_quiescent(2_000_000);
        (c.now(), c.node(1).qp_stats(qb).data_packets_sent)
    };
    assert_eq!(run(), run());
}

#[test]
fn read_rnr_extension_works_through_the_cluster() {
    // §4's recommended extension, driven through the full cluster event
    // loop with synthetic initiator-side faults.
    use rdmasim::types::RcConfig;
    let rc = RcConfig {
        rnr_for_reads: true,
        ..RcConfig::default()
    };
    let mut c = IbCluster::new(IbConfig::default().with_nodes(2).with_rc(rc));
    let (qa, qb) = c.connect(0, 1);
    let local = c.alloc_buffers(0, ByteSize::mib(2));
    let remote = c.alloc_buffers(1, ByteSize::mib(2));
    let da = c.node(0).domain_of(qa);
    let db = c.node(1).domain_of(qb);
    c.node_mut(0)
        .engine_mut()
        .pin_and_map(da, PageRange::covering(local, 1 << 20))
        .expect("pin local");
    c.node_mut(1)
        .engine_mut()
        .pin_and_map(db, PageRange::covering(remote, 1 << 20))
        .expect("pin remote");
    c.set_synthetic_faults(0, 1.0 / 8.0, simcore::SimDuration::from_micros(220), 9);
    for i in 0..20 {
        c.post_send(
            0,
            qa,
            i,
            SendOp::Read {
                local,
                remote,
                len: 256 * 1024,
            },
        );
    }
    c.run_until_quiescent(5_000_000);
    let done = c
        .drain_completions(0)
        .iter()
        .filter(|x| x.opcode == WcOpcode::Read && x.status == WcStatus::Success)
        .count();
    assert_eq!(done, 20, "every read completes under the extension");
    assert!(
        c.node(0).qp_stats(qa).read_rnr_sent > 0,
        "the extension actually fired"
    );
}
