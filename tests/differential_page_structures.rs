//! Differential property tests for the translation fast-path data
//! structures: each optimized structure is driven op-for-op against a
//! straightforward map-based reference model, and every observable —
//! return values, counters, contents, and **eviction order** — must
//! match exactly.
//!
//! * [`memsim::dense::PageMap`] vs `BTreeMap` (including the
//!   direct/sparse boundary at 8 GiB of VA),
//! * [`iommu::IoTlb`] (two-level: run cache + LRU slab) vs a
//!   `Vec`-ordered reference LRU,
//! * [`memsim::lru::LruTracker`] (intrusive slab lists) vs a
//!   `VecDeque`-ordered reference.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use proptest::prelude::*;

use iommu::IoTlb;
use memsim::dense::PageMap;
use memsim::lru::LruTracker;
use memsim::types::{FrameId, PageRange, SpaceId, Vpn};

// ---------------------------------------------------------------------
// PageMap vs BTreeMap
// ---------------------------------------------------------------------

/// The direct region covers VPNs below `DIRECT_CHUNKS << LEAF_BITS`
/// (2^21). Bases are chosen so ops land well inside the direct region,
/// straddle the direct/sparse boundary, and live deep in the sparse
/// fallback.
fn page_map_vpn(region: u8, offset: u64) -> Vpn {
    let base = match region % 3 {
        0 => 0,
        1 => (1u64 << 21) - 300,
        _ => 1u64 << 30,
    };
    Vpn(base + offset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every op on a `PageMap` observes exactly what a `BTreeMap`
    /// observes, and the final iteration orders agree element-for-element.
    #[test]
    fn page_map_matches_btreemap(
        ops in proptest::collection::vec(
            (0u8..5, 0u8..3, 0u64..600, any::<u64>()),
            1..400,
        ),
    ) {
        let mut fast: PageMap<u64> = PageMap::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for &(op, region, offset, val) in &ops {
            let vpn = page_map_vpn(region, offset);
            match op {
                0 => {
                    prop_assert_eq!(fast.insert(vpn, val), reference.insert(vpn.0, val));
                }
                1 => {
                    prop_assert_eq!(fast.remove(vpn), reference.remove(&vpn.0));
                }
                2 => {
                    prop_assert_eq!(fast.get(vpn).copied(), reference.get(&vpn.0).copied());
                    prop_assert_eq!(fast.contains(vpn), reference.contains_key(&vpn.0));
                }
                3 => {
                    // A batched window scan sees exactly the reference
                    // contents, present and absent, in ascending order.
                    let pages = 1 + (val % 64);
                    let mut seen = Vec::new();
                    fast.scan_range(PageRange::new(vpn, pages), |v, t| {
                        seen.push((v.0, t.copied()));
                    });
                    let expect: Vec<(u64, Option<u64>)> = (vpn.0..vpn.0 + pages)
                        .map(|v| (v, reference.get(&v).copied()))
                        .collect();
                    prop_assert_eq!(seen, expect);
                }
                _ => {
                    let fast_v = *fast.get_mut_or_insert_with(vpn, || val);
                    let ref_v = *reference.entry(vpn.0).or_insert(val);
                    prop_assert_eq!(fast_v, ref_v);
                }
            }
            prop_assert_eq!(fast.len(), reference.len());
        }
        let fast_all: Vec<(u64, u64)> = fast.iter().map(|(v, &t)| (v.0, t)).collect();
        let ref_all: Vec<(u64, u64)> = reference.iter().map(|(&v, &t)| (v, t)).collect();
        prop_assert_eq!(fast_all, ref_all, "iteration order or contents diverged");
    }
}

// ---------------------------------------------------------------------
// IoTlb vs a Vec-ordered reference LRU
// ---------------------------------------------------------------------

type TlbKey = (u32, u64);

/// Reference model: recency as literal `Vec` order (oldest first).
#[derive(Default)]
struct RefTlb {
    cap: usize,
    entries: Vec<(TlbKey, (u64, bool))>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl RefTlb {
    fn new(cap: usize) -> Self {
        RefTlb {
            cap,
            ..RefTlb::default()
        }
    }

    fn pos(&self, key: TlbKey) -> Option<usize> {
        self.entries.iter().position(|&(k, _)| k == key)
    }

    fn lookup(&mut self, key: TlbKey) -> Option<(u64, bool)> {
        match self.pos(key) {
            Some(i) => {
                let e = self.entries.remove(i);
                self.entries.push(e);
                self.hits += 1;
                Some(e.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: TlbKey, val: (u64, bool)) {
        if let Some(i) = self.pos(key) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.cap {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, val));
    }

    fn refresh(&mut self, key: TlbKey, val: (u64, bool)) {
        if let Some(i) = self.pos(key) {
            self.entries[i].1 = val;
        }
    }

    fn invalidate(&mut self, key: TlbKey) -> bool {
        match self.pos(key) {
            Some(i) => {
                self.entries.remove(i);
                self.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn flush(&mut self) -> u64 {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.invalidations += n;
        n
    }

    fn invalidate_domain(&mut self, domain: u32) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|&((d, _), _)| d != domain);
        let n = (before - self.entries.len()) as u64;
        self.invalidations += n;
        n
    }

    fn contains(&self, key: TlbKey) -> bool {
        self.pos(key).is_some()
    }
}

const TLB_DOMAINS: u32 = 3;
const TLB_VPNS: u64 = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two-level IOTLB (per-domain run cache in front of the
    /// intrusive LRU slab) is observably identical to a flat reference
    /// LRU: same lookups, same counters, and the same eviction order —
    /// the present set is compared over the whole key universe after
    /// every operation.
    #[test]
    fn iotlb_matches_reference_lru(
        ops in proptest::collection::vec(
            (0u8..6, 0u32..TLB_DOMAINS, 0u64..TLB_VPNS, any::<bool>()),
            1..300,
        ),
    ) {
        let mut fast = IoTlb::new(8);
        let mut reference = RefTlb::new(8);
        for &(op, d, v, flag) in &ops {
            let domain = iommu::DomainId(d);
            let vpn = Vpn(v);
            // Contiguous frames (vpn + 100) exercise the run cache's
            // arithmetic extension; the offset variant breaks runs.
            let frame = if flag { v + 100 } else { v + 7000 + u64::from(d) };
            match op {
                0 => {
                    let got = fast.lookup_entry(domain, vpn).map(|e| (e.frame.0, e.writable));
                    prop_assert_eq!(got, reference.lookup((d, v)));
                }
                1 => {
                    fast.insert_pte(domain, vpn, FrameId(frame), flag);
                    reference.insert((d, v), (frame, flag));
                }
                2 => {
                    fast.refresh(domain, vpn, FrameId(frame), flag);
                    reference.refresh((d, v), (frame, flag));
                }
                3 => {
                    prop_assert_eq!(fast.invalidate(domain, vpn), reference.invalidate((d, v)));
                }
                4 => {
                    prop_assert_eq!(fast.invalidate_domain(domain), reference.invalidate_domain(d));
                }
                _ => {
                    // Rare full flush: weight it lightly by only acting
                    // when the op draw also set the flag.
                    if flag {
                        prop_assert_eq!(fast.flush(), reference.flush());
                    }
                }
            }
            prop_assert_eq!(fast.hits(), reference.hits);
            prop_assert_eq!(fast.misses(), reference.misses);
            prop_assert_eq!(fast.invalidations(), reference.invalidations);
            prop_assert_eq!(fast.evictions(), reference.evictions);
            prop_assert_eq!(fast.len(), reference.entries.len());
            // The full present set pins down the eviction order: any
            // deviation in which entry was evicted shows up here.
            for dd in 0..TLB_DOMAINS {
                for vv in 0..TLB_VPNS {
                    prop_assert_eq!(
                        fast.pte_cached(iommu::DomainId(dd), Vpn(vv)),
                        reference.contains((dd, vv)),
                        "present set diverged at dom{} vpn{}", dd, vv
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// LruTracker vs a VecDeque-ordered reference
// ---------------------------------------------------------------------

/// Reference model: recency as literal deque order (oldest first),
/// ticks assigned from the same monotone counter the tracker uses.
#[derive(Default)]
struct RefLru {
    entries: VecDeque<((u32, u64), u64)>,
    tick: u64,
}

impl RefLru {
    fn touch(&mut self, key: (u32, u64)) {
        self.entries.retain(|&(k, _)| k != key);
        self.tick += 1;
        self.entries.push_back((key, self.tick));
    }

    fn remove(&mut self, key: (u32, u64)) -> bool {
        let before = self.entries.len();
        self.entries.retain(|&(k, _)| k != key);
        self.entries.len() != before
    }

    fn pop_oldest(&mut self) -> Option<(u32, u64)> {
        self.entries.pop_front().map(|(k, _)| k)
    }

    fn pop_oldest_in(&mut self, space: u32) -> Option<u64> {
        let i = self.entries.iter().position(|&((s, _), _)| s == space)?;
        self.entries.remove(i).map(|((_, v), _)| v)
    }

    fn oldest_tick(&self) -> Option<u64> {
        self.entries.front().map(|&(_, t)| t)
    }

    fn oldest_tick_in(&self, space: u32) -> Option<u64> {
        self.entries
            .iter()
            .find(|&&((s, _), _)| s == space)
            .map(|&(_, t)| t)
    }

    fn len_in(&self, space: u32) -> usize {
        self.entries
            .iter()
            .filter(|&&((s, _), _)| s == space)
            .count()
    }
}

const LRU_SPACES: u32 = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The slab-list LRU tracker pops pages in exactly the reference
    /// order, globally and per space, with identical tick reporting.
    #[test]
    fn lru_tracker_matches_reference(
        ops in proptest::collection::vec(
            (0u8..5, 0u32..LRU_SPACES, 0u64..48),
            1..400,
        ),
    ) {
        let mut fast = LruTracker::new();
        let mut reference = RefLru::default();
        for &(op, s, v) in &ops {
            let space = SpaceId(s);
            let vpn = Vpn(v);
            match op {
                0 => {
                    fast.touch(space, vpn);
                    reference.touch((s, v));
                }
                1 => {
                    prop_assert_eq!(fast.remove(space, vpn), reference.remove((s, v)));
                }
                2 => {
                    let got = fast.pop_oldest().map(|(sp, vp)| (sp.0, vp.0));
                    prop_assert_eq!(got, reference.pop_oldest(), "global eviction order diverged");
                }
                3 => {
                    let got = fast.pop_oldest_in(space).map(|vp| vp.0);
                    prop_assert_eq!(got, reference.pop_oldest_in(s), "per-space eviction order diverged");
                }
                _ => {
                    prop_assert_eq!(fast.contains(space, vpn), reference.entries.iter().any(|&(k, _)| k == (s, v)));
                }
            }
            prop_assert_eq!(fast.oldest_tick(), reference.oldest_tick());
            prop_assert_eq!(fast.len(), reference.entries.len());
            for sp in 0..LRU_SPACES {
                prop_assert_eq!(fast.oldest_tick_in(SpaceId(sp)), reference.oldest_tick_in(sp));
                prop_assert_eq!(fast.len_in(SpaceId(sp)), reference.len_in(sp));
            }
        }
        // Drain fully: the complete eviction sequence must agree.
        loop {
            let got = fast.pop_oldest().map(|(sp, vp)| (sp.0, vp.0));
            let want = reference.pop_oldest();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}
