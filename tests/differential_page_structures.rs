//! Differential property tests for the translation fast-path data
//! structures: each optimized structure is driven op-for-op against a
//! straightforward map-based reference model, and every observable —
//! return values, counters, contents, and **eviction order** — must
//! match exactly.
//!
//! * [`memsim::dense::PageMap`] vs `BTreeMap` (including the
//!   direct/sparse boundary at 8 GiB of VA),
//! * [`iommu::IoTlb`] (two-level: run cache + LRU slab) vs a
//!   `Vec`-ordered reference LRU,
//! * [`memsim::lru::LruTracker`] (intrusive slab lists) vs a
//!   `VecDeque`-ordered reference,
//! * huge-page [`iommu::IoPageTable`] (2 MiB folds, promote/demote) vs
//!   a flat 4 KiB-only `BTreeMap` reference,
//! * [`iommu::IoTlb`] superpage store (FIFO eviction, shadow drops) vs
//!   a `Vec`-ordered reference,
//! * a huge-enabled [`iommu::Iommu`] vs a 4 KiB-only unit: DMA verdicts
//!   must be identical — folding is a pure performance transform.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use proptest::prelude::*;

use iommu::pagetable::HUGE_PAGES;
use iommu::{DmaCheck, IoPageTable, IoTlb, Iommu, TableMode, Translation};
use memsim::dense::PageMap;
use memsim::lru::LruTracker;
use memsim::types::{FrameId, PageRange, SpaceId, Vpn};

// ---------------------------------------------------------------------
// PageMap vs BTreeMap
// ---------------------------------------------------------------------

/// The direct region covers VPNs below `DIRECT_CHUNKS << LEAF_BITS`
/// (2^21). Bases are chosen so ops land well inside the direct region,
/// straddle the direct/sparse boundary, and live deep in the sparse
/// fallback.
fn page_map_vpn(region: u8, offset: u64) -> Vpn {
    let base = match region % 3 {
        0 => 0,
        1 => (1u64 << 21) - 300,
        _ => 1u64 << 30,
    };
    Vpn(base + offset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every op on a `PageMap` observes exactly what a `BTreeMap`
    /// observes, and the final iteration orders agree element-for-element.
    #[test]
    fn page_map_matches_btreemap(
        ops in proptest::collection::vec(
            (0u8..5, 0u8..3, 0u64..600, any::<u64>()),
            1..400,
        ),
    ) {
        let mut fast: PageMap<u64> = PageMap::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for &(op, region, offset, val) in &ops {
            let vpn = page_map_vpn(region, offset);
            match op {
                0 => {
                    prop_assert_eq!(fast.insert(vpn, val), reference.insert(vpn.0, val));
                }
                1 => {
                    prop_assert_eq!(fast.remove(vpn), reference.remove(&vpn.0));
                }
                2 => {
                    prop_assert_eq!(fast.get(vpn).copied(), reference.get(&vpn.0).copied());
                    prop_assert_eq!(fast.contains(vpn), reference.contains_key(&vpn.0));
                }
                3 => {
                    // A batched window scan sees exactly the reference
                    // contents, present and absent, in ascending order.
                    let pages = 1 + (val % 64);
                    let mut seen = Vec::new();
                    fast.scan_range(PageRange::new(vpn, pages), |v, t| {
                        seen.push((v.0, t.copied()));
                    });
                    let expect: Vec<(u64, Option<u64>)> = (vpn.0..vpn.0 + pages)
                        .map(|v| (v, reference.get(&v).copied()))
                        .collect();
                    prop_assert_eq!(seen, expect);
                }
                _ => {
                    let fast_v = *fast.get_mut_or_insert_with(vpn, || val);
                    let ref_v = *reference.entry(vpn.0).or_insert(val);
                    prop_assert_eq!(fast_v, ref_v);
                }
            }
            prop_assert_eq!(fast.len(), reference.len());
        }
        let fast_all: Vec<(u64, u64)> = fast.iter().map(|(v, &t)| (v.0, t)).collect();
        let ref_all: Vec<(u64, u64)> = reference.iter().map(|(&v, &t)| (v, t)).collect();
        prop_assert_eq!(fast_all, ref_all, "iteration order or contents diverged");
    }
}

// ---------------------------------------------------------------------
// IoTlb vs a Vec-ordered reference LRU
// ---------------------------------------------------------------------

type TlbKey = (u32, u64);

/// Reference model: recency as literal `Vec` order (oldest first).
#[derive(Default)]
struct RefTlb {
    cap: usize,
    entries: Vec<(TlbKey, (u64, bool))>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl RefTlb {
    fn new(cap: usize) -> Self {
        RefTlb {
            cap,
            ..RefTlb::default()
        }
    }

    fn pos(&self, key: TlbKey) -> Option<usize> {
        self.entries.iter().position(|&(k, _)| k == key)
    }

    fn lookup(&mut self, key: TlbKey) -> Option<(u64, bool)> {
        match self.pos(key) {
            Some(i) => {
                let e = self.entries.remove(i);
                self.entries.push(e);
                self.hits += 1;
                Some(e.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: TlbKey, val: (u64, bool)) {
        if let Some(i) = self.pos(key) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.cap {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, val));
    }

    fn refresh(&mut self, key: TlbKey, val: (u64, bool)) {
        if let Some(i) = self.pos(key) {
            self.entries[i].1 = val;
        }
    }

    fn invalidate(&mut self, key: TlbKey) -> bool {
        match self.pos(key) {
            Some(i) => {
                self.entries.remove(i);
                self.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn flush(&mut self) -> u64 {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.invalidations += n;
        n
    }

    fn invalidate_domain(&mut self, domain: u32) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|&((d, _), _)| d != domain);
        let n = (before - self.entries.len()) as u64;
        self.invalidations += n;
        n
    }

    fn contains(&self, key: TlbKey) -> bool {
        self.pos(key).is_some()
    }
}

const TLB_DOMAINS: u32 = 3;
const TLB_VPNS: u64 = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two-level IOTLB (per-domain run cache in front of the
    /// intrusive LRU slab) is observably identical to a flat reference
    /// LRU: same lookups, same counters, and the same eviction order —
    /// the present set is compared over the whole key universe after
    /// every operation.
    #[test]
    fn iotlb_matches_reference_lru(
        ops in proptest::collection::vec(
            (0u8..6, 0u32..TLB_DOMAINS, 0u64..TLB_VPNS, any::<bool>()),
            1..300,
        ),
    ) {
        let mut fast = IoTlb::new(8);
        let mut reference = RefTlb::new(8);
        for &(op, d, v, flag) in &ops {
            let domain = iommu::DomainId(d);
            let vpn = Vpn(v);
            // Contiguous frames (vpn + 100) exercise the run cache's
            // arithmetic extension; the offset variant breaks runs.
            let frame = if flag { v + 100 } else { v + 7000 + u64::from(d) };
            match op {
                0 => {
                    let got = fast.lookup_entry(domain, vpn).map(|e| (e.frame.0, e.writable));
                    prop_assert_eq!(got, reference.lookup((d, v)));
                }
                1 => {
                    fast.insert_pte(domain, vpn, FrameId(frame), flag);
                    reference.insert((d, v), (frame, flag));
                }
                2 => {
                    fast.refresh(domain, vpn, FrameId(frame), flag);
                    reference.refresh((d, v), (frame, flag));
                }
                3 => {
                    prop_assert_eq!(fast.invalidate(domain, vpn), reference.invalidate((d, v)));
                }
                4 => {
                    prop_assert_eq!(fast.invalidate_domain(domain), reference.invalidate_domain(d));
                }
                _ => {
                    // Rare full flush: weight it lightly by only acting
                    // when the op draw also set the flag.
                    if flag {
                        prop_assert_eq!(fast.flush(), reference.flush());
                    }
                }
            }
            prop_assert_eq!(fast.hits(), reference.hits);
            prop_assert_eq!(fast.misses(), reference.misses);
            prop_assert_eq!(fast.invalidations(), reference.invalidations);
            prop_assert_eq!(fast.evictions(), reference.evictions);
            prop_assert_eq!(fast.len(), reference.entries.len());
            // The full present set pins down the eviction order: any
            // deviation in which entry was evicted shows up here.
            for dd in 0..TLB_DOMAINS {
                for vv in 0..TLB_VPNS {
                    prop_assert_eq!(
                        fast.pte_cached(iommu::DomainId(dd), Vpn(vv)),
                        reference.contains((dd, vv)),
                        "present set diverged at dom{} vpn{}", dd, vv
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// LruTracker vs a VecDeque-ordered reference
// ---------------------------------------------------------------------

/// Reference model: recency as literal deque order (oldest first),
/// ticks assigned from the same monotone counter the tracker uses.
#[derive(Default)]
struct RefLru {
    entries: VecDeque<((u32, u64), u64)>,
    tick: u64,
}

impl RefLru {
    fn touch(&mut self, key: (u32, u64)) {
        self.entries.retain(|&(k, _)| k != key);
        self.tick += 1;
        self.entries.push_back((key, self.tick));
    }

    fn remove(&mut self, key: (u32, u64)) -> bool {
        let before = self.entries.len();
        self.entries.retain(|&(k, _)| k != key);
        self.entries.len() != before
    }

    fn pop_oldest(&mut self) -> Option<(u32, u64)> {
        self.entries.pop_front().map(|(k, _)| k)
    }

    fn pop_oldest_in(&mut self, space: u32) -> Option<u64> {
        let i = self.entries.iter().position(|&((s, _), _)| s == space)?;
        self.entries.remove(i).map(|((_, v), _)| v)
    }

    fn oldest_tick(&self) -> Option<u64> {
        self.entries.front().map(|&(_, t)| t)
    }

    fn oldest_tick_in(&self, space: u32) -> Option<u64> {
        self.entries
            .iter()
            .find(|&&((s, _), _)| s == space)
            .map(|&(_, t)| t)
    }

    fn len_in(&self, space: u32) -> usize {
        self.entries
            .iter()
            .filter(|&&((s, _), _)| s == space)
            .count()
    }
}

const LRU_SPACES: u32 = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The slab-list LRU tracker pops pages in exactly the reference
    /// order, globally and per space, with identical tick reporting.
    #[test]
    fn lru_tracker_matches_reference(
        ops in proptest::collection::vec(
            (0u8..5, 0u32..LRU_SPACES, 0u64..48),
            1..400,
        ),
    ) {
        let mut fast = LruTracker::new();
        let mut reference = RefLru::default();
        for &(op, s, v) in &ops {
            let space = SpaceId(s);
            let vpn = Vpn(v);
            match op {
                0 => {
                    fast.touch(space, vpn);
                    reference.touch((s, v));
                }
                1 => {
                    prop_assert_eq!(fast.remove(space, vpn), reference.remove((s, v)));
                }
                2 => {
                    let got = fast.pop_oldest().map(|(sp, vp)| (sp.0, vp.0));
                    prop_assert_eq!(got, reference.pop_oldest(), "global eviction order diverged");
                }
                3 => {
                    let got = fast.pop_oldest_in(space).map(|vp| vp.0);
                    prop_assert_eq!(got, reference.pop_oldest_in(s), "per-space eviction order diverged");
                }
                _ => {
                    prop_assert_eq!(fast.contains(space, vpn), reference.entries.iter().any(|&(k, _)| k == (s, v)));
                }
            }
            prop_assert_eq!(fast.oldest_tick(), reference.oldest_tick());
            prop_assert_eq!(fast.len(), reference.entries.len());
            for sp in 0..LRU_SPACES {
                prop_assert_eq!(fast.oldest_tick_in(SpaceId(sp)), reference.oldest_tick_in(sp));
                prop_assert_eq!(fast.len_in(SpaceId(sp)), reference.len_in(sp));
            }
        }
        // Drain fully: the complete eviction sequence must agree.
        loop {
            let got = fast.pop_oldest().map(|(sp, vp)| (sp.0, vp.0));
            let want = reference.pop_oldest();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Huge-page IoPageTable vs a 4 KiB-only flat reference
// ---------------------------------------------------------------------

/// Chunks the huge-table universe spans: enough to fold several 2 MiB
/// leaves while unmaps split them back.
const HP_CHUNKS: u64 = 3;

/// Contiguous-frame scheme: `vpn`'s "natural" frame. A chunk mapped
/// entirely through this scheme (uniform writability) is fold-eligible.
fn natural_frame(vpn: u64) -> u64 {
    10_000 + vpn
}

/// Scattered-frame scheme: breaks contiguity, so a chunk holding any of
/// these can never fold.
fn scattered_frame(vpn: u64) -> u64 {
    100_000 + vpn * 3
}

/// `true` when the reference says `chunk` satisfies the fold invariant:
/// all 512 siblings present, frames contiguous from the aligned base,
/// uniform writability.
fn ref_chunk_eligible(entries: &BTreeMap<u64, (u64, bool)>, chunk: u64) -> bool {
    let base = chunk * HUGE_PAGES;
    let Some(&(f0, w0)) = entries.get(&base) else {
        return false;
    };
    (1..HUGE_PAGES).all(|i| entries.get(&(base + i)) == Some(&(f0 + i, w0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A huge-enabled page table is observably a plain 4 KiB table: maps,
    /// unmaps, translations, and probes all match a flat `BTreeMap`
    /// reference exactly, while folding stays an internal transform.
    /// Additionally the fold state itself is pinned: a chunk is folded
    /// *iff* the reference says it is fold-eligible, and
    /// `promotions - demotions` always equals the live fold count.
    #[test]
    fn huge_page_table_matches_flat_reference(
        ops in proptest::collection::vec(
            (0u8..6, 0u64..HP_CHUNKS, 0u64..HUGE_PAGES, 1u64..96, any::<bool>(), any::<bool>()),
            1..160,
        ),
    ) {
        let universe = HP_CHUNKS * HUGE_PAGES;
        let mut fast = IoPageTable::new(iommu::DomainId(0), TableMode::PageFaultCapable);
        fast.set_huge_pages(true);
        let mut reference: BTreeMap<u64, (u64, bool)> = BTreeMap::new();
        let mut ref_faults = 0u64;
        for &(op, chunk, offset, len, flag, contiguous) in &ops {
            let v = chunk * HUGE_PAGES + offset;
            match op {
                0 => {
                    // Single-page map, either frame scheme.
                    let frame = if contiguous { natural_frame(v) } else { scattered_frame(v) };
                    fast.map(Vpn(v), FrameId(frame), flag);
                    reference.insert(v, (frame, flag));
                }
                1 => {
                    // A contiguous run — partial chunk fills that later
                    // maps may complete into a fold.
                    let end = (v + len).min(universe);
                    for p in v..end {
                        fast.map(Vpn(p), FrameId(natural_frame(p)), flag);
                        reference.insert(p, (natural_frame(p), flag));
                    }
                }
                2 => {
                    // Map the whole chunk fold-eligibly: this must always
                    // leave it folded (promotion is deterministic).
                    let base = chunk * HUGE_PAGES;
                    for p in base..base + HUGE_PAGES {
                        fast.map(Vpn(p), FrameId(natural_frame(p)), flag);
                        reference.insert(p, (natural_frame(p), flag));
                    }
                    prop_assert!(fast.is_huge(Vpn(base)), "eligible chunk {} did not fold", chunk);
                }
                3 => {
                    prop_assert_eq!(fast.unmap(Vpn(v)), reference.remove(&v).is_some());
                }
                4 => {
                    let end = (v + len).min(universe);
                    let range = PageRange::new(Vpn(v), end - v);
                    let want = (v..end).filter(|p| reference.remove(p).is_some()).count() as u64;
                    prop_assert_eq!(fast.unmap_range(range), want);
                }
                _ => {
                    // Translate for read (flag=false) or write (flag=true).
                    let want = match reference.get(&v) {
                        Some(&(_, w)) if flag && !w => Translation::Error,
                        Some(&(f, _)) => Translation::Ok(FrameId(f)),
                        None => {
                            ref_faults += 1;
                            Translation::Fault
                        }
                    };
                    prop_assert_eq!(fast.translate(Vpn(v), flag), want);
                    // Probes are side-effect-free and must agree too.
                    let end = (v + len).min(universe);
                    let range = PageRange::new(Vpn(v), end - v);
                    let want_probe = (v..end).all(|p| {
                        reference.get(&p).is_some_and(|&(_, w)| !flag || w)
                    });
                    prop_assert_eq!(fast.probe_range(range, flag), want_probe);
                }
            }
            prop_assert_eq!(fast.present_pages(), reference.len());
            prop_assert_eq!(fast.faults(), ref_faults);
            // Fold state == reference eligibility, chunk by chunk, and the
            // promote/demote counters account for every live fold.
            let mut folded = 0u64;
            for c in 0..HP_CHUNKS {
                let eligible = ref_chunk_eligible(&reference, c);
                prop_assert_eq!(
                    fast.is_huge(Vpn(c * HUGE_PAGES)),
                    eligible,
                    "fold state diverged at chunk {}", c
                );
                folded += u64::from(eligible);
            }
            prop_assert_eq!(fast.promotions() - fast.demotions(), folded);
        }
        // Full synthesized-PTE sweep: folded chunks must serve per-page
        // translations identical to the flat reference.
        for v in 0..universe {
            let got = fast.pte(Vpn(v)).map(|p| (p.frame.0, p.writable));
            prop_assert_eq!(got, reference.get(&v).copied(), "PTE sweep diverged at vpn {}", v);
        }
    }
}

// ---------------------------------------------------------------------
// IoTlb superpage store vs a Vec-ordered FIFO reference
// ---------------------------------------------------------------------

/// Reference model of the TLB's superpage tier: FIFO order as literal
/// `Vec` order (oldest first), alongside the surviving 4 KiB present
/// set. Frames follow one fixed per-(domain, chunk) scheme so every
/// lookup path (run cache, level-0 super, hash index, super store)
/// synthesizes the same entry — the *presence* and *order* observables
/// are what this model pins down.
#[derive(Default)]
struct RefSuperTlb {
    cap: usize,
    supers: Vec<((u32, u64), u64)>,
    fourk: Vec<(u32, u64)>,
    invalidations: u64,
    evictions: u64,
}

impl RefSuperTlb {
    fn super_pos(&self, key: (u32, u64)) -> Option<usize> {
        self.supers.iter().position(|&(k, _)| k == key)
    }

    fn insert_super(&mut self, d: u32, chunk: u64, frame0: u64) {
        match self.super_pos((d, chunk)) {
            Some(i) => self.supers[i].1 = frame0,
            None => {
                if self.supers.len() >= self.cap {
                    self.supers.remove(0);
                    self.evictions += 1;
                }
                self.supers.push(((d, chunk), frame0));
            }
        }
        // Shadowed 4 KiB entries drop silently (still servable through
        // the fold), so they never count as invalidations.
        self.fourk
            .retain(|&(dd, v)| dd != d || v / HUGE_PAGES != chunk);
    }

    fn insert_pte(&mut self, d: u32, v: u64) {
        if !self.fourk.contains(&(d, v)) {
            self.fourk.push((d, v));
        }
    }

    fn invalidate(&mut self, d: u32, v: u64) -> bool {
        let mut dropped = false;
        if let Some(i) = self.super_pos((d, v / HUGE_PAGES)) {
            self.supers.remove(i);
            self.invalidations += 1;
            dropped = true;
        }
        if let Some(i) = self.fourk.iter().position(|&k| k == (d, v)) {
            self.fourk.remove(i);
            self.invalidations += 1;
            dropped = true;
        }
        dropped
    }

    fn lookup(&self, d: u32, v: u64) -> Option<u64> {
        if self.fourk.contains(&(d, v)) {
            return Some(super_frame0(d, v / HUGE_PAGES) + v % HUGE_PAGES);
        }
        self.super_pos((d, v / HUGE_PAGES))
            .map(|i| self.supers[i].1 + v % HUGE_PAGES)
    }
}

/// The one frame scheme of the superpage differential: every chunk's
/// base frame, from which both 4 KiB and superpage entries derive.
fn super_frame0(d: u32, chunk: u64) -> u64 {
    50_000 + u64::from(d) * 10_000 + chunk * HUGE_PAGES
}

const SUPER_DOMAINS: u32 = 2;
const SUPER_CHUNKS: u64 = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The superpage tier of the IOTLB behaves exactly like a FIFO
    /// reference: insertion order decides eviction, re-inserting a cached
    /// chunk refreshes in place without moving it, shadowed 4 KiB entries
    /// drop silently, and invalidating any covered page drops the fold.
    /// `IoTlb::new(64)` gives a super-capacity of 8, so 2x12 candidate
    /// chunks force steady FIFO eviction.
    #[test]
    fn iotlb_superpage_store_matches_fifo_reference(
        ops in proptest::collection::vec(
            (0u8..5, 0u32..SUPER_DOMAINS, 0u64..SUPER_CHUNKS, 0u64..HUGE_PAGES, 1u64..700),
            1..250,
        ),
    ) {
        let mut fast = IoTlb::new(64);
        let mut reference = RefSuperTlb { cap: 8, ..RefSuperTlb::default() };
        for &(op, d, chunk, offset, len) in &ops {
            let domain = iommu::DomainId(d);
            let v = chunk * HUGE_PAGES + offset;
            match op {
                0 => {
                    let base = Vpn(chunk * HUGE_PAGES);
                    fast.insert_super(domain, base, FrameId(super_frame0(d, chunk)), true);
                    reference.insert_super(d, chunk, super_frame0(d, chunk));
                }
                1 => {
                    fast.insert_pte(domain, Vpn(v), FrameId(super_frame0(d, chunk) + offset), true);
                    reference.insert_pte(d, v);
                }
                2 => {
                    prop_assert_eq!(fast.invalidate(domain, Vpn(v)), reference.invalidate(d, v));
                }
                3 => {
                    let end = (v + len).min(SUPER_CHUNKS * HUGE_PAGES);
                    let range = PageRange::new(Vpn(v), end - v);
                    let want = (v..end).filter(|&p| reference.invalidate(d, p)).count() as u64;
                    prop_assert_eq!(fast.invalidate_range(domain, range), want);
                }
                _ => {
                    let got = fast.lookup_entry(domain, Vpn(v)).map(|e| e.frame.0);
                    prop_assert_eq!(got, reference.lookup(d, v), "lookup diverged at dom{} vpn{}", d, v);
                }
            }
            prop_assert_eq!(fast.super_len(), reference.supers.len());
            prop_assert_eq!(fast.len(), reference.fourk.len());
            prop_assert_eq!(fast.invalidations(), reference.invalidations);
            prop_assert_eq!(fast.evictions(), reference.evictions);
            // The full present set pins the FIFO eviction order: evicting
            // the wrong superpage shows up as a divergence here.
            for dd in 0..SUPER_DOMAINS {
                for cc in 0..SUPER_CHUNKS {
                    prop_assert_eq!(
                        fast.super_cached(iommu::DomainId(dd), Vpn(cc * HUGE_PAGES)),
                        reference.super_pos((dd, cc)).is_some(),
                        "superpage present set diverged at dom{} chunk{}", dd, cc
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Huge-enabled Iommu vs a 4 KiB-only unit: identical DMA verdicts
// ---------------------------------------------------------------------

/// Normalizes a [`DmaCheck`] for cross-unit comparison: request ids are
/// per-unit allocator state, so faults compare by (vpn, write) only.
fn dma_verdict(check: &DmaCheck) -> (u8, u64, bool) {
    match check {
        DmaCheck::Ok(frame) => (0, frame.0, false),
        DmaCheck::Fault(req) => (1, req.vpn.0, req.write),
        DmaCheck::Error => (2, 0, false),
    }
}

const UNIT_CHUNKS: u64 = 2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Folding is translation-transparent end to end: a huge-enabled
    /// IOMMU (page-table folds + IOTLB superpages + TLB coherence on
    /// invalidate) returns exactly the DMA verdicts of a 4 KiB-only
    /// unit under any interleaving of maps, batched maps, invalidations,
    /// and checks. Only the performance counters may differ.
    #[test]
    fn huge_iommu_matches_plain_iommu_verdicts(
        ops in proptest::collection::vec(
            (0u8..6, 0u64..UNIT_CHUNKS, 0u64..HUGE_PAGES, 1u64..600, any::<bool>(), any::<bool>()),
            1..120,
        ),
    ) {
        let universe = UNIT_CHUNKS * HUGE_PAGES;
        let mut huge = Iommu::new(256);
        huge.set_huge_pages(true);
        let mut plain = Iommu::new(256);
        let dh = huge.create_domain(TableMode::PageFaultCapable);
        let dp = plain.create_domain(TableMode::PageFaultCapable);
        for &(op, chunk, offset, len, flag, contiguous) in &ops {
            let v = chunk * HUGE_PAGES + offset;
            match op {
                0 => {
                    let frame = if contiguous { natural_frame(v) } else { scattered_frame(v) };
                    huge.map(dh, Vpn(v), FrameId(frame), flag);
                    plain.map(dp, Vpn(v), FrameId(frame), flag);
                }
                1 => {
                    // Batched contiguous map — the fold-triggering path.
                    let end = (v + len).min(universe);
                    let mappings: Vec<(Vpn, FrameId)> =
                        (v..end).map(|p| (Vpn(p), FrameId(natural_frame(p)))).collect();
                    huge.map_batch(dh, &mappings, flag);
                    plain.map_batch(dp, &mappings, flag);
                }
                2 => {
                    prop_assert_eq!(huge.invalidate(dh, Vpn(v)), plain.invalidate(dp, Vpn(v)));
                }
                3 => {
                    let end = (v + len).min(universe);
                    let range = PageRange::new(Vpn(v), end - v);
                    prop_assert_eq!(huge.invalidate_range(dh, range), plain.invalidate_range(dp, range));
                }
                4 => {
                    let got = dma_verdict(&huge.check_dma(dh, Vpn(v), flag));
                    let want = dma_verdict(&plain.check_dma(dp, Vpn(v), flag));
                    prop_assert_eq!(got, want, "DMA verdict diverged at vpn {}", v);
                }
                _ => {
                    let end = (v + len).min(universe);
                    let range = PageRange::new(Vpn(v), end - v);
                    prop_assert_eq!(
                        huge.probe_range(dh, range, flag),
                        plain.probe_range(dp, range, flag)
                    );
                }
            }
            // Per-page probe sweep of the op's chunk: presence and
            // permissions must agree page-for-page right away.
            let base = chunk * HUGE_PAGES;
            for p in base..base + HUGE_PAGES {
                let one = PageRange::new(Vpn(p), 1);
                prop_assert_eq!(
                    huge.probe_range(dh, one, false),
                    plain.probe_range(dp, one, false),
                    "read probe diverged at vpn {}", p
                );
                prop_assert_eq!(
                    huge.probe_range(dh, one, true),
                    plain.probe_range(dp, one, true),
                    "write probe diverged at vpn {}", p
                );
            }
        }
        // Closing sweep over the whole universe, plus the fold ledger:
        // promotions minus demotions is the live fold count.
        let (promos, demos) = huge.huge_stats();
        prop_assert!(promos >= demos);
        for p in 0..universe {
            let one = PageRange::new(Vpn(p), 1);
            prop_assert_eq!(huge.probe_range(dh, one, false), plain.probe_range(dp, one, false));
            prop_assert_eq!(huge.probe_range(dh, one, true), plain.probe_range(dp, one, true));
        }
        let (p2, d2) = plain.huge_stats();
        prop_assert_eq!((p2, d2), (0, 0), "huge-disabled unit must never fold");
    }
}
