//! The chaos sweep: both end-to-end testbeds driven under seeded fault
//! injection, with the global invariant checker installed for every
//! run.
//!
//! Each run installs a fresh [`InvariantChecker`], builds a testbed
//! with a per-class [`ChaosProfile`], drives a workload, and asserts
//!
//! - zero invariant violations (including `finish()`'s check that every
//!   raised NPF resolved),
//! - exactly-once, in-order, byte-exact delivery despite drops,
//!   duplicates, reordering, corruption, interrupt loss, NPF delays,
//!   eviction storms, and IOTLB shootdowns,
//! - that the sweep as a whole exercised every fault class (so a
//!   regression that silently disables an injection point fails here).
//!
//! `CHAOS_SEED_BASE` shifts every seed, letting CI sweep disjoint seed
//! ranges per matrix job. A failing seed is printed in the assertion
//! message; `EXPERIMENTS.md` describes how to replay it.
//!
//! `CHAOS_JOBS` fans the sweep's cells across worker threads (default
//! 1). Every cell is hermetic — it installs its own thread-local
//! [`InvariantChecker`] and owns its testbeds — and cell totals are
//! merged in cell order, so the sweep's result is identical at every
//! job count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use npf::prelude::*;
use npf::rdmasim::types::{SendOp, WcStatus};
use npf::simcore::chaos::{invariant, ChaosProfile};
use npf::testbed::eth::RxMode;
use npf::workloads::memcached::MemcachedConfig;

/// Base seed for the sweep, shiftable per CI matrix job.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// Worker-thread count for the sweep, from `CHAOS_JOBS` (default 1;
/// `0` means all available cores).
fn sweep_jobs() -> usize {
    let n: usize = std::env::var("CHAOS_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    if n == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        n
    }
}

/// Runs one sweep cell per config across [`sweep_jobs`] worker threads
/// and merges the per-cell injection totals in cell order. A cell
/// assertion failure propagates when the scope joins, so a failing seed
/// still fails the test with its message.
fn sweep(
    cells: Vec<ChaosConfig>,
    run: impl Fn(ChaosConfig) -> HashMap<String, u64> + Sync,
) -> HashMap<String, u64> {
    let n = cells.len();
    let jobs = sweep_jobs().clamp(1, n.max(1));
    let outputs: Vec<Mutex<Option<HashMap<String, u64>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                *outputs[i].lock().expect("cell slot poisoned") = Some(run(cells[i]));
            });
        }
    });
    let mut totals = HashMap::new();
    for slot in outputs {
        let cell = slot
            .into_inner()
            .expect("cell slot poisoned")
            .expect("worker loop fills every slot");
        for (name, value) in cell {
            *totals.entry(name).or_default() += value;
        }
    }
    totals
}

/// Accumulates one chaos counter set into the sweep totals.
fn accumulate(totals: &mut HashMap<String, u64>, counters: &npf::simcore::stats::Counters) {
    for (name, value) in counters.iter() {
        *totals.entry(name.to_string()).or_default() += value;
    }
}

/// Drives a 24-message stream over a two-node IB cluster under `chaos`
/// and checks exactly-once byte-exact delivery plus every global
/// invariant. Returns injection totals for coverage accounting.
fn run_ib(chaos: ChaosConfig) -> HashMap<String, u64> {
    let mut totals = HashMap::new();
    assert!(
        invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
        "stale checker"
    );
    // IB's rnr_retry = 7 means "retry forever"; model that here so the
    // sweep asserts liveness, not the transport's give-up threshold.
    let rc = npf::rdmasim::types::RcConfig {
        max_retries: 100_000,
        max_rnr_retries: 100_000,
        ..npf::rdmasim::types::RcConfig::default()
    };
    // NVMe swap: under eviction storms every re-fault is a swap-in, and
    // resolution must beat the next eviction for the transport to make
    // progress (a 5 ms hard-drive swap-in never can).
    let mut c = IbCluster::new(
        IbConfig::default()
            .with_nodes(2)
            .with_rc(rc)
            .with_chaos(chaos)
            .with_disk(npf::memsim::swap::DiskConfig::nvme()),
    );
    let (qa, qb) = c.connect(0, 1);
    let src = c.alloc_buffers(0, ByteSize::mib(8));
    let dst = c.alloc_buffers(1, ByteSize::mib(8));
    const MSGS: u64 = 24;
    for i in 0..MSGS {
        c.post_recv(1, qb, 1000 + i, dst, 8 << 20);
    }
    for i in 0..MSGS {
        c.post_send(
            0,
            qa,
            i,
            SendOp::Send {
                local: src,
                len: (i + 1) * 4096,
            },
        );
    }
    c.run_until_quiescent(50_000_000);

    let send = c.drain_completions(0);
    let recv = c.drain_completions(1);
    assert_eq!(
        send.len() as u64,
        MSGS,
        "send completions at chaos seed {}",
        chaos.seed
    );
    assert_eq!(
        recv.len() as u64,
        MSGS,
        "exactly-once delivery at chaos seed {}",
        chaos.seed
    );
    for (i, comp) in recv.iter().enumerate() {
        assert_eq!(
            comp.wr_id,
            1000 + i as u64,
            "in-order at seed {}",
            chaos.seed
        );
        assert_eq!(
            comp.len,
            (i as u64 + 1) * 4096,
            "byte-exact at seed {}",
            chaos.seed
        );
        assert_eq!(comp.status, WcStatus::Success);
    }

    let mut checker = invariant::uninstall().expect("checker installed");
    let end = checker.finish();
    assert!(
        end.is_empty(),
        "invariant violations at chaos seed {}: {:?}",
        chaos.seed,
        end
    );
    assert!(checker.checks() > 0, "checker actually ran");

    if let Some(engine) = c.chaos() {
        accumulate(&mut totals, engine.counters());
    }
    for n in 0..2 {
        accumulate(&mut totals, c.node(n).engine().counters());
    }
    totals
}

/// Drives the memcached testbed for one simulated second under `chaos`
/// and checks liveness (no failed connections, ops served) plus every
/// global invariant, then hunts for a quiescent cut where no NPF is
/// outstanding so `finish()` can certify resolution liveness.
fn run_eth(chaos: ChaosConfig) -> HashMap<String, u64> {
    let mut totals = HashMap::new();
    assert!(
        invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
        "stale checker"
    );
    // NVMe swap: as in the IB sweep, resolution must beat the next
    // chaos eviction or no quiescent cut ever exists.
    let mut bed = EthTestbed::new(
        EthConfig::default()
            .with_mode(RxMode::Backup)
            .with_instances(1)
            .with_conns_per_instance(4)
            .with_ring_entries(64)
            .with_host_memory(ByteSize::mib(512))
            .with_disk(npf::memsim::swap::DiskConfig::nvme())
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(64),
                value_size: 1024,
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(1000)
            .with_chaos(chaos),
    )
    .expect("setup");
    bed.run_until(SimTime::from_secs(1));

    // The client is closed-loop and never stops issuing, so the queue
    // never drains; instead, find a cut where every raised NPF has
    // resolved (they complete within microseconds, so one must exist).
    let mut outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
    let mut tries = 0;
    while outstanding > 0 && tries < 2000 {
        let next = bed.now() + SimDuration::from_micros(500);
        bed.run_until(next);
        outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
        tries += 1;
    }
    assert_eq!(
        outstanding, 0,
        "NPFs must eventually resolve (chaos seed {})",
        chaos.seed
    );

    assert_eq!(
        bed.total_failed_conns(),
        0,
        "no connection may die under chaos seed {}",
        chaos.seed
    );
    assert!(
        bed.total_ops() > 100,
        "the service must stay live under chaos seed {}: {} ops",
        chaos.seed,
        bed.total_ops()
    );

    let mut checker = invariant::uninstall().expect("checker installed");
    let end = checker.finish();
    assert!(
        end.is_empty(),
        "invariant violations at chaos seed {}: {:?}",
        chaos.seed,
        end
    );
    assert!(checker.checks() > 0, "checker actually ran");

    if let Some(engine) = bed.chaos() {
        accumulate(&mut totals, engine.counters());
    }
    accumulate(&mut totals, bed.engine().counters());
    let (lost, delayed) = bed.irq_chaos_counts();
    *totals.entry("moderator_irq_lost".into()).or_default() += lost;
    *totals.entry("moderator_irq_delayed".into()).or_default() += delayed;
    totals
}

#[test]
fn ib_chaos_sweep_holds_invariants() {
    let base = seed_base();
    let profiles = [
        ChaosProfile::Network,
        ChaosProfile::Npf,
        ChaosProfile::Memory,
        ChaosProfile::Iommu,
        ChaosProfile::All,
    ];
    let cells: Vec<ChaosConfig> = profiles
        .into_iter()
        .enumerate()
        .flat_map(|(p, profile)| {
            (0..2u64).map(move |s| ChaosConfig::profile(profile, base + (p as u64) * 100 + s))
        })
        .collect();
    let totals = sweep(cells, run_ib);
    // Every IB-reachable fault class must have fired somewhere in the
    // sweep.
    for class in [
        "net_drop",
        "net_corrupt",
        "net_duplicate",
        "net_reorder",
        "npf_chaos_delays",
        "iommu_shootdown",
    ] {
        assert!(
            totals.get(class).copied().unwrap_or(0) > 0,
            "fault class {class} never fired across the IB sweep: {totals:?}"
        );
    }
    assert!(
        totals.get("mem_burst").copied().unwrap_or(0)
            + totals.get("mem_storm").copied().unwrap_or(0)
            > 0,
        "memory-pressure chaos never fired across the IB sweep: {totals:?}"
    );
}

#[test]
fn eth_chaos_sweep_holds_invariants() {
    let base = seed_base();
    let profiles = [
        ChaosProfile::Network,
        ChaosProfile::Interrupts,
        ChaosProfile::Npf,
        ChaosProfile::Memory,
        ChaosProfile::All,
    ];
    let cells: Vec<ChaosConfig> = profiles
        .into_iter()
        .enumerate()
        .flat_map(|(p, profile)| {
            (0..2u64)
                .map(move |s| ChaosConfig::profile(profile, base + 0x1000 + (p as u64) * 100 + s))
        })
        .collect();
    let totals = sweep(cells, run_eth);
    for class in ["net_drop", "net_reorder", "irq_lost", "irq_delayed"] {
        assert!(
            totals.get(class).copied().unwrap_or(0) > 0,
            "fault class {class} never fired across the Ethernet sweep: {totals:?}"
        );
    }
    // The moderators saw the injections, not just the fate stream.
    assert!(
        totals.get("moderator_irq_lost").copied().unwrap_or(0)
            + totals.get("moderator_irq_delayed").copied().unwrap_or(0)
            > 0,
        "interrupt chaos never reached a moderator: {totals:?}"
    );
    assert!(
        totals.get("mem_burst").copied().unwrap_or(0)
            + totals.get("mem_storm").copied().unwrap_or(0)
            > 0,
        "memory-pressure chaos never fired across the Ethernet sweep: {totals:?}"
    );
}

/// Chaos over the cross-channel fault arbiter: a multi-tenant bed with
/// a small shared slot pool, weighted-fair arbitration, and a
/// partitioned backup quota must hold every global invariant under
/// full-profile injection — arbitration queueing must never strand an
/// NPF past the quiescent cut, and the quota must hold even while
/// chaos delays resolutions and storms evictions.
fn run_eth_arbiter(chaos: ChaosConfig) -> HashMap<String, u64> {
    use npf::prelude::{ArbiterPolicy, NpfConfig, ScenarioBuilder};
    let mut totals = HashMap::new();
    assert!(
        invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
        "stale checker"
    );
    let quota = 16u64;
    let mut bed = ScenarioBuilder::ethernet()
        .mode(RxMode::Backup)
        .instances(4)
        .conns_per_instance(2)
        .ring_entries(32)
        .bm_size(64)
        .backup_capacity(128)
        .backup_quota(quota)
        .host_memory(ByteSize::mib(512))
        .disk(npf::memsim::swap::DiskConfig::nvme())
        .memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(16),
            value_size: 1024,
            ..MemcachedConfig::default()
        })
        .working_set_keys(1000)
        .tenant_skew(1.0)
        .npf(
            NpfConfig::default()
                .with_arbiter(ArbiterPolicy::WeightedFair)
                .with_total_fault_slots(4),
        )
        .tenant_weight(0, 4)
        .chaos(chaos)
        .build()
        .expect("setup");
    bed.run_until(SimTime::from_secs(1));

    let mut outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
    let mut tries = 0;
    while outstanding > 0 && tries < 2000 {
        let next = bed.now() + SimDuration::from_micros(500);
        bed.run_until(next);
        outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
        tries += 1;
    }
    assert_eq!(
        outstanding, 0,
        "NPFs must resolve despite arbitration (chaos seed {})",
        chaos.seed
    );
    assert_eq!(
        bed.total_failed_conns(),
        0,
        "no connection may die under chaos seed {}",
        chaos.seed
    );
    for i in 0..4 {
        let t = bed.tenant_report(i);
        assert!(
            t.backup_hwm <= quota,
            "tenant {i} burst its quota under chaos seed {}: hwm {}",
            chaos.seed,
            t.backup_hwm
        );
    }

    let mut checker = invariant::uninstall().expect("checker installed");
    let end = checker.finish();
    assert!(
        end.is_empty(),
        "invariant violations at chaos seed {}: {:?}",
        chaos.seed,
        end
    );

    if let Some(engine) = bed.chaos() {
        accumulate(&mut totals, engine.counters());
    }
    accumulate(&mut totals, bed.engine().counters());
    totals
}

#[test]
fn arbitrated_multi_tenant_bed_survives_chaos() {
    let base = seed_base();
    let cells: Vec<ChaosConfig> = (0..3u64)
        .map(|s| ChaosConfig::profile(ChaosProfile::All, base + 0x2000 + s))
        .collect();
    let totals = sweep(cells, run_eth_arbiter);
    assert!(
        totals.get("npf_events").copied().unwrap_or(0) > 0,
        "the arbitrated bed never faulted: {totals:?}"
    );
}

/// Every NPF must leave a complete, exactly-balanced journal chain —
/// admit, phase slices tiling `[begun, ready_at]`, resolve — even
/// while chaos delays resolutions, storms evictions, and queues faults
/// behind the arbiter. An incomplete or unbalanced chain means the
/// causal observability layer lost or misattributed a fault.
#[test]
fn chaos_faults_leave_complete_journal_chains() {
    use npf::prelude::{ArbiterPolicy, NpfConfig, ScenarioBuilder};
    use npf::simcore::journal::{self, JournalRecorder};
    let base = seed_base();
    for s in 0..2u64 {
        let chaos = ChaosConfig::profile(ChaosProfile::All, base + 0x3000 + s);
        assert!(
            invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
            "stale checker"
        );
        assert!(
            journal::install(JournalRecorder::new()).is_none(),
            "stale journal"
        );
        let mut bed = ScenarioBuilder::ethernet()
            .mode(RxMode::Backup)
            .instances(4)
            .conns_per_instance(2)
            .ring_entries(32)
            .bm_size(64)
            .backup_capacity(128)
            .host_memory(ByteSize::mib(512))
            .disk(npf::memsim::swap::DiskConfig::nvme())
            .memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(16),
                value_size: 1024,
                ..MemcachedConfig::default()
            })
            .working_set_keys(1000)
            .tenant_skew(1.0)
            .npf(
                NpfConfig::default()
                    .with_arbiter(ArbiterPolicy::WeightedFair)
                    .with_total_fault_slots(4),
            )
            .tenant_weight(0, 4)
            .chaos(chaos)
            .build()
            .expect("setup");
        bed.run_until(SimTime::from_millis(250));

        // Hunt a quiescent cut, as the other sweeps do, so "incomplete"
        // below means "lost", never "still in flight".
        let mut outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
        let mut tries = 0;
        while outstanding > 0 && tries < 2000 {
            let next = bed.now() + SimDuration::from_micros(500);
            bed.run_until(next);
            outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
            tries += 1;
        }
        assert_eq!(
            outstanding, 0,
            "NPFs must resolve (chaos seed {})",
            chaos.seed
        );

        let j = journal::uninstall().expect("journal installed");
        let mut checker = invariant::uninstall().expect("checker installed");
        let end = checker.finish();
        assert!(
            end.is_empty(),
            "invariant violations at chaos seed {}: {:?}",
            chaos.seed,
            end
        );
        assert!(
            !j.faults().is_empty(),
            "the bed never faulted under chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.incomplete_faults(),
            0,
            "journal chains without a resolve at chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.unbalanced_faults(),
            0,
            "journal phase slices must tile each fault at chaos seed {}",
            chaos.seed
        );
        for f in j.faults() {
            assert_eq!(
                f.phase_sum(),
                f.latency(),
                "inexact attribution for fault {:?} at chaos seed {}",
                f.id,
                chaos.seed
            );
        }
        assert!(
            !j.marks().is_empty(),
            "causal marks must flow under chaos seed {}",
            chaos.seed
        );
    }
}

/// Drives the memcached testbed with the NP-RDMA-style software
/// emulation servicing every fault — no firmware NPF events at all —
/// under `chaos`, and checks the same liveness and invariant set as
/// [`run_eth`]. Returns injection totals for coverage accounting.
fn run_eth_softemu(chaos: ChaosConfig) -> HashMap<String, u64> {
    let mut totals = HashMap::new();
    assert!(
        invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
        "stale checker"
    );
    let mut bed = ScenarioBuilder::ethernet()
        .mode(RxMode::Backup)
        .instances(2)
        .conns_per_instance(2)
        .ring_entries(32)
        .bm_size(64)
        .backup_capacity(128)
        .host_memory(ByteSize::mib(512))
        .disk(npf::memsim::swap::DiskConfig::nvme())
        .memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(16),
            value_size: 1024,
            ..MemcachedConfig::default()
        })
        .working_set_keys(1000)
        .npf(NpfConfig::default().with_backend(BackendSelect::SoftEmu(SoftEmuConfig::default())))
        .chaos(chaos)
        .build()
        .expect("setup");
    bed.run_until(SimTime::from_secs(1));

    let mut outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
    let mut tries = 0;
    while outstanding > 0 && tries < 2000 {
        let next = bed.now() + SimDuration::from_micros(500);
        bed.run_until(next);
        outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
        tries += 1;
    }
    assert_eq!(
        outstanding, 0,
        "bounced faults must eventually resolve (chaos seed {})",
        chaos.seed
    );
    assert_eq!(
        bed.total_failed_conns(),
        0,
        "no connection may die under chaos seed {}",
        chaos.seed
    );
    assert!(
        bed.total_ops() > 100,
        "the service must stay live under chaos seed {}: {} ops",
        chaos.seed,
        bed.total_ops()
    );
    // The backend axis itself: every fault bounced, none raised a
    // firmware NPF event.
    let c = bed.engine().counters();
    assert_eq!(
        c.get("fw_npf_events"),
        0,
        "softemu raised firmware NPFs under chaos seed {}",
        chaos.seed
    );
    assert_eq!(
        c.get("softemu_bounces"),
        c.get("npf_events"),
        "unexplained faults under chaos seed {}",
        chaos.seed
    );

    let mut checker = invariant::uninstall().expect("checker installed");
    let end = checker.finish();
    assert!(
        end.is_empty(),
        "invariant violations at chaos seed {}: {:?}",
        chaos.seed,
        end
    );

    if let Some(engine) = bed.chaos() {
        accumulate(&mut totals, engine.counters());
    }
    accumulate(&mut totals, bed.engine().counters());
    let (lost, delayed) = bed.irq_chaos_counts();
    *totals.entry("moderator_irq_lost".into()).or_default() += lost;
    *totals.entry("moderator_irq_delayed".into()).or_default() += delayed;
    totals
}

/// The backend × chaos-profile matrix cell: the software-emulation
/// backend swept under packet loss, delayed/lost interrupts, and
/// memory-pressure storms (plus the all-profile mix), holding every
/// invariant, with the bounce path demonstrably exercised.
#[test]
fn softemu_backend_survives_chaos_matrix() {
    let base = seed_base();
    let profiles = [
        ChaosProfile::Network,
        ChaosProfile::Interrupts,
        ChaosProfile::Npf,
        ChaosProfile::Memory,
        ChaosProfile::All,
    ];
    let cells: Vec<ChaosConfig> = profiles
        .into_iter()
        .enumerate()
        .flat_map(|(p, profile)| {
            (0..2u64)
                .map(move |s| ChaosConfig::profile(profile, base + 0x4000 + (p as u64) * 100 + s))
        })
        .collect();
    let totals = sweep(cells, run_eth_softemu);
    for class in ["net_drop", "net_reorder", "irq_lost", "irq_delayed"] {
        assert!(
            totals.get(class).copied().unwrap_or(0) > 0,
            "fault class {class} never fired across the softemu sweep: {totals:?}"
        );
    }
    assert!(
        totals.get("mem_burst").copied().unwrap_or(0)
            + totals.get("mem_storm").copied().unwrap_or(0)
            > 0,
        "memory-pressure chaos never fired across the softemu sweep: {totals:?}"
    );
    assert!(
        totals.get("softemu_bounces").copied().unwrap_or(0) > 0,
        "the bounce path was never exercised: {totals:?}"
    );
    assert_eq!(
        totals.get("fw_npf_events").copied().unwrap_or(0),
        0,
        "softemu must never raise a firmware NPF: {totals:?}"
    );
    // Chaos transient misses retry through the softemu backoff path,
    // so the two tallies must move in lockstep.
    assert_eq!(
        totals.get("softemu_retries").copied().unwrap_or(0),
        totals.get("npf_chaos_retries").copied().unwrap_or(0),
        "softemu retries must mirror chaos transients: {totals:?}"
    );
    assert!(
        totals.get("npf_chaos_retries").copied().unwrap_or(0) > 0,
        "no transient miss ever fired, the backoff path is untested: {totals:?}"
    );
}

/// Bounce/retry chains must leave complete, exactly-balanced journal
/// chains: every softemu fault's validate/bounce/copy-out slices (plus
/// any chaos extra) tile `[begun, ready_at]` with nothing lost, even
/// while chaos delays resolutions and storms evictions.
#[test]
fn softemu_bounce_chains_leave_complete_journals() {
    use npf::simcore::journal::{self, JournalRecorder, Phase};
    let base = seed_base();
    for s in 0..2u64 {
        let chaos = ChaosConfig::profile(ChaosProfile::All, base + 0x5000 + s);
        assert!(
            invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
            "stale checker"
        );
        assert!(
            journal::install(JournalRecorder::new()).is_none(),
            "stale journal"
        );
        let mut bed = ScenarioBuilder::ethernet()
            .mode(RxMode::Backup)
            .instances(2)
            .conns_per_instance(2)
            .ring_entries(32)
            .bm_size(64)
            .backup_capacity(128)
            .host_memory(ByteSize::mib(512))
            .disk(npf::memsim::swap::DiskConfig::nvme())
            .memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(16),
                value_size: 1024,
                ..MemcachedConfig::default()
            })
            .working_set_keys(1000)
            .npf(
                NpfConfig::default().with_backend(BackendSelect::SoftEmu(SoftEmuConfig::default())),
            )
            .chaos(chaos)
            .build()
            .expect("setup");
        bed.run_until(SimTime::from_millis(250));

        let mut outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
        let mut tries = 0;
        while outstanding > 0 && tries < 2000 {
            let next = bed.now() + SimDuration::from_micros(500);
            bed.run_until(next);
            outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
            tries += 1;
        }
        assert_eq!(
            outstanding, 0,
            "bounced faults must resolve (chaos seed {})",
            chaos.seed
        );

        let j = journal::uninstall().expect("journal installed");
        let mut checker = invariant::uninstall().expect("checker installed");
        let end = checker.finish();
        assert!(
            end.is_empty(),
            "invariant violations at chaos seed {}: {:?}",
            chaos.seed,
            end
        );
        assert!(
            !j.faults().is_empty(),
            "the bed never faulted under chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.incomplete_faults(),
            0,
            "bounce chains without a resolve at chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.unbalanced_faults(),
            0,
            "bounce-chain slices must tile each fault at chaos seed {}",
            chaos.seed
        );
        let mut saw_bounce_slices = false;
        for f in j.faults() {
            assert_eq!(
                f.phase_sum(),
                f.latency(),
                "inexact attribution for bounced fault {:?} at chaos seed {}",
                f.id,
                chaos.seed
            );
            // Softemu chains carry the driver-level slices and never
            // the firmware trigger interrupt.
            assert_eq!(
                f.phase_total(Phase::Trigger),
                SimDuration::ZERO,
                "a softemu fault carried a firmware trigger at chaos seed {}",
                chaos.seed
            );
            if f.phase_total(Phase::Validate) > SimDuration::ZERO
                && f.phase_total(Phase::CopyOut) > SimDuration::ZERO
            {
                saw_bounce_slices = true;
            }
        }
        assert!(
            saw_bounce_slices,
            "no fault carried validate + copy_out slices at chaos seed {}",
            chaos.seed
        );
    }
}

#[test]
fn same_chaos_seed_replays_identically() {
    let chaos = ChaosConfig::profile(ChaosProfile::All, seed_base() + 7);
    assert_eq!(
        run_ib(chaos),
        run_ib(chaos),
        "a chaos seed must replay bit-for-bit"
    );
}

#[test]
fn disabled_chaos_injects_nothing_and_stays_deterministic() {
    let run = || {
        let mut c = IbCluster::new(IbConfig::default().with_nodes(2));
        assert!(c.chaos().is_none(), "disabled chaos must build no engine");
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(1));
        let dst = c.alloc_buffers(1, ByteSize::mib(1));
        c.post_recv(1, qb, 9, dst, 1 << 20);
        c.post_send(
            0,
            qa,
            1,
            SendOp::Send {
                local: src,
                len: 1 << 20,
            },
        );
        c.run_until_quiescent(1_000_000);
        assert_eq!(c.chaos_drops(), 0);
        (c.now(), c.drain_completions(1))
    };
    let (t1, c1) = run();
    let (t2, c2) = run();
    assert_eq!(t1, t2, "disabled chaos must not perturb the clock");
    assert_eq!(c1, c2, "disabled chaos must not perturb completions");
}

/// Speculative pre-faults under chaos: with huge pages, stride prefetch
/// and tiered backing all enabled, every fault — demand *and*
/// speculative — must leave a complete, exactly-balanced journal chain,
/// every raised NPF must resolve exactly once (the invariant checker's
/// `finish()` certifies no lost or double resolution), and the service
/// must stay live. A speculative chain is distinguishable by its
/// `prefetch` issue slice, so the test also proves the sweep actually
/// exercised the prefetcher rather than vacuously passing.
#[test]
fn prefetched_faults_leave_complete_journal_chains() {
    use npf::prelude::NpfConfig;
    use npf::simcore::journal::{self, JournalRecorder, Phase};
    let base = seed_base();
    for s in 0..2u64 {
        let chaos = ChaosConfig::profile(ChaosProfile::All, base + 0x6000 + s);
        assert!(
            invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
            "stale checker"
        );
        assert!(
            journal::install(JournalRecorder::new()).is_none(),
            "stale journal"
        );
        let mut bed = EthTestbed::new(
            EthConfig::default()
                .with_mode(RxMode::Backup)
                .with_instances(2)
                .with_conns_per_instance(2)
                .with_ring_entries(64)
                .with_host_memory(ByteSize::mib(512))
                .with_disk(npf::memsim::swap::DiskConfig::nvme())
                .with_tier(Some(npf::memsim::manager::TierConfig {
                    capacity: ByteSize::mib(256),
                    disk: npf::memsim::swap::DiskConfig::nvm(),
                }))
                .with_memcached(MemcachedConfig {
                    max_bytes: ByteSize::mib(64),
                    value_size: 1024,
                    ..MemcachedConfig::default()
                })
                .with_working_set_keys(1000)
                .with_npf(
                    NpfConfig::default()
                        .with_huge_pages(true)
                        .with_prefetch_depth(64),
                )
                .with_chaos(chaos),
        )
        .expect("setup");
        bed.run_until(SimTime::from_millis(250));

        // Hunt a quiescent cut so "incomplete" below means "lost",
        // never "still in flight" — speculative faults included.
        let mut outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
        let mut tries = 0;
        while outstanding > 0 && tries < 2000 {
            let next = bed.now() + SimDuration::from_micros(500);
            bed.run_until(next);
            outstanding = invariant::with(|c| c.outstanding_faults()).unwrap_or(0);
            tries += 1;
        }
        assert_eq!(
            outstanding, 0,
            "all faults, speculative included, must resolve (chaos seed {})",
            chaos.seed
        );
        assert_eq!(
            bed.total_failed_conns(),
            0,
            "no connection may die under chaos seed {}",
            chaos.seed
        );
        // 250 ms horizon (not the sweeps' full second), so the liveness
        // bar is proportionally lower.
        assert!(
            bed.total_ops() > 25,
            "the service must stay live under chaos seed {}: {} ops",
            chaos.seed,
            bed.total_ops()
        );
        // The prefetcher actually fired; otherwise the chain checks
        // below only cover demand faults.
        let c = bed.engine().counters();
        assert!(
            c.get("prefetch_issued") > 0,
            "the stride prefetcher never triggered under chaos seed {}",
            chaos.seed
        );

        let j = journal::uninstall().expect("journal installed");
        let mut checker = invariant::uninstall().expect("checker installed");
        let end = checker.finish();
        assert!(
            end.is_empty(),
            "invariant violations (lost or double-resolved faults) at chaos seed {}: {:?}",
            chaos.seed,
            end
        );
        assert!(
            !j.faults().is_empty(),
            "the bed never faulted under chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.incomplete_faults(),
            0,
            "journal chains without a resolve at chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.unbalanced_faults(),
            0,
            "journal slices must tile each fault at chaos seed {}",
            chaos.seed
        );
        let mut speculative = 0u64;
        for f in j.faults() {
            assert_eq!(
                f.phase_sum(),
                f.latency(),
                "inexact attribution for fault {:?} at chaos seed {}",
                f.id,
                chaos.seed
            );
            if f.phase_total(Phase::Prefetch) > SimDuration::ZERO {
                speculative += 1;
            }
        }
        assert!(
            speculative > 0,
            "no journal chain carried a prefetch slice at chaos seed {}",
            chaos.seed
        );
    }
}
