//! Property-based tests over the core invariants.
//!
//! These check the properties the paper's mechanisms *guarantee*:
//! in-order delivery across arbitrary fault patterns (backup ring),
//! frame-accounting conservation under arbitrary touch sequences, exact
//! reassembly under arbitrary segment arrival orders, and LRU
//! consistency.

use proptest::prelude::*;

use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::{VirtAddr, Vpn};
use nicsim::rx::{RingId, RxDescriptor, RxEngine, RxFaultMode, RxVerdict};
use simcore::units::ByteSize;

const R: RingId = RingId(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backup ring preserves in-order delivery for every pattern of
    /// faults and every resolution order.
    #[test]
    fn backup_ring_delivers_in_order(
        faults in proptest::collection::vec(any::<bool>(), 1..100),
        resolve_order in proptest::collection::vec(any::<u16>(), 100),
    ) {
        let mut rx: RxEngine<u64> = RxEngine::new(RxFaultMode::BackupRing { capacity: 512 });
        rx.create_ring(R, 128, 256);
        for i in 0..128u64 {
            rx.post_descriptor(R, RxDescriptor { addr: VirtAddr(0x1000 * i), capacity: 4096 });
        }
        let mut pending = Vec::new();
        for (seq, &faulting) in faults.iter().enumerate() {
            let seq = seq as u64;
            match rx.recv(R, seq, 100, !faulting) {
                RxVerdict::Backup { bit_index, target_index, .. } => {
                    pending.push((bit_index, target_index));
                }
                RxVerdict::Stored { .. } => {}
                RxVerdict::Dropped { .. } => prop_assert!(false, "nothing should drop"),
            }
        }
        // Resolve in an arbitrary permutation; delivery order must not
        // change.
        let mut entries = Vec::new();
        while let Some(e) = rx.pop_backup() {
            entries.push(e);
        }
        // Sort by the random keys to get an arbitrary permutation.
        let mut keyed: Vec<(u16, _)> = entries
            .into_iter()
            .enumerate()
            .map(|(i, e)| (resolve_order.get(i).copied().unwrap_or(0), e))
            .collect();
        keyed.sort_by_key(|&(k, _)| k);
        let entries: Vec<_> = keyed.into_iter().map(|(_, e)| e).collect();
        for e in entries {
            prop_assert!(rx.place_resolved(R, e.target_index, e.payload, e.len));
            rx.resolve_rnpfs(R, e.bit_index);
        }
        let mut delivered = Vec::new();
        while let Some((p, _)) = rx.consume(R) {
            delivered.push(p);
        }
        let expected: Vec<u64> = (0..faults.len() as u64).collect();
        prop_assert_eq!(delivered, expected);
    }

    /// Frame accounting never leaks: allocated = sum of resident pages
    /// plus page-cache pages, under any interleaving of touches.
    #[test]
    fn frame_accounting_conserved(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(64), // 16 frames: heavy pressure
            ..MemConfig::default()
        });
        let space = mm.create_space();
        let range = mm.mmap(space, ByteSize::kib(256), Backing::Anonymous).unwrap();
        for (page, write) in ops {
            let vpn = Vpn(range.start.0 + page);
            mm.touch(space, vpn, write).unwrap();
            let resident = mm.space(space).unwrap().resident_pages();
            let free = mm.free_frames();
            let cached = mm.cache_pages();
            prop_assert_eq!(resident + free + cached, mm.total_frames());
            prop_assert!(resident <= mm.total_frames());
        }
    }

    /// A touched page is always resident immediately afterwards, and
    /// re-touching is free.
    #[test]
    fn touch_makes_resident(pages in proptest::collection::vec(0u64..32, 1..64)) {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(1),
            ..MemConfig::default()
        });
        let space = mm.create_space();
        let range = mm.mmap(space, ByteSize::kib(128), Backing::Anonymous).unwrap();
        for page in pages {
            let vpn = Vpn(range.start.0 + page);
            mm.touch(space, vpn, true).unwrap();
            prop_assert!(mm.space(space).unwrap().is_resident(vpn));
            let again = mm.touch(space, vpn, false).unwrap();
            prop_assert!(again.fault.is_none(), "second touch must not fault");
        }
    }

    /// TCP reassembly: any arrival order of segments yields the exact
    /// byte count, exactly once.
    #[test]
    fn tcp_reassembles_any_order(order in proptest::collection::vec(0usize..8, 16)) {
        use simcore::SimTime;
        use tcpsim::{TcpConfig, TcpConnection, TcpOutput};

        let mut client = TcpConnection::new(TcpConfig::linux(), 1, 2);
        let mut server = TcpConnection::new(TcpConfig::lwip(), 2, 1);
        server.listen();
        // Handshake.
        let mut wire: Vec<_> = client.connect(SimTime::ZERO).into_iter().filter_map(|o| match o {
            TcpOutput::Send(s) => Some(s),
            _ => None,
        }).collect();
        for _ in 0..6 {
            let mut next = Vec::new();
            for seg in wire.drain(..) {
                let outs = if seg.dst_port == 2 {
                    server.on_segment(SimTime::ZERO, seg, false)
                } else {
                    client.on_segment(SimTime::ZERO, seg, false)
                };
                next.extend(outs.into_iter().filter_map(|o| match o {
                    TcpOutput::Send(s) => Some(s),
                    _ => None,
                }));
            }
            wire = next;
        }
        // 8 segments of data (inside the initial window); deliver in an
        // arbitrary (possibly duplicated) order, then deliver any
        // stragglers.
        let mss = TcpConfig::linux().mss;
        let segs: Vec<_> = client.write(SimTime::ZERO, 8 * mss).into_iter().filter_map(|o| match o {
            TcpOutput::Send(s) => Some(s),
            _ => None,
        }).collect();
        prop_assert_eq!(segs.len(), 8);
        let mut delivered = std::collections::HashSet::new();
        for &i in &order {
            server.on_segment(SimTime::ZERO, segs[i], false);
            delivered.insert(i);
        }
        for (i, seg) in segs.iter().enumerate() {
            if !delivered.contains(&i) {
                server.on_segment(SimTime::ZERO, *seg, false);
            }
        }
        prop_assert_eq!(server.readable_bytes(), 8 * mss);
        prop_assert_eq!(server.delivered_bytes(), 8 * mss);
    }
}
