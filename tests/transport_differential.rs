//! Transport differential properties (DESIGN §15).
//!
//! Two suites over the IRN-style selective-repeat transport:
//!
//! * A proptest differential: on the idealised **lossless** fabric,
//!   selective repeat and go-back-N must produce *identical completion
//!   streams* for arbitrary message schedules — same wr_ids, same
//!   lengths, same statuses, in the same order, on both the sender and
//!   receiver. Cold rings keep the RNR-NACK path engaged, so the
//!   equality covers the interaction of both disciplines with ODP
//!   faults, not just the happy path.
//! * A chaos cell: pause storms (802.3x injections at the fabric) on
//!   top of 1% random loss, under the invariant checker and the fault
//!   journal. Delivery must stay exactly-once and in order, every
//!   journal chain must stay complete and exactly tiled, and the storm
//!   must actually have fired (so a regression that silently disables
//!   the injection point fails here).

use proptest::prelude::*;

use npf::netsim::profile::{FabricProfile, RdmaTransport, TransportConfig};
use npf::prelude::*;
use npf::rdmasim::types::{RcConfig, SendOp, WcStatus};
use npf::simcore::chaos::{invariant, PauseChaos};

/// Base seed, shiftable per CI matrix job like the chaos sweep's.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// Runs one two-node cold-ring schedule under `transport` and returns
/// both completion streams as `(node, wr_id, len, status_ok)` tuples —
/// everything logically observable, nothing timing-dependent.
fn run_schedule(transport: RdmaTransport, lens: &[u64]) -> Vec<(u32, u64, u64, bool)> {
    let mut c: IbCluster = ScenarioBuilder::infiniband()
        .nodes(2)
        .node_memory(ByteSize::mib(256))
        .transport(TransportConfig::default().with_transport(transport))
        .seed(11)
        .build()
        .expect("differential scenario must validate");
    let (qa, qb) = c.connect(0, 1);
    let src = c.alloc_buffers(0, ByteSize::mib(4));
    let dst = c.alloc_buffers(1, ByteSize::mib(4));
    for (i, &len) in lens.iter().enumerate() {
        let i = i as u64;
        c.post_recv(1, qb, 1000 + i, dst, 4 << 20);
        c.post_send(
            0,
            qa,
            i,
            SendOp::Send {
                local: src,
                len: len.max(1),
            },
        );
    }
    c.run_until_quiescent(20_000_000);
    let mut stream = Vec::new();
    for node in 0..2u32 {
        for comp in c.drain_completions(node) {
            stream.push((node, comp.wr_id, comp.len, comp.status == WcStatus::Success));
        }
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On a lossless fabric the two disciplines are observationally
    /// equivalent: selective repeat's bitmap machinery must be inert
    /// when nothing is ever lost.
    #[test]
    fn selective_repeat_matches_go_back_n_when_lossless(
        lens in proptest::collection::vec(1u64..128 * 1024, 1..12),
    ) {
        let gbn = run_schedule(RdmaTransport::GoBackN, &lens);
        let irn = run_schedule(RdmaTransport::SelectiveRepeat, &lens);
        prop_assert_eq!(gbn, irn);
    }
}

#[test]
fn pause_storms_with_loss_keep_exactly_once_and_complete_journals() {
    use npf::simcore::journal::{self, JournalRecorder};
    let base = seed_base();
    for s in 0..2u64 {
        let chaos = ChaosConfig::profile(ChaosProfile::Network, base + 0x7000 + s).with_pause(
            PauseChaos {
                storm: 0.05,
                max_pause: SimDuration::from_micros(80),
            },
        );
        assert!(
            invariant::install(InvariantChecker::new(chaos.seed)).is_none(),
            "stale checker"
        );
        assert!(
            journal::install(JournalRecorder::new()).is_none(),
            "stale journal"
        );
        // Retry forever, as the chaos sweep does: the cell asserts
        // liveness, not the transport's give-up threshold.
        let rc = RcConfig {
            max_retries: 100_000,
            max_rnr_retries: 100_000,
            ..RcConfig::default()
        };
        let mut c: IbCluster = ScenarioBuilder::infiniband()
            .nodes(2)
            .node_memory(ByteSize::mib(256))
            .rc(rc)
            .profile(FabricProfile::lossy(0.01))
            .transport(TransportConfig::irn())
            .chaos(chaos)
            .seed(13)
            .build()
            .expect("pause-storm scenario must validate");
        let (qa, qb) = c.connect(0, 1);
        let src = c.alloc_buffers(0, ByteSize::mib(4));
        let dst = c.alloc_buffers(1, ByteSize::mib(4));
        const MSGS: u64 = 24;
        for i in 0..MSGS {
            c.post_recv(1, qb, 1000 + i, dst, 4 << 20);
            c.post_send(
                0,
                qa,
                i,
                SendOp::Send {
                    local: src,
                    len: (i + 1) * 4096,
                },
            );
        }
        c.run_until_quiescent(50_000_000);

        let recv = c.drain_completions(1);
        assert_eq!(
            recv.len() as u64,
            MSGS,
            "exactly-once delivery at chaos seed {}",
            chaos.seed
        );
        for (i, comp) in recv.iter().enumerate() {
            assert_eq!(
                comp.wr_id,
                1000 + i as u64,
                "in-order at seed {}",
                chaos.seed
            );
            assert_eq!(comp.status, WcStatus::Success);
        }
        let storms = c
            .chaos()
            .expect("chaos enabled")
            .counters()
            .get("pause_storm");
        assert!(storms > 0, "storms must fire at chaos seed {}", chaos.seed);

        let j = journal::uninstall().expect("journal installed");
        let mut checker = invariant::uninstall().expect("checker installed");
        let end = checker.finish();
        assert!(
            end.is_empty(),
            "invariant violations at chaos seed {}: {:?}",
            chaos.seed,
            end
        );
        assert_eq!(
            j.incomplete_faults(),
            0,
            "journal chains without a resolve at chaos seed {}",
            chaos.seed
        );
        assert_eq!(
            j.unbalanced_faults(),
            0,
            "journal phase slices must tile at chaos seed {}",
            chaos.seed
        );
        for f in j.faults() {
            assert_eq!(
                f.phase_sum(),
                f.latency(),
                "inexact attribution for fault {:?} at chaos seed {}",
                f.id,
                chaos.seed
            );
        }
    }
}
