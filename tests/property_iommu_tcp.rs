//! More property tests: IOTLB coherence and event-queue ordering.

use proptest::prelude::*;

use iommu::{DmaCheck, Iommu, TableMode};
use memsim::types::{FrameId, Vpn};
use simcore::event::EventQueue;
use simcore::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The IOMMU never serves a stale translation: after any sequence
    /// of map/invalidate/access operations, a successful DMA check
    /// always returns the *current* mapping.
    #[test]
    fn iotlb_never_stale(ops in proptest::collection::vec((0u64..16, 0u8..3), 1..200)) {
        let mut mmu = Iommu::new(4); // tiny TLB: lots of eviction traffic
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut version = 100u64;
        for (page, op) in ops {
            match op {
                0 => {
                    // (Re)map the page to a fresh frame. Remapping goes
                    // through invalidate-then-map, as the driver does.
                    version += 1;
                    mmu.invalidate(d, Vpn(page));
                    mmu.map(d, Vpn(page), FrameId(version), true);
                    truth.insert(page, version);
                }
                1 => {
                    mmu.invalidate(d, Vpn(page));
                    truth.remove(&page);
                }
                _ => {
                    match (mmu.check_dma(d, Vpn(page), true), truth.get(&page)) {
                        (DmaCheck::Ok(f), Some(&v)) => prop_assert_eq!(f, FrameId(v)),
                        (DmaCheck::Fault(_), None) => {}
                        (got, want) => prop_assert!(
                            false,
                            "page {} -> {:?}, expected {:?}",
                            page,
                            got,
                            want
                        ),
                    }
                    // Clear any page request the check may have queued.
                    mmu.drain_requests();
                }
            }
        }
    }

    /// The event queue delivers in non-decreasing time order with FIFO
    /// tie-breaking, for any schedule including cancellations.
    #[test]
    fn event_queue_total_order(
        items in proptest::collection::vec((0u64..1000, any::<bool>()), 1..300),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut tokens = Vec::new();
        for (i, &(at, _)) in items.iter().enumerate() {
            tokens.push(q.schedule_at(SimTime::from_nanos(at), i));
        }
        // Cancel the flagged ones.
        let mut cancelled = std::collections::HashSet::new();
        for (i, &(_, cancel)) in items.iter().enumerate() {
            if cancel {
                prop_assert!(q.cancel(tokens[i]));
                cancelled.insert(i);
            }
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut delivered = std::collections::HashSet::new();
        while let Some((t, i)) = q.pop() {
            prop_assert!(!cancelled.contains(&i), "cancelled event {i} delivered");
            prop_assert_eq!(SimTime::from_nanos(items[i].0), t);
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
            delivered.insert(i);
        }
        // Everything not cancelled was delivered exactly once.
        for i in 0..items.len() {
            prop_assert_eq!(delivered.contains(&i), !cancelled.contains(&i));
        }
    }
}
