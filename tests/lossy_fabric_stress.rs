//! Failure injection: RC transport correctness over a *lossy* link while
//! ODP faults fire. Loss triggers sequence NAKs and timeouts; faults
//! trigger RNR NACKs; every message must still arrive exactly once and
//! in order.

use memsim::types::VirtAddr;
use netsim::link::{Link, LinkConfig};
use netsim::packet::NodeId;
use netsim::profile::{FabricProfile, RdmaTransport};
use rdmasim::rc::RcQp;
use rdmasim::types::{
    PinnedGate, QpId, QpOutput, QpTimer, RcConfig, RcPacket, RecvWqe, SendOp, WcOpcode,
};
use simcore::event::EventQueue;
use simcore::rng::SimRng;
use simcore::units::Bandwidth;
use simcore::SimTime;

#[derive(Debug)]
enum Ev {
    Deliver { to_a: bool, pkt: RcPacket },
    Timer { at_a: bool, timer: QpTimer },
}

#[test]
fn rc_survives_random_loss() {
    rc_survives_random_loss_with(RdmaTransport::GoBackN);
}

#[test]
fn irn_survives_random_loss() {
    rc_survives_random_loss_with(RdmaTransport::SelectiveRepeat);
}

fn rc_survives_random_loss_with(transport: RdmaTransport) {
    let mut rng = SimRng::new(1234);
    // 5% of packets vanish
    let link_cfg = FabricProfile::lossy(0.05).apply_link(LinkConfig::datacenter(Bandwidth::gbps(56)));
    let mut ab = Link::new(link_cfg, rng.fork(1));
    let mut ba = Link::new(link_cfg, rng.fork(2));

    let cfg = RcConfig {
        ack_every: 4,
        transport,
        ..RcConfig::default()
    };
    let mut a = RcQp::new(cfg, QpId(1), QpId(2), NodeId(1));
    let mut b = RcQp::new(cfg, QpId(2), QpId(1), NodeId(0));
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut timers: std::collections::HashMap<(bool, QpTimer), simcore::event::EventToken> =
        std::collections::HashMap::new();

    const MESSAGES: u64 = 40;
    const LEN: u64 = 32 * 1024;
    for i in 0..MESSAGES {
        b.post_recv(RecvWqe {
            wr_id: i,
            addr: VirtAddr(0x100000),
            capacity: LEN,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            1000 + i,
            SendOp::Send {
                local: VirtAddr(0x4000),
                len: LEN,
            },
            &mut PinnedGate,
        );
        dispatch(outs, true, &mut queue, &mut ab, &mut ba, &mut timers);
    }

    let mut received = Vec::new();
    let mut guard = 0u64;
    while let Some((now, ev)) = queue.pop() {
        guard += 1;
        assert!(guard < 2_000_000, "stress test diverged");
        match ev {
            Ev::Deliver { to_a, pkt } => {
                let outs = if to_a {
                    a.on_packet(now, pkt, &mut PinnedGate)
                } else {
                    b.on_packet(now, pkt, &mut PinnedGate)
                };
                for o in &outs {
                    if let QpOutput::Complete(c) = o {
                        if c.opcode == WcOpcode::Recv {
                            received.push(c.wr_id);
                        }
                        assert_eq!(c.status, rdmasim::types::WcStatus::Success);
                    }
                }
                dispatch(outs, to_a, &mut queue, &mut ab, &mut ba, &mut timers);
            }
            Ev::Timer { at_a, timer } => {
                timers.remove(&(at_a, timer));
                let outs = if at_a {
                    a.on_timer(now, timer, &mut PinnedGate)
                } else {
                    b.on_timer(now, timer, &mut PinnedGate)
                };
                dispatch(outs, at_a, &mut queue, &mut ab, &mut ba, &mut timers);
            }
        }
        if received.len() as u64 == MESSAGES && queue.is_empty() {
            break;
        }
    }
    // Exactly-once, in-order delivery despite 5% loss.
    assert_eq!(received, (0..MESSAGES).collect::<Vec<_>>());
    assert!(
        a.stats().retransmits > 0,
        "loss must have forced retransmissions"
    );
}

fn dispatch(
    outs: Vec<QpOutput>,
    from_a: bool,
    queue: &mut EventQueue<Ev>,
    ab: &mut Link,
    ba: &mut Link,
    timers: &mut std::collections::HashMap<(bool, QpTimer), simcore::event::EventToken>,
) {
    use netsim::link::SendOutcome;
    let now = queue.now();
    for o in outs {
        match o {
            QpOutput::Send { packet, .. } => {
                let link = if from_a { &mut *ab } else { &mut *ba };
                if let SendOutcome::Delivered { arrives_at, .. } =
                    link.send(now, packet.wire_size())
                {
                    queue.schedule_at(
                        arrives_at,
                        Ev::Deliver {
                            to_a: !from_a,
                            pkt: packet,
                        },
                    );
                }
            }
            QpOutput::SetTimer(timer, at) => {
                if let Some(tok) = timers.remove(&(from_a, timer)) {
                    queue.cancel(tok);
                }
                let tok = queue.schedule_at(
                    at,
                    Ev::Timer {
                        at_a: from_a,
                        timer,
                    },
                );
                timers.insert((from_a, timer), tok);
            }
            QpOutput::CancelTimer(timer) => {
                if let Some(tok) = timers.remove(&(from_a, timer)) {
                    queue.cancel(tok);
                }
            }
            _ => {}
        }
    }
}
