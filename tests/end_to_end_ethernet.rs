//! Cross-crate integration: the Ethernet testbed (tcpsim + nicsim +
//! memsim + iommu + npf-core + workloads glued by testbed).

use npf::prelude::*;
use workloads::memcached::MemcachedConfig;

fn small(mode: RxMode) -> EthConfig {
    EthConfig::default()
        .with_mode(mode)
        .with_instances(1)
        .with_conns_per_instance(4)
        .with_ring_entries(64)
        .with_host_memory(ByteSize::mib(512))
        .with_memcached(MemcachedConfig {
            max_bytes: ByteSize::mib(64),
            ..MemcachedConfig::default()
        })
        .with_working_set_keys(2_000)
}

#[test]
fn backup_ring_hides_faults_from_the_iouser() {
    let mut bed = EthTestbed::new(small(RxMode::Backup)).expect("setup");
    bed.run_until(SimTime::from_millis(1500));
    // Faults occurred (cold ring) but every operation completed and no
    // connection failed: the IOuser never noticed.
    assert!(bed.rx_counters().get("backup_stored") > 0);
    assert!(bed.engine().counters().get("npf_events") > 0);
    assert!(bed.total_ops() > 1_000);
    assert_eq!(bed.total_failed_conns(), 0);
}

#[test]
fn three_modes_order_as_the_paper_says() {
    let total = |mode| {
        let mut bed = EthTestbed::new(small(mode)).expect("setup");
        bed.run_until(SimTime::from_millis(1500));
        bed.total_ops()
    };
    let pin = total(RxMode::Pin);
    let backup = total(RxMode::Backup);
    let drop = total(RxMode::Drop);
    // Pin and backup are equivalent; dropping collapses during the cold
    // ring.
    let ratio = backup as f64 / pin as f64;
    assert!((0.9..=1.1).contains(&ratio), "backup/pin = {ratio:.2}");
    assert!(drop * 5 < backup, "drop {drop} vs backup {backup}");
}

#[test]
fn overcommit_feasibility_matches_table_5() {
    // Two 300 MiB VMs on a 512 MiB host: pinning fails, NPFs run.
    let mut cfg = small(RxMode::Pin);
    cfg.instances = 2;
    cfg.memcached.max_bytes = ByteSize::mib(300);
    assert!(
        EthTestbed::new(cfg).is_err(),
        "pinning 600 MiB into a 512 MiB host"
    );
    let mut cfg = small(RxMode::Backup);
    cfg.instances = 2;
    cfg.memcached.max_bytes = ByteSize::mib(300);
    let mut bed = EthTestbed::new(cfg).expect("NPF mode starts");
    bed.run_until(SimTime::from_millis(700));
    assert!(bed.total_ops() > 500);
}

#[test]
fn differential_pinned_vs_odp_serves_same_workload() {
    // Differential run of the same memcached workload: static pinning
    // versus the backup-ring NPF path. Both must reach the target op
    // count with zero failed connections; only the ODP side may (and
    // must) take page faults. This pins down the paper's feasibility
    // claim — demand paging changes *how* memory arrives, never what
    // the IOuser observes.
    const TARGET_OPS: u64 = 2_000;
    let run = |mode: RxMode| {
        let mut bed = EthTestbed::new(small(mode)).expect("setup");
        // Run in slices until the service has served TARGET_OPS, so
        // both modes are compared at the same amount of delivered work.
        let mut deadline = SimTime::ZERO;
        while bed.total_ops() < TARGET_OPS {
            deadline += SimDuration::from_millis(100);
            assert!(
                deadline <= SimTime::from_secs(30),
                "{mode:?} never reached {TARGET_OPS} ops: {}",
                bed.total_ops()
            );
            bed.run_until(deadline);
        }
        (
            bed.total_ops(),
            bed.total_failed_conns(),
            bed.engine().counters().get("npf_events"),
        )
    };
    let (pin_ops, pin_failed, pin_faults) = run(RxMode::Pin);
    let (odp_ops, odp_failed, odp_faults) = run(RxMode::Backup);
    assert!(pin_ops >= TARGET_OPS && odp_ops >= TARGET_OPS);
    assert_eq!(pin_failed, 0, "pinned mode dropped a connection");
    assert_eq!(odp_failed, 0, "ODP mode dropped a connection");
    assert_eq!(pin_faults, 0, "pinned mode must never take an NPF");
    assert!(odp_faults > 0, "ODP mode must resolve faults on the way");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut bed = EthTestbed::new(small(RxMode::Backup)).expect("setup");
        bed.run_until(SimTime::from_millis(800));
        (
            bed.total_ops(),
            bed.engine().counters().get("npf_events"),
            bed.rx_counters().get("backup_stored"),
        )
    };
    assert_eq!(run(), run(), "same seed must give identical results");
}

#[test]
fn different_seeds_still_serve() {
    for seed in [7, 99, 12345] {
        let mut cfg = small(RxMode::Backup);
        cfg.seed = seed;
        let mut bed = EthTestbed::new(cfg).expect("setup");
        bed.run_until(SimTime::from_millis(700));
        assert!(bed.total_ops() > 300, "seed {seed}: {}", bed.total_ops());
        assert_eq!(bed.total_failed_conns(), 0, "seed {seed}");
    }
}

#[test]
fn stream_isolation_faulting_channel_does_not_slow_others() {
    // §3's "Stream Isolation" requirement: an IOuser hitting rNPFs must
    // not slow down unrelated channels. Run a warm instance alone, then
    // next to a cold (faulting) instance: its throughput must not drop.
    let solo = {
        let mut cfg = small(RxMode::Backup);
        cfg.instances = 1;
        cfg.prefault_rings = true;
        let mut bed = EthTestbed::new(cfg).expect("setup");
        bed.run_until(SimTime::from_millis(800));
        bed.metrics()[0].ops.total()
    };
    let with_neighbor = {
        let mut cfg = small(RxMode::Backup);
        cfg.instances = 2;
        // Both rings pre-faulted except... the second instance's cold
        // slab still faults on first touches; more importantly its ring
        // is cold because prefault_rings is off here. Instance 0 is
        // warmed manually through the same preload path.
        cfg.prefault_rings = false;
        let mut bed = EthTestbed::new(cfg).expect("setup");
        bed.run_until(SimTime::from_millis(800));
        bed.metrics()[0].ops.total()
    };
    let ratio = with_neighbor as f64 / solo as f64;
    assert!(
        ratio > 0.85,
        "a faulting neighbour must not steal throughput: solo {solo}, shared {with_neighbor} ({ratio:.2})"
    );
}

#[test]
fn prefetch_and_huge_pages_cut_firmware_npf_events() {
    // The ISSUE's acceptance bar for the memory fast paths: with huge
    // pages and stride prefetch on, the cold-ring startup (the fig4a
    // scenario, scaled down) must raise at least 2x fewer firmware NPF
    // events than the baseline, while serving at least as many ops.
    let run = |huge: bool, depth: u32| {
        let mut cfg = small(RxMode::Backup);
        cfg.npf = NpfConfig::default()
            .with_huge_pages(huge)
            .with_prefetch_depth(depth);
        let mut bed = EthTestbed::new(cfg).expect("setup");
        bed.run_until(SimTime::from_millis(800));
        let c = bed.engine().counters();
        (
            bed.total_ops(),
            c.get("fw_npf_events"),
            c.get("prefetch_issued"),
            c.get("prefetch_hits"),
        )
    };
    let (base_ops, base_fw, base_issued, _) = run(false, 0);
    let (fast_ops, fast_fw, fast_issued, fast_hits) = run(true, 64);
    assert_eq!(base_issued, 0, "prefetch off must never speculate");
    assert!(base_fw > 0, "the cold ring must fault at baseline");
    assert!(
        fast_fw * 2 <= base_fw,
        "huge+prefetch must cut firmware NPFs at least 2x: {base_fw} -> {fast_fw}"
    );
    assert!(
        fast_issued > 0,
        "the stride prefetcher must fire on the cold ring"
    );
    assert!(
        fast_hits > 0,
        "speculative windows must absorb later demand faults"
    );
    assert!(
        fast_ops * 100 >= base_ops * 99,
        "the fast path may not cost throughput: {base_ops} -> {fast_ops}"
    );
}

#[test]
fn tiered_backing_serves_and_migrates() {
    // A DRAM tier smaller than the working set forces demote-on-evict
    // traffic to the NVM tier; the service must stay live and the
    // engine must book tier migrations.
    let mut cfg = small(RxMode::Backup);
    cfg.instances = 2;
    cfg.host_memory = ByteSize::mib(256);
    cfg.memcached.max_bytes = ByteSize::mib(160);
    cfg.working_set_keys = 150_000;
    cfg.tier = Some(npf::memsim::manager::TierConfig {
        capacity: ByteSize::mib(256),
        disk: npf::memsim::swap::DiskConfig::nvm(),
    });
    let mut bed = EthTestbed::new(cfg).expect("setup");
    bed.run_until(SimTime::from_millis(800));
    assert!(bed.total_ops() > 300, "{} ops", bed.total_ops());
    assert_eq!(bed.total_failed_conns(), 0);
    assert!(bed.engine().counters().get("npf_events") > 0);
    // The tier actually moved pages: LRU evictions demote into NVM, and
    // re-faults on demoted pages promote back with a tier cost.
    let m = bed.engine().memory().counters();
    assert!(
        m.get("tier_demotions") > 0,
        "an overcommitted DRAM tier must demote: {m:?}"
    );
    assert!(
        m.get("tier_promotions") > 0,
        "re-faults on demoted pages must promote: {m:?}"
    );
}
