//! §2.4 end to end: strict protection (guest stage) composes with NPFs
//! (host stage). The IOuser configures its own table to fence the
//! device; the IOprovider's table stays fault-capable for the canonical
//! memory optimizations. The two are orthogonal, as the paper argues.

use iommu::nested::{Gpn, NestedTranslation, NestedWalk};
use iommu::pagetable::{DomainId, IoPageTable, TableMode};
use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::{FrameId, Vpn};
use simcore::units::ByteSize;

#[test]
fn guest_protection_and_host_faults_are_orthogonal() {
    // The IOuser grants the device exactly one buffer (gVA page 0x50 ->
    // gPA 0x100) in its strict-protection table.
    let mut guest = IoPageTable::new(DomainId(0), TableMode::PinnedOnly);
    guest.map(Vpn(0x50), FrameId(0x100), true);

    // The IOprovider's table is fault-capable and starts empty.
    let mut host = IoPageTable::new(DomainId(1), TableMode::PageFaultCapable);

    // The host OS backs guest-physical page 0x100 on demand.
    let mut mm = MemoryManager::new(MemConfig {
        total_memory: ByteSize::mib(4),
        ..MemConfig::default()
    });
    let space = mm.create_space();
    let region = mm
        .mmap(space, ByteSize::mib(1), Backing::Anonymous)
        .unwrap();

    // 1. An access outside the grant is denied by the *guest* stage, no
    //    matter what the host has mapped: strict protection.
    let mut walk = NestedWalk {
        guest: &mut guest,
        host: &mut host,
    };
    assert_eq!(
        walk.translate(Vpn(0x51), true),
        NestedTranslation::GuestDenied
    );

    // 2. An access inside the grant passes the guest stage but faults in
    //    the *host* stage: a recoverable NPF the IOprovider resolves.
    let outcome = walk.translate(Vpn(0x50), true);
    assert_eq!(outcome, NestedTranslation::HostFault(Gpn(0x100)));

    // 3. The IOprovider resolves the fault: it backs the page and maps
    //    gPA -> hPA in its stage.
    let vpn = region.start;
    let access = mm.touch(space, vpn, true).unwrap();
    let frame = access.fault.expect("first touch faults").frame;
    host.map(Vpn(0x100), frame, true);

    // 4. The same access now fully translates; the denied one stays
    //    denied.
    let mut walk = NestedWalk {
        guest: &mut guest,
        host: &mut host,
    };
    assert_eq!(
        walk.translate(Vpn(0x50), true),
        NestedTranslation::Ok(frame)
    );
    assert_eq!(
        walk.translate(Vpn(0x51), true),
        NestedTranslation::GuestDenied
    );
}
