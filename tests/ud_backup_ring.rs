//! §4 "Applicability": the Ethernet backup-ring solution applies to UD,
//! which has no connection to suspend. Datagrams landing on faulting
//! buffers would simply be lost; with the backup ring they are parked
//! and merged in order.

use memsim::types::VirtAddr;
use netsim::packet::NodeId;
use nicsim::rx::{RingId, RxDescriptor, RxEngine, RxFaultMode, RxVerdict};
use rdmasim::types::{PinnedGate, QpId, RecvWqe};
use rdmasim::ud::{UdQp, UdRecvOutcome};

const R: RingId = RingId(0);

fn post(rx: &mut RxEngine<rdmasim::ud::UdDatagram>, n: u64) {
    for i in 0..n {
        rx.post_descriptor(
            R,
            RxDescriptor {
                addr: VirtAddr(0x1000 * (i + 1)),
                capacity: 4096,
            },
        );
    }
}

#[test]
fn ud_datagrams_survive_rnpfs_via_backup_ring() {
    let mut tx = UdQp::new(QpId(1), 4096);
    let mut rx_qp = UdQp::new(QpId(2), 4096);
    let mut ring: RxEngine<rdmasim::ud::UdDatagram> =
        RxEngine::new(RxFaultMode::BackupRing { capacity: 64 });
    ring.create_ring(R, 16, 32);
    post(&mut ring, 16);

    // Eight datagrams; every second one hits an rNPF at the NIC.
    let mut backups = Vec::new();
    for i in 0..8u64 {
        let dg = tx.send(QpId(2), NodeId(1), 1000 + i);
        let present = i % 2 == 0;
        match ring.recv(R, dg, dg.wire_size(), present) {
            RxVerdict::Backup {
                bit_index,
                target_index,
                ..
            } => backups.push((bit_index, target_index)),
            RxVerdict::Stored { .. } => {}
            RxVerdict::Dropped { .. } => panic!("backup ring must absorb the fault"),
        }
    }
    assert_eq!(backups.len(), 4);

    // The IOprovider resolves each fault and merges the datagrams back.
    while let Some(e) = ring.pop_backup() {
        assert!(ring.place_resolved(R, e.target_index, e.payload, e.len));
        ring.resolve_rnpfs(R, e.bit_index);
    }

    // The IOuser consumes *in order* and feeds its UD queue pair: every
    // datagram arrives despite UD's zero delivery guarantees.
    for i in 0..8u64 {
        rx_qp.post_recv(RecvWqe {
            wr_id: i,
            addr: VirtAddr(0x100000),
            capacity: 4096,
        });
    }
    let mut lens = Vec::new();
    while let Some((dg, _)) = ring.consume(R) {
        match rx_qp.on_datagram(dg, &mut PinnedGate) {
            UdRecvOutcome::Delivered(c) => lens.push(c.len),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(lens, (0..8).map(|i| 1000 + i).collect::<Vec<_>>());
    assert_eq!(rx_qp.delivered(), 8);
    assert_eq!(rx_qp.dropped(), 0);
}

#[test]
fn ud_datagrams_are_lost_without_backup_ring() {
    let mut tx = UdQp::new(QpId(1), 4096);
    let mut ring: RxEngine<rdmasim::ud::UdDatagram> = RxEngine::new(RxFaultMode::Drop);
    ring.create_ring(R, 16, 32);
    post(&mut ring, 16);
    let mut lost = 0;
    for i in 0..8u64 {
        let dg = tx.send(QpId(2), NodeId(1), 1000 + i);
        if matches!(
            ring.recv(R, dg, dg.wire_size(), i % 2 == 0),
            RxVerdict::Dropped { .. }
        ) {
            lost += 1;
        }
    }
    // No connection, no retransmission: the data is simply gone.
    assert_eq!(lost, 4);
}
