//! The cold ring problem, live (§5, Figure 4).
//!
//! Starts three identical memcached servers behind a direct Ethernet
//! channel — one with pinned buffers, one that drops faulting packets,
//! one with the backup ring — and prints their throughput second by
//! second from a cold start.
//!
//! Run with: `cargo run --release --example cold_ring`

use simcore::{ByteSize, SimTime};
use testbed::eth::{EthConfig, EthTestbed, RxMode};
use workloads::memcached::MemcachedConfig;

fn main() {
    let config = |mode| {
        EthConfig::default()
            .with_mode(mode)
            .with_instances(1)
            .with_conns_per_instance(16)
            .with_ring_entries(64)
            .with_host_memory(ByteSize::gib(4))
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::mib(512),
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(100_000)
    };

    println!("cold start, 64-entry receive ring, 16 connections");
    println!(
        "{:>4}  {:>12} {:>12} {:>12}",
        "t[s]", "pin", "backup", "drop"
    );
    let mut beds: Vec<(&str, EthTestbed)> = vec![
        (
            "pin",
            EthTestbed::new(config(RxMode::Pin)).expect("pin setup"),
        ),
        (
            "backup",
            EthTestbed::new(config(RxMode::Backup)).expect("backup setup"),
        ),
        (
            "drop",
            EthTestbed::new(config(RxMode::Drop)).expect("drop setup"),
        ),
    ];
    let mut last = vec![0u64; beds.len()];
    for sec in 1..=20u64 {
        let mut row = format!("{sec:>4}");
        for (i, (_, bed)) in beds.iter_mut().enumerate() {
            bed.run_until(SimTime::from_secs(sec));
            let total = bed.total_ops();
            let rate = (total - last[i]) / 1000;
            last[i] = total;
            row.push_str(&format!("  {rate:>9} K/s"));
        }
        println!("{row}");
    }
    println!();
    for (name, bed) in &beds {
        println!(
            "{name:>7}: {} ops total, {} rNPF backup packets, {} dropped-on-fault, {} failed conns",
            bed.total_ops(),
            bed.rx_counters().get("backup_stored"),
            bed.rx_counters().get("dropped_fault"),
            bed.total_failed_conns(),
        );
    }
    println!("\nthe backup ring rides through the cold ring; dropping nearly deadlocks TCP");
}
