//! An iSER storage target with on-demand-paged communication buffers
//! (§6.1 "Storage", Figure 8).
//!
//! The tgt-like target statically allocates a 1 GB pool of 512 KB
//! per-transaction chunks. Pinned, that pool starves the page cache;
//! under ODP only the chunks actually in flight are backed by frames.
//!
//! Run with: `cargo run --release --example storage_server`

use simcore::ByteSize;
use testbed::storage_bed::{run_storage, StorageBedConfig};
use workloads::storage::StorageConfig;

fn main() {
    let cfg = |odp: bool, block: u64| StorageBedConfig {
        target_memory: ByteSize::gib(6),
        reserved: ByteSize::mib(900),
        block_size: block,
        sessions: 8,
        queue_depth: 16,
        total_ios: 2000,
        odp,
        pinned_headroom: ByteSize::ZERO,
        storage: StorageConfig::default(),
        warm_cache: true,
        ..StorageBedConfig::default()
    };

    println!("tgt-like target, 4 GB LUN, 1 GiB chunk pool, 8 initiator sessions, 6 GB host\n");
    for (label, odp, block) in [
        ("pinned pool, 512 KB reads", false, 512 * 1024u64),
        ("ODP pool,    512 KB reads", true, 512 * 1024),
        ("ODP pool,     64 KB reads", true, 64 * 1024),
    ] {
        match run_storage(cfg(odp, block)) {
            Ok(res) => println!(
                "{label}: {:.2} GB/s, daemon resident {}, pinned {}, cache hit {:.0}%, {} NPFs",
                res.bandwidth_gb_s,
                res.resident,
                res.pinned,
                res.cache_hit_ratio * 100.0,
                res.npf_events,
            ),
            Err(e) => println!("{label}: failed to load ({e})"),
        }
    }
    println!("\nODP backs only in-flight chunks; with 64 KB reads, 7/8 of every chunk");
    println!("is never touched and never consumes a frame (Figure 8b)");
}
