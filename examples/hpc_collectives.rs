//! MPI collectives over RDMA: registration strategies compared (§6.2,
//! Figure 9).
//!
//! Runs IMB-style sendrecv/bcast/alltoall on an 8-node 56 Gb/s cluster
//! under three registration strategies: CPU copying through bounce
//! buffers, a pin-down cache, and on-demand paging.
//!
//! Run with: `cargo run --release --example hpc_collectives`

use npf_core::pinning::Strategy;
use simcore::ByteSize;
use testbed::mpi_run::{run_collective, MpiRunConfig};
use workloads::mpi::Collective;

fn main() {
    println!("8 ranks, 64 KB messages, IMB off-cache mode (16 rotating buffers)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "collective", "copy", "pin-cache", "ODP/NPF"
    );
    for collective in [
        Collective::SendRecv,
        Collective::Bcast,
        Collective::AllToAll,
        Collective::AllReduce,
    ] {
        let mut cells = Vec::new();
        for strategy in [
            Strategy::Copy,
            Strategy::PinDownCache {
                capacity: ByteSize::mib(256),
            },
            Strategy::Odp,
        ] {
            let res = run_collective(MpiRunConfig {
                ranks: 8,
                message_bytes: 64 * 1024,
                iterations: 30,
                warmup_iterations: 18,
                strategy,
                off_cache_buffers: 16,
                collective,
                seed: 21,
            });
            cells.push(format!("{:.1} us", res.per_iteration.as_micros_f64()));
        }
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            collective.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("\nODP matches the pin-down cache without pinning a single page;");
    println!(
        "copying pays CPU bandwidth per byte (except allreduce, which reduces on the CPU anyway)"
    );
}
