//! Quickstart: network page faults in ten minutes.
//!
//! Builds a host (memory manager + NPF engine), creates a direct-I/O
//! channel, and walks one receive page fault through the full Figure 2
//! flow: DMA misses → page request → OS resolution → IOMMU update →
//! resume. Then demonstrates the invalidation flow by evicting the page
//! under memory pressure.
//!
//! Run with: `cargo run --release --example quickstart`

use memsim::manager::{MemConfig, MemoryManager};
use memsim::space::Backing;
use memsim::types::Vpn;
use npf_core::npf::{NpfConfig, NpfEngine};
use simcore::{ByteSize, SimRng, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A host with 64 MiB of physical memory.
    let mm = MemoryManager::new(MemConfig {
        total_memory: ByteSize::mib(64),
        ..MemConfig::default()
    });
    let mut engine = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(42));

    // An IOuser (process/VM) with a 16 MiB buffer region — more than
    // nothing is pinned, nothing is resident yet.
    let space = engine.memory_mut().create_space();
    let buffers = engine
        .memory_mut()
        .mmap(space, ByteSize::mib(16), Backing::Anonymous)?;
    let channel = engine.create_channel(space);
    println!(
        "channel {channel} bound to {space}; buffers at {}",
        buffers.start
    );

    // The NIC tries to DMA into a cold buffer: not present.
    let addr = buffers.start.base();
    assert!(!engine.dma_ready(channel, addr, 4096, true));
    println!("DMA to {addr} would fault (page not present)");

    // Figure 2, steps 1-4: the fault is raised and resolved.
    let fault = engine
        .begin_fault(SimTime::ZERO, channel, addr, 4096, true, None)?
        .clone();
    println!(
        "NPF {}: trigger {} + driver {} + PT update {} + resume {} = {}",
        fault.id,
        fault.breakdown.trigger_interrupt,
        fault.breakdown.driver,
        fault.breakdown.update_hw_pt,
        fault.breakdown.resume,
        fault.breakdown.total(),
    );
    engine.complete_fault(fault.id);
    assert!(engine.dma_ready(channel, addr, 4096, true));
    println!("mapping installed; the NIC resumes at t={}", fault.ready_at);

    // Memory pressure: touching every other page eventually evicts the
    // DMA-mapped one; the engine runs the invalidation flow (Figure 2
    // a-d) so the NIC never uses a stale translation.
    for vpn in buffers.iter().skip(1) {
        engine.touch(space, vpn, true)?;
    }
    // Also map and touch a second region to exceed physical memory.
    let more = engine
        .memory_mut()
        .mmap(space, ByteSize::mib(56), Backing::Anonymous)?;
    for vpn in more.iter() {
        engine.touch(space, vpn, true)?;
    }
    assert!(!engine.dma_ready(channel, addr, 4096, true));
    println!(
        "after pressure: page evicted, IOMMU invalidated ({} invalidations, {} of them mapped)",
        engine.counters().get("invalidations"),
        engine.counters().get("invalidations_mapped"),
    );

    // The next DMA simply faults again — no pinning anywhere.
    let again = engine
        .begin_fault(SimTime::ZERO, channel, addr, 4096, true, None)?
        .clone();
    println!(
        "re-fault resolves in {} ({} was swapped back in)",
        again.breakdown.total(),
        Vpn(buffers.start.0).base(),
    );
    println!(
        "totals: {} NPF events, {} major",
        engine.counters().get("npf_events"),
        engine.counters().get("npf_major"),
    );
    Ok(())
}
