//! Memory overcommitment with direct network I/O (§6.1, Table 5).
//!
//! Four memcached VMs, each believing it has 3 GB, on an 8 GB host.
//! With static pinning the third VM cannot even start; with NPFs all
//! four run, because physical memory follows actual use.
//!
//! Run with: `cargo run --release --example memcached_overcommit`

use simcore::{ByteSize, SimTime};
use testbed::eth::{EthConfig, EthTestbed, RxMode};
use workloads::memcached::MemcachedConfig;

fn main() {
    let config = |mode, instances| {
        EthConfig::default()
            .with_mode(mode)
            .with_instances(instances)
            .with_conns_per_instance(16)
            .with_host_memory(ByteSize::gib(8))
            .with_memcached(MemcachedConfig {
                max_bytes: ByteSize::gib(3), // what the VM thinks it has
                ..MemcachedConfig::default()
            })
            .with_working_set_keys(1_200_000) // ~1.2 GB actually used
    };

    println!("8 GB host; each memcached VM is allocated 3 GB but uses ~1.2 GB\n");
    println!("{:>10} {:>14} {:>14}", "instances", "NPF", "static pinning");
    for n in 1..=4 {
        let npf = run(config(RxMode::Backup, n));
        let pin = run(config(RxMode::Pin, n));
        println!(
            "{n:>10} {:>14} {:>14}",
            npf.map_or("-".into(), |k| format!("{k} KTPS")),
            pin.map_or("cannot start".into(), |k| format!("{k} KTPS")),
        );
    }
    println!("\npinning reserves 3 GB per VM up front (2 x 3 = 6 GB fits, 3 x 3 = 9 GB does not);");
    println!("NPFs back only the pages each VM actually touches");
}

fn run(config: EthConfig) -> Option<u64> {
    let mut bed = EthTestbed::new(config).ok()?;
    bed.run_until(SimTime::from_secs(1));
    let before = bed.total_ops();
    bed.run_until(SimTime::from_secs(3));
    Some((bed.total_ops() - before) / 2 / 1000)
}
