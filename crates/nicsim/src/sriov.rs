//! SR-IOV IOchannels and packet steering.
//!
//! An SR-IOV-capable NIC exposes multiple instances of itself
//! (IOchannels, Table 2) that the IOprovider assigns to untrusted
//! IOusers. Each channel bundles a receive ring, a transmit queue, and
//! an IOMMU translation domain bound to the IOuser's address space.
//!
//! Steering: regular inbound packets are steered "according to their
//! content" (§5) — here, by destination TCP/UDP port — while
//! backup-ring entries are steered by NIC-attached metadata.

use simcore::fxhash::FxHashMap;

use iommu::DomainId;
use memsim::types::SpaceId;

use crate::rx::RingId;

/// Identifier of one IOchannel (virtual function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Configuration of one IOchannel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// The channel id.
    pub id: ChannelId,
    /// The IOuser address space this channel belongs to.
    pub space: SpaceId,
    /// Its IOMMU translation domain.
    pub domain: DomainId,
    /// Its receive ring.
    pub rx_ring: RingId,
}

/// The channel table plus port-based steering.
#[derive(Debug, Default)]
pub struct ChannelTable {
    channels: FxHashMap<ChannelId, Channel>,
    by_ring: FxHashMap<RingId, ChannelId>,
    steering: FxHashMap<u16, ChannelId>,
    next_id: u32,
}

impl ChannelTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ChannelTable::default()
    }

    /// Allocates a channel for `space` using `domain` and `rx_ring`.
    pub fn create(&mut self, space: SpaceId, domain: DomainId, rx_ring: RingId) -> ChannelId {
        let id = ChannelId(self.next_id);
        self.next_id += 1;
        let ch = Channel {
            id,
            space,
            domain,
            rx_ring,
        };
        self.channels.insert(id, ch);
        self.by_ring.insert(rx_ring, id);
        id
    }

    /// Steers packets with this destination port to `channel`.
    ///
    /// # Panics
    ///
    /// Panics for unknown channels.
    pub fn steer_port(&mut self, port: u16, channel: ChannelId) {
        assert!(self.channels.contains_key(&channel), "unknown {channel}");
        self.steering.insert(port, channel);
    }

    /// The channel a packet with destination `port` steers to.
    #[must_use]
    pub fn lookup_port(&self, port: u16) -> Option<Channel> {
        self.steering
            .get(&port)
            .and_then(|id| self.channels.get(id))
            .copied()
    }

    /// The channel owning a ring (backup-path reverse lookup).
    #[must_use]
    pub fn by_ring(&self, ring: RingId) -> Option<Channel> {
        self.by_ring
            .get(&ring)
            .and_then(|id| self.channels.get(id))
            .copied()
    }

    /// The channel by id.
    #[must_use]
    pub fn get(&self, id: ChannelId) -> Option<Channel> {
        self.channels.get(&id).copied()
    }

    /// All channels, in id order.
    pub fn iter(&self) -> impl Iterator<Item = Channel> + '_ {
        let mut v: Vec<Channel> = self.channels.values().copied().collect();
        v.sort_by_key(|c| c.id);
        v.into_iter()
    }

    /// Number of channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// `true` when no channels exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_routes_by_port() {
        let mut t = ChannelTable::new();
        let a = t.create(SpaceId(1), DomainId(1), RingId(1));
        let b = t.create(SpaceId(2), DomainId(2), RingId(2));
        t.steer_port(11211, a);
        t.steer_port(11212, b);
        assert_eq!(t.lookup_port(11211).expect("channel").space, SpaceId(1));
        assert_eq!(t.lookup_port(11212).expect("channel").space, SpaceId(2));
        assert!(t.lookup_port(80).is_none());
    }

    #[test]
    fn ring_reverse_lookup() {
        let mut t = ChannelTable::new();
        let a = t.create(SpaceId(1), DomainId(1), RingId(1));
        assert_eq!(t.by_ring(RingId(1)).expect("channel").id, a);
        assert!(t.by_ring(RingId(9)).is_none());
    }

    #[test]
    fn iter_is_ordered() {
        let mut t = ChannelTable::new();
        for i in 0..4 {
            t.create(SpaceId(i), DomainId(i), RingId(i));
        }
        let ids: Vec<u32> = t.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(t.len(), 4);
    }
}
