//! Receive rings and the Figure-6 backup-ring engine.
//!
//! This module is a faithful implementation of the paper's hardware
//! pseudo-code (Figure 6). Each IOuser ring tracks:
//!
//! * `tail` — descriptors posted by the IOuser (absolute count),
//! * `head` — the first descriptor *not yet announced* to the IOuser;
//!   it points at the oldest unresolved rNPF while any are pending,
//! * `head_offset` — how far past `head` the NIC has kept receiving
//!   (skipping faulted slots, storing fresh packets in later slots),
//! * `bitmap`/`bm_index` — which of the skipped slots still await
//!   resolution; `bm_size` bounds how many packets the IOprovider is
//!   willing to hold for this ring.
//!
//! The NIC never reports new packets to the IOuser until every earlier
//! rNPF is resolved, preserving in-order delivery.

use std::collections::VecDeque;

use memsim::types::VirtAddr;
use simcore::chaos::invariant;
use simcore::journal;
use simcore::stats::Counters;
use simcore::trace::{self, ArgValue};

/// Identifier of one IOuser receive ring (one per IOchannel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingId(pub u32);

impl std::fmt::Display for RingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ring{}", self.0)
    }
}

/// A receive descriptor posted by the IOuser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxDescriptor {
    /// Buffer virtual address in the IOuser's space.
    pub addr: VirtAddr,
    /// Buffer capacity in bytes.
    pub capacity: u64,
}

/// A slot in an IOuser ring.
#[derive(Debug, Clone)]
enum Slot<P> {
    /// Posted, empty.
    Posted(RxDescriptor),
    /// Filled with a received packet (directly or via resolution).
    Filled { payload: P, len: u64 },
    /// Skipped due to an rNPF; awaiting the IOprovider's copy-back.
    Skipped,
    /// Consumed by a drop-mode fault: the descriptor was burned, the
    /// packet discarded. The IOuser sees a hole and reposts.
    Hole,
}

/// One IOuser receive ring.
#[derive(Debug)]
pub struct IoUserRing<P> {
    size: u64,
    bm_size: u64,
    slots: Vec<Option<Slot<P>>>,
    tail: u64,
    head: u64,
    head_offset: u64,
    bm_index: u64,
    bitmap: Vec<bool>,
    /// Number of set bits in `bitmap`, maintained on every transition so
    /// pending-rNPF queries never rescan the bitmap.
    pending_bits: u64,
    /// IOuser consumption cursor (entries below `consumed` were read).
    consumed: u64,
    /// Holes passed over by `consume` since the last `take_skipped_holes`.
    holes_pending_repost: u64,
    /// The IOprovider asked to be interrupted when the tail moves
    /// (resolver backpressure, §5 "Driver").
    tail_interrupt_requested: bool,
}

/// How the NIC disposed of one inbound packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// Stored directly in the IOuser ring.
    Stored {
        /// Absolute index of the slot used.
        index: u64,
        /// `true` when the IOuser should be interrupted (no pending
        /// rNPFs block announcement).
        notify_iouser: bool,
    },
    /// Redirected to the backup ring; the IOprovider must resolve.
    Backup {
        /// Slot in the backup ring.
        backup_index: u64,
        /// Bitmap index to pass back via `resolve_rnpfs`.
        bit_index: u64,
        /// Target index in the IOuser ring reserved for the copy-back.
        target_index: u64,
    },
    /// Dropped (no backup ring, backup full, or bitmap budget
    /// exhausted).
    Dropped {
        /// `true` when a posted descriptor was consumed by the drop
        /// (drop-mode fault): the IOuser must be notified so it reposts.
        burned_descriptor: bool,
    },
}

/// Metadata the NIC attaches to a backup-ring entry so the IOprovider
/// can merge the packet back (§5: packets in the backup ring are steered
/// by metadata, not content).
#[derive(Debug, Clone)]
pub struct BackupEntry<P> {
    /// The IOuser ring the packet belongs to.
    pub ring: RingId,
    /// Absolute target index in that ring.
    pub target_index: u64,
    /// Bitmap index for `resolve_rnpfs`.
    pub bit_index: u64,
    /// Packet length.
    pub len: u64,
    /// The packet payload.
    pub payload: P,
}

/// The pinned backup ring owned by the IOprovider.
#[derive(Debug)]
struct BackupRing<P> {
    size: u64,
    head: u64,
    tail: u64,
    /// FIFO of stored entries: the front is absolute index `head`, the
    /// back `tail - 1` (stores push back, drains pop front).
    entries: VecDeque<BackupEntry<P>>,
    /// Entries currently in the ring, indexed by the dense IOuser ring
    /// id (quota enforcement + per-tenant metrics).
    per_ring: Vec<u64>,
    /// High-water mark of `per_ring` (per-tenant occupancy peaks).
    hwm: Vec<u64>,
}

impl<P> BackupRing<P> {
    /// Grows a dense per-ring table to cover `id`.
    fn slot(v: &mut Vec<u64>, id: RingId) -> &mut u64 {
        let idx = id.0 as usize;
        if idx >= v.len() {
            v.resize(idx + 1, 0);
        }
        &mut v[idx]
    }
}

/// How backup-ring capacity is shared between tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackupPolicy {
    /// One shared pool, first come first served (the paper's design): a
    /// single cold tenant can fill the whole ring.
    #[default]
    Shared,
    /// Each IOuser ring may hold at most `quota` entries at once; a
    /// tenant at its quota drops instead of crowding out the others
    /// (the cold-ring problem at tenant granularity).
    Partitioned {
        /// Per-tenant occupancy cap, in packets.
        quota: u64,
    },
}

/// Receive-fault policy of the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxFaultMode {
    /// Discard packets that hit an rNPF (the strawman the paper shows
    /// nearly deadlocks TCP, Figure 4).
    Drop,
    /// Redirect them to the backup ring (the paper's design).
    BackupRing {
        /// Backup ring capacity in packets.
        capacity: u64,
    },
}

/// The NIC's receive engine: all IOuser rings plus the backup ring.
#[derive(Debug)]
pub struct RxEngine<P> {
    /// IOuser rings, indexed by the dense ring id.
    rings: Vec<Option<IoUserRing<P>>>,
    backup: Option<BackupRing<P>>,
    mode: RxFaultMode,
    policy: BackupPolicy,
    /// Invariant-checker key of this engine's backup ring: fresh per
    /// engine, so depth accounting never aliases across the many
    /// testbeds an experiment binary builds in one process.
    backup_key: u64,
    counters: Counters,
}

impl<P: Clone> RxEngine<P> {
    /// Creates an engine with the given fault policy.
    #[must_use]
    pub fn new(mode: RxFaultMode) -> Self {
        let backup_key = invariant::fresh_namespace();
        let backup = match mode {
            RxFaultMode::Drop => None,
            RxFaultMode::BackupRing { capacity } => {
                invariant::note_backup_capacity(backup_key, capacity);
                Some(BackupRing {
                    size: capacity,
                    head: 0,
                    tail: 0,
                    entries: VecDeque::new(),
                    per_ring: Vec::new(),
                    hwm: Vec::new(),
                })
            }
        };
        RxEngine {
            rings: Vec::new(),
            backup,
            mode,
            policy: BackupPolicy::Shared,
            backup_key,
            counters: Counters::new(),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn mode(&self) -> RxFaultMode {
        self.mode
    }

    /// Selects how backup capacity is shared between tenants.
    pub fn set_backup_policy(&mut self, policy: BackupPolicy) {
        self.policy = policy;
    }

    /// The tenant-sharing policy in force.
    #[must_use]
    pub fn backup_policy(&self) -> BackupPolicy {
        self.policy
    }

    /// Backup entries currently held for one IOuser ring.
    #[must_use]
    pub fn backup_occupancy(&self, id: RingId) -> u64 {
        self.backup
            .as_ref()
            .and_then(|b| b.per_ring.get(id.0 as usize).copied())
            .unwrap_or(0)
    }

    /// The highest backup occupancy one IOuser ring ever reached.
    #[must_use]
    pub fn backup_hwm(&self, id: RingId) -> u64 {
        self.backup
            .as_ref()
            .and_then(|b| b.hwm.get(id.0 as usize).copied())
            .unwrap_or(0)
    }

    /// Statistics: `stored`, `backup_stored`, `dropped_fault`,
    /// `dropped_no_buffer`, `dropped_quota`, `resolved`,
    /// `bounced_fault`.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Records a faulting receive whose target buffer is being staged
    /// through a driver-level bounce buffer instead of a firmware NPF
    /// event (the softemu backend). The verdict (drop/backup) is
    /// unchanged — this only attributes the fault's servicing path.
    pub fn note_bounced_fault(&mut self) {
        self.counters.bump("bounced_fault");
    }

    /// Creates an IOuser ring of `size` entries whose bitmap (backup
    /// budget) holds `bm_size` pending rNPFs.
    pub fn create_ring(&mut self, id: RingId, size: u64, bm_size: u64) {
        assert!(size.is_power_of_two(), "ring sizes are powers of two");
        let idx = id.0 as usize;
        if idx >= self.rings.len() {
            self.rings.resize_with(idx + 1, || None);
        }
        self.rings[idx] = Some(IoUserRing {
            size,
            bm_size,
            slots: vec![None; size as usize],
            tail: 0,
            head: 0,
            head_offset: 0,
            bm_index: 0,
            bitmap: vec![false; bm_size as usize],
            pending_bits: 0,
            consumed: 0,
            holes_pending_repost: 0,
            tail_interrupt_requested: false,
        });
    }

    fn ring(&self, id: RingId) -> &IoUserRing<P> {
        self.rings
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .expect("unknown ring")
    }

    fn ring_mut(&mut self, id: RingId) -> &mut IoUserRing<P> {
        self.rings
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown ring")
    }

    /// IOuser posts one receive descriptor. Returns `true` when the
    /// IOprovider had requested a tail interrupt (which this post
    /// satisfies and clears).
    pub fn post_descriptor(&mut self, id: RingId, desc: RxDescriptor) -> bool {
        let r = self.ring_mut(id);
        assert!(
            r.tail - r.consumed < r.size,
            "IOuser overposted ring {id}: tail {} consumed {}",
            r.tail,
            r.consumed
        );
        let slot = (r.tail % r.size) as usize;
        debug_assert!(r.slots[slot].is_none(), "slot reuse before consume");
        r.slots[slot] = Some(Slot::Posted(desc));
        r.tail += 1;
        std::mem::take(&mut r.tail_interrupt_requested)
    }

    /// Number of descriptors posted and not yet filled or skipped.
    #[must_use]
    pub fn free_descriptors(&self, id: RingId) -> u64 {
        let r = self.ring(id);
        r.tail - (r.head + r.head_offset)
    }

    /// The descriptor the next packet would target, if one is posted.
    #[must_use]
    pub fn target_descriptor(&self, id: RingId) -> Option<RxDescriptor> {
        let r = self.ring(id);
        let idx = r.head + r.head_offset;
        if idx >= r.tail {
            return None;
        }
        match r.slots[(idx % r.size) as usize] {
            Some(Slot::Posted(d)) => Some(d),
            _ => None,
        }
    }

    /// Figure 6 `recv()`: disposes of one inbound packet for ring `id`.
    ///
    /// `present` is the outcome of the IOMMU probe for the target
    /// buffer: `true` means the DMA can proceed (the caller already
    /// performed it); `false` means it faulted (the caller already
    /// raised the page request).
    pub fn recv(&mut self, id: RingId, payload: P, len: u64, present: bool) -> RxVerdict {
        // Field-precise borrows: the ring and the backup ring are
        // touched together below.
        let r = self
            .rings
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown ring");
        let idx = r.head + r.head_offset;
        let posted = idx < r.tail;
        if posted && present {
            // Store in the IOuser ring.
            let slot = (idx % r.size) as usize;
            assert!(
                matches!(r.slots[slot], Some(Slot::Posted(_))),
                "posted slot in bad state"
            );
            r.slots[slot] = Some(Slot::Filled { payload, len });
            let notify = if r.head_offset > 0 {
                r.head_offset += 1;
                false
            } else {
                r.head += 1;
                true
            };
            self.counters.bump("stored");
            if trace::enabled() {
                let (head, tail) = (r.head, r.tail);
                trace::counter_now("nicsim", "ring_head", head as f64);
                trace::counter_now("nicsim", "ring_tail", tail as f64);
                trace::metrics(|m| m.counter_add("nicsim.rx_stored", 1));
            }
            return RxVerdict::Stored {
                index: idx,
                notify_iouser: notify,
            };
        }
        // rNPF (or missing descriptor): try the backup ring.
        let Some(backup) = self.backup.as_mut() else {
            // Drop mode: a faulting descriptor is *consumed* — the NIC
            // moves on, so every subsequent packet burns a fresh (cold)
            // descriptor. This is what makes the cold ring so damaging
            // (Figure 4): the ring must wrap before packets land.
            if posted {
                let slot = (idx % r.size) as usize;
                r.slots[slot] = Some(Slot::Hole);
                r.head += 1;
                self.counters.bump("dropped_fault");
                journal::mark(journal::MarkKind::RxDrop, u64::from(id.0));
                if trace::enabled() {
                    trace::instant_now(
                        "nicsim",
                        "steer_drop",
                        vec![
                            ("ring", ArgValue::U64(u64::from(id.0))),
                            ("burned_descriptor", ArgValue::Bool(true)),
                        ],
                    );
                    trace::metrics(|m| m.counter_add("nicsim.rx_dropped_fault", 1));
                }
                return RxVerdict::Dropped {
                    burned_descriptor: true,
                };
            }
            self.counters.bump("dropped_no_buffer");
            journal::mark(journal::MarkKind::RxDrop, u64::from(id.0));
            if trace::enabled() {
                trace::instant_now(
                    "nicsim",
                    "steer_drop",
                    vec![
                        ("ring", ArgValue::U64(u64::from(id.0))),
                        ("burned_descriptor", ArgValue::Bool(false)),
                    ],
                );
                trace::metrics(|m| m.counter_add("nicsim.rx_dropped_no_buffer", 1));
            }
            return RxVerdict::Dropped {
                burned_descriptor: false,
            };
        };
        invariant::note_backup_offered();
        // Partitioned quota: a tenant at its cap drops its own packet
        // instead of crowding the shared ring.
        if let BackupPolicy::Partitioned { quota } = self.policy {
            if backup.per_ring.get(id.0 as usize).copied().unwrap_or(0) >= quota {
                invariant::note_backup_dropped();
                self.counters.bump("dropped_quota");
                self.counters.bump("dropped_fault");
                journal::mark(journal::MarkKind::RxDrop, u64::from(id.0));
                if trace::enabled() {
                    trace::instant_now(
                        "nicsim",
                        "backup_quota_drop",
                        vec![
                            ("ring", ArgValue::U64(u64::from(id.0))),
                            ("quota", ArgValue::U64(quota)),
                        ],
                    );
                    trace::metrics(|m| m.counter_add("nicsim.backup_quota_drop", 1));
                }
                return RxVerdict::Dropped {
                    burned_descriptor: false,
                };
            }
        }
        if r.head_offset >= r.bm_size || backup.tail - backup.head >= backup.size {
            // Backup overflow: the packet is lost but the descriptor is
            // kept (the pending rNPF at this slot will be resolved by an
            // earlier backup entry or a retransmission). Never silent:
            // the drop is counted and the invariant checker told.
            invariant::note_backup_dropped();
            self.counters.bump("dropped_fault");
            journal::mark(journal::MarkKind::RxDrop, u64::from(id.0));
            if trace::enabled() {
                trace::instant_now(
                    "nicsim",
                    "backup_overflow",
                    vec![
                        ("ring", ArgValue::U64(u64::from(id.0))),
                        ("backup_depth", ArgValue::U64(backup.tail - backup.head)),
                        ("head_offset", ArgValue::U64(r.head_offset)),
                    ],
                );
                trace::metrics(|m| m.counter_add("nicsim.backup_overflow", 1));
            }
            return RxVerdict::Dropped {
                burned_descriptor: false,
            };
        }
        let backup_index = backup.tail;
        let bit_index = r.bm_index + r.head_offset;
        backup.entries.push_back(BackupEntry {
            ring: id,
            target_index: idx,
            bit_index,
            len,
            payload,
        });
        backup.tail += 1;
        let occ = BackupRing::<P>::slot(&mut backup.per_ring, id);
        *occ += 1;
        let occ = *occ;
        let hwm = BackupRing::<P>::slot(&mut backup.hwm, id);
        *hwm = (*hwm).max(occ);
        invariant::note_backup_stored(self.backup_key);
        let bit = (bit_index % r.bm_size) as usize;
        if !r.bitmap[bit] {
            r.bitmap[bit] = true;
            r.pending_bits += 1;
        }
        // Mark the slot as skipped if a descriptor exists there; if the
        // IOuser has not posted it yet, the copy-back will wait.
        if posted {
            let slot = (idx % r.size) as usize;
            if matches!(r.slots[slot], Some(Slot::Posted(_))) {
                r.slots[slot] = Some(Slot::Skipped);
            }
        }
        r.head_offset += 1;
        self.counters.bump("backup_stored");
        journal::mark(journal::MarkKind::RxBackupDivert, idx);
        if trace::enabled() {
            trace::instant_now(
                "nicsim",
                "steer_backup",
                vec![
                    ("ring", ArgValue::U64(u64::from(id.0))),
                    ("target_index", ArgValue::U64(idx)),
                    ("bit_index", ArgValue::U64(bit_index)),
                ],
            );
            trace::counter_now("nicsim", "backup_depth", (backup.tail - backup.head) as f64);
            trace::counter_now("nicsim", "bitmap_pending", r.pending_bits as f64);
            trace::metrics(|m| m.counter_add("nicsim.rx_backup_stored", 1));
        }
        RxVerdict::Backup {
            backup_index,
            bit_index,
            target_index: idx,
        }
    }

    /// The IOprovider drains one backup-ring entry (interrupt handler
    /// path). Entries come out in arrival order.
    pub fn pop_backup(&mut self) -> Option<BackupEntry<P>> {
        let backup = self.backup.as_mut()?;
        if backup.head == backup.tail {
            return None;
        }
        let e = backup.entries.pop_front().expect("entry exists");
        backup.head += 1;
        if let Some(occ) = backup.per_ring.get_mut(e.ring.0 as usize) {
            *occ = occ.saturating_sub(1);
        }
        invariant::note_backup_drained(self.backup_key);
        Some(e)
    }

    /// Pending entries in the backup ring.
    #[must_use]
    pub fn backup_depth(&self) -> u64 {
        self.backup.as_ref().map_or(0, |b| b.tail - b.head)
    }

    /// The IOprovider finished resolving an rNPF: it re-executed the DMA
    /// into `target_index` (via [`RxEngine::place_resolved`]) and now
    /// reports the bitmap index. Figure 6 `resolve_rNPFs()`.
    ///
    /// Returns `true` when `head` advanced (the IOuser should be
    /// interrupted: previously-blocked packets are now announced).
    pub fn resolve_rnpfs(&mut self, id: RingId, bit_index: u64) -> bool {
        let r = self.ring_mut(id);
        let bit = (bit_index % r.bm_size) as usize;
        if r.bitmap[bit] {
            r.bitmap[bit] = false;
            r.pending_bits -= 1;
        }
        let mut advanced = false;
        while r.head_offset > 0 && !r.bitmap[(r.bm_index % r.bm_size) as usize] {
            // The slot at `head` must actually hold data: either it was
            // filled directly (packets stored past a fault) or the
            // provider placed the resolved packet.
            let slot = (r.head % r.size) as usize;
            match r.slots[slot] {
                Some(Slot::Filled { .. }) => {}
                _ => break, // copy-back not done yet
            }
            r.head_offset -= 1;
            r.head += 1;
            r.bm_index += 1;
            advanced = true;
        }
        let head = r.head;
        let bitmap_pending = r.pending_bits;
        self.counters.bump("resolved");
        if trace::enabled() {
            trace::instant_now(
                "nicsim",
                "rnpf_resolved",
                vec![
                    ("ring", ArgValue::U64(u64::from(id.0))),
                    ("bit_index", ArgValue::U64(bit_index)),
                    ("head_advanced", ArgValue::Bool(advanced)),
                ],
            );
            trace::counter_now("nicsim", "ring_head", head as f64);
            trace::counter_now("nicsim", "bitmap_pending", bitmap_pending as f64);
            trace::metrics(|m| m.counter_add("nicsim.rnpfs_resolved", 1));
        }
        advanced
    }

    /// The IOprovider copies a resolved packet into its reserved slot.
    /// The slot must have a descriptor (posted before or after the
    /// fault).
    ///
    /// Returns `false` when no descriptor is available yet (the resolver
    /// thread must wait for the IOuser to post buffers and retry — the
    /// `tail_interrupt` mechanism).
    pub fn place_resolved(&mut self, id: RingId, target_index: u64, payload: P, len: u64) -> bool {
        let r = self.ring_mut(id);
        if target_index >= r.tail {
            return false; // IOuser has not posted this far yet
        }
        let slot = (target_index % r.size) as usize;
        match r.slots[slot].take() {
            Some(Slot::Skipped) | Some(Slot::Posted(_)) => {
                r.slots[slot] = Some(Slot::Filled { payload, len });
                true
            }
            other => {
                r.slots[slot] = other;
                false
            }
        }
    }

    /// The IOprovider asks to be interrupted when the IOuser next posts
    /// a descriptor (so the resolver can continue).
    pub fn request_tail_interrupt(&mut self, id: RingId) {
        self.ring_mut(id).tail_interrupt_requested = true;
    }

    /// IOuser consumption: pops the next announced packet, if any,
    /// transparently skipping drop-mode holes (their descriptors are
    /// counted for reposting via [`RxEngine::take_skipped_holes`]).
    /// Packets are announced once `head` has passed them.
    pub fn consume(&mut self, id: RingId) -> Option<(P, u64)> {
        let r = self.ring_mut(id);
        while r.consumed < r.head {
            let slot = (r.consumed % r.size) as usize;
            match r.slots[slot].take() {
                Some(Slot::Filled { payload, len }) => {
                    r.consumed += 1;
                    return Some((payload, len));
                }
                Some(Slot::Hole) => {
                    r.consumed += 1;
                    r.holes_pending_repost += 1;
                }
                other => {
                    // Announced slots are filled or holes; anything else
                    // is an ordering bug.
                    panic!(
                        "announced slot {} in bad state {}",
                        r.consumed,
                        other.is_some()
                    );
                }
            }
        }
        None
    }

    /// Returns (and resets) the number of holes `consume` passed over;
    /// the IOuser reposts that many descriptors.
    pub fn take_skipped_holes(&mut self, id: RingId) -> u64 {
        std::mem::take(&mut self.ring_mut(id).holes_pending_repost)
    }

    /// Packets announced and not yet consumed.
    #[must_use]
    pub fn readable_packets(&self, id: RingId) -> u64 {
        let r = self.ring(id);
        r.head - r.consumed
    }

    /// Pending (unresolved) rNPFs on a ring.
    #[must_use]
    pub fn pending_rnpfs(&self, id: RingId) -> u64 {
        self.ring(id).pending_bits
    }

    /// Current absolute head (announced watermark).
    #[must_use]
    pub fn head(&self, id: RingId) -> u64 {
        self.ring(id).head
    }

    /// Current absolute tail (posted watermark).
    #[must_use]
    pub fn tail(&self, id: RingId) -> u64 {
        self.ring(id).tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RingId = RingId(0);

    fn engine(mode: RxFaultMode) -> RxEngine<&'static str> {
        let mut e = RxEngine::new(mode);
        e.create_ring(R, 8, 16);
        e
    }

    fn post_n(e: &mut RxEngine<&'static str>, n: u64) {
        for i in 0..n {
            e.post_descriptor(
                R,
                RxDescriptor {
                    addr: VirtAddr(0x10000 + i * 0x1000),
                    capacity: 2048,
                },
            );
        }
    }

    #[test]
    fn direct_store_announces_immediately() {
        let mut e = engine(RxFaultMode::Drop);
        post_n(&mut e, 4);
        let v = e.recv(R, "pkt0", 100, true);
        assert_eq!(
            v,
            RxVerdict::Stored {
                index: 0,
                notify_iouser: true
            }
        );
        assert_eq!(e.readable_packets(R), 1);
        assert_eq!(e.consume(R), Some(("pkt0", 100)));
        assert_eq!(e.consume(R), None);
    }

    #[test]
    fn drop_mode_burns_descriptors() {
        let mut e = engine(RxFaultMode::Drop);
        post_n(&mut e, 4);
        let v = e.recv(R, "pkt0", 100, false);
        assert_eq!(
            v,
            RxVerdict::Dropped {
                burned_descriptor: true
            }
        );
        assert_eq!(e.counters().get("dropped_fault"), 1);
        // The descriptor was consumed: the next packet targets slot 1.
        let v = e.recv(R, "pkt1", 101, true);
        assert_eq!(
            v,
            RxVerdict::Stored {
                index: 1,
                notify_iouser: true
            }
        );
        // Consuming skips the hole and reports it for reposting.
        assert_eq!(e.consume(R), Some(("pkt1", 101)));
        assert_eq!(e.take_skipped_holes(R), 1);
        assert_eq!(e.take_skipped_holes(R), 0);
    }

    #[test]
    fn no_descriptor_drops_in_drop_mode() {
        let mut e = engine(RxFaultMode::Drop);
        let v = e.recv(R, "pkt0", 100, true);
        assert_eq!(
            v,
            RxVerdict::Dropped {
                burned_descriptor: false
            }
        );
        assert_eq!(e.counters().get("dropped_no_buffer"), 1);
    }

    #[test]
    fn fault_goes_to_backup_and_blocks_announcements() {
        let mut e = engine(RxFaultMode::BackupRing { capacity: 64 });
        post_n(&mut e, 4);
        // Packet 0 faults -> backup; packets 1 and 2 store fine but are
        // NOT announced (ordering).
        let v0 = e.recv(R, "pkt0", 100, false);
        let RxVerdict::Backup {
            backup_index,
            bit_index,
            target_index,
        } = v0
        else {
            panic!("expected backup, got {v0:?}");
        };
        assert_eq!((backup_index, bit_index, target_index), (0, 0, 0));
        let v1 = e.recv(R, "pkt1", 101, true);
        assert_eq!(
            v1,
            RxVerdict::Stored {
                index: 1,
                notify_iouser: false
            }
        );
        e.recv(R, "pkt2", 102, true);
        assert_eq!(e.readable_packets(R), 0, "no announcement past a fault");
        assert_eq!(e.backup_depth(), 1);

        // The provider drains the backup entry, resolves the fault,
        // copies the packet back, and reports.
        let entry = e.pop_backup().expect("entry");
        assert_eq!(entry.ring, R);
        assert_eq!(entry.payload, "pkt0");
        assert!(e.place_resolved(R, entry.target_index, entry.payload, entry.len));
        let advanced = e.resolve_rnpfs(R, entry.bit_index);
        assert!(advanced, "head must advance past all three packets");
        assert_eq!(e.readable_packets(R), 3);
        // In-order delivery: 0, 1, 2.
        assert_eq!(e.consume(R), Some(("pkt0", 100)));
        assert_eq!(e.consume(R), Some(("pkt1", 101)));
        assert_eq!(e.consume(R), Some(("pkt2", 102)));
    }

    #[test]
    fn interleaved_faults_resolve_out_of_order() {
        let mut e = engine(RxFaultMode::BackupRing { capacity: 64 });
        post_n(&mut e, 6);
        // Faults at 0 and 2; stores at 1 and 3.
        let RxVerdict::Backup { bit_index: b0, .. } = e.recv(R, "p0", 0, false) else {
            panic!("backup")
        };
        e.recv(R, "p1", 1, true);
        let RxVerdict::Backup { bit_index: b2, .. } = e.recv(R, "p2", 2, false) else {
            panic!("backup")
        };
        e.recv(R, "p3", 3, true);
        // Resolve the *second* fault first: head must not move.
        let e2 = e.pop_backup().expect("first backup entry (p0)");
        let e2b = e.pop_backup().expect("second backup entry (p2)");
        assert_eq!(e2b.payload, "p2");
        assert!(e.place_resolved(R, e2b.target_index, e2b.payload, e2b.len));
        assert!(!e.resolve_rnpfs(R, b2), "older fault still blocks");
        assert_eq!(e.readable_packets(R), 0);
        // Now resolve the first: everything announces.
        assert!(e.place_resolved(R, e2.target_index, e2.payload, e2.len));
        assert!(e.resolve_rnpfs(R, b0));
        assert_eq!(e.readable_packets(R), 4);
        let order: Vec<&str> = std::iter::from_fn(|| e.consume(R).map(|(p, _)| p)).collect();
        assert_eq!(order, vec!["p0", "p1", "p2", "p3"]);
    }

    #[test]
    fn pending_counter_tracks_bitmap_exactly() {
        let popcount = |e: &RxEngine<&str>| {
            let r = e.rings[R.0 as usize].as_ref().expect("ring");
            r.bitmap.iter().filter(|&&b| b).count() as u64
        };
        let mut e = engine(RxFaultMode::BackupRing { capacity: 64 });
        post_n(&mut e, 8);
        assert_eq!(e.pending_rnpfs(R), popcount(&e));
        // Interleave faults and stores, resolving out of order — the
        // maintained counter must match a fresh popcount at every step.
        let mut bits = Vec::new();
        for i in 0..6u64 {
            let fault = i % 2 == 0;
            match e.recv(R, "p", i, !fault) {
                RxVerdict::Backup { bit_index, .. } => bits.push(bit_index),
                RxVerdict::Stored { .. } => {}
                other => panic!("unexpected verdict {other:?}"),
            }
            assert_eq!(e.pending_rnpfs(R), popcount(&e));
        }
        assert_eq!(e.pending_rnpfs(R), 3);
        while let Some(entry) = e.pop_backup() {
            assert!(e.place_resolved(R, entry.target_index, entry.payload, entry.len));
        }
        // Resolve newest-first, then re-resolve an already-clear bit:
        // both transitions (set->clear and clear->clear) stay exact.
        for &b in bits.iter().rev() {
            e.resolve_rnpfs(R, b);
            assert_eq!(e.pending_rnpfs(R), popcount(&e));
        }
        assert_eq!(e.pending_rnpfs(R), 0);
        e.resolve_rnpfs(R, bits[0]);
        assert_eq!(e.pending_rnpfs(R), 0);
        assert_eq!(e.pending_rnpfs(R), popcount(&e));
    }

    #[test]
    fn bitmap_budget_bounds_buffered_packets() {
        let mut e: RxEngine<&str> = RxEngine::new(RxFaultMode::BackupRing { capacity: 1000 });
        e.create_ring(R, 8, 2); // provider holds at most 2 per ring
        post_n(&mut e, 8);
        assert!(matches!(e.recv(R, "a", 0, false), RxVerdict::Backup { .. }));
        assert!(matches!(e.recv(R, "b", 0, false), RxVerdict::Backup { .. }));
        assert_eq!(
            e.recv(R, "c", 0, false),
            RxVerdict::Dropped {
                burned_descriptor: false
            }
        );
        assert_eq!(e.counters().get("dropped_fault"), 1);
    }

    #[test]
    fn partitioned_quota_caps_one_tenant() {
        let mut e: RxEngine<&str> = RxEngine::new(RxFaultMode::BackupRing { capacity: 64 });
        e.set_backup_policy(BackupPolicy::Partitioned { quota: 2 });
        let (a, b) = (RingId(0), RingId(1));
        e.create_ring(a, 8, 16);
        e.create_ring(b, 8, 16);
        for ring in [a, b] {
            for i in 0..8 {
                e.post_descriptor(
                    ring,
                    RxDescriptor {
                        addr: VirtAddr(0x10000 + i * 0x1000),
                        capacity: 2048,
                    },
                );
            }
        }
        // Tenant A faults three times: the third hits its quota.
        assert!(matches!(
            e.recv(a, "a0", 0, false),
            RxVerdict::Backup { .. }
        ));
        assert!(matches!(
            e.recv(a, "a1", 0, false),
            RxVerdict::Backup { .. }
        ));
        assert_eq!(
            e.recv(a, "a2", 0, false),
            RxVerdict::Dropped {
                burned_descriptor: false
            }
        );
        assert_eq!(e.counters().get("dropped_quota"), 1);
        assert_eq!(e.backup_occupancy(a), 2);
        assert_eq!(e.backup_hwm(a), 2);
        // Tenant B is unaffected: the shared ring still has room.
        assert!(matches!(
            e.recv(b, "b0", 0, false),
            RxVerdict::Backup { .. }
        ));
        assert_eq!(e.backup_occupancy(b), 1);
        // Draining A's entries frees its quota again.
        let e0 = e.pop_backup().expect("a0");
        assert_eq!(e0.ring, a);
        assert_eq!(e.backup_occupancy(a), 1);
        assert!(matches!(
            e.recv(a, "a3", 0, false),
            RxVerdict::Backup { .. }
        ));
        assert_eq!(e.backup_hwm(a), 2, "hwm never exceeds the quota");
    }

    #[test]
    fn shared_policy_lets_one_tenant_fill_ring() {
        let mut e: RxEngine<&str> = RxEngine::new(RxFaultMode::BackupRing { capacity: 4 });
        let (a, b) = (RingId(0), RingId(1));
        e.create_ring(a, 8, 16);
        e.create_ring(b, 8, 16);
        for ring in [a, b] {
            for i in 0..8 {
                e.post_descriptor(
                    ring,
                    RxDescriptor {
                        addr: VirtAddr(0x10000 + i * 0x1000),
                        capacity: 2048,
                    },
                );
            }
        }
        // The cold tenant A exhausts the shared ring...
        for i in 0..4 {
            assert!(
                matches!(e.recv(a, "a", i, false), RxVerdict::Backup { .. }),
                "entry {i}"
            );
        }
        // ...and tenant B's fault is collateral damage.
        assert_eq!(
            e.recv(b, "b", 0, false),
            RxVerdict::Dropped {
                burned_descriptor: false
            }
        );
        assert_eq!(e.backup_hwm(a), 4);
        assert_eq!(e.counters().get("dropped_quota"), 0);
    }

    #[test]
    fn backup_capacity_bounds_total() {
        let mut e: RxEngine<&str> = RxEngine::new(RxFaultMode::BackupRing { capacity: 1 });
        e.create_ring(R, 8, 16);
        post_n(&mut e, 8);
        assert!(matches!(e.recv(R, "a", 0, false), RxVerdict::Backup { .. }));
        assert_eq!(
            e.recv(R, "b", 0, false),
            RxVerdict::Dropped {
                burned_descriptor: false
            }
        );
    }

    #[test]
    fn unposted_descriptor_uses_backup_and_waits_for_post() {
        let mut e = engine(RxFaultMode::BackupRing { capacity: 64 });
        // Nothing posted: packet goes to backup with a future target.
        let RxVerdict::Backup {
            target_index,
            bit_index,
            ..
        } = e.recv(R, "p", 42, true)
        else {
            panic!("backup")
        };
        assert_eq!(target_index, 0);
        // The copy-back cannot proceed until the IOuser posts.
        let entry = e.pop_backup().expect("entry");
        assert!(!e.place_resolved(R, entry.target_index, entry.payload, entry.len));
        e.request_tail_interrupt(R);
        let fired = e.post_descriptor(
            R,
            RxDescriptor {
                addr: VirtAddr(0x2000),
                capacity: 2048,
            },
        );
        assert!(fired, "tail interrupt fires on post");
        assert!(e.place_resolved(R, target_index, "p", 42));
        assert!(e.resolve_rnpfs(R, bit_index));
        assert_eq!(e.consume(R), Some(("p", 42)));
    }

    #[test]
    fn ring_wraps_around() {
        let mut e = engine(RxFaultMode::Drop);
        for round in 0..5u64 {
            post_n(&mut e, 8);
            for i in 0..8u64 {
                let v = e.recv(R, "x", i, true);
                assert!(
                    matches!(v, RxVerdict::Stored { .. }),
                    "round {round} pkt {i}"
                );
            }
            for _ in 0..8 {
                assert!(e.consume(R).is_some());
            }
        }
        assert_eq!(e.counters().get("stored"), 40);
    }

    #[test]
    #[should_panic(expected = "overposted")]
    fn overposting_panics() {
        let mut e = engine(RxFaultMode::Drop);
        post_n(&mut e, 9);
    }
}
