//! The DMA engine: page-granular IOMMU-checked transfers.
//!
//! Every DMA the NIC performs is decomposed into page accesses checked
//! against the [`iommu::Iommu`]. A transfer either fully translates
//! (`Ok`) or reports the set of faulting pages — the NIC hands the
//! driver "as much information as possible about the page fault" so the
//! driver can batch resolution (§4, third optimization).

use iommu::{DomainId, Iommu, PageRequest, RangeCheck};
use memsim::types::{PageRange, VirtAddr};

/// Outcome of one DMA transfer attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaOutcome {
    /// All pages translated; the transfer proceeds.
    Ok,
    /// One or more pages faulted; the page requests were queued in the
    /// IOMMU and are repeated here for convenience.
    Fault(Vec<PageRequest>),
    /// Fatal translation error (pinned-only domain miss or permission
    /// violation).
    Error,
}

impl DmaOutcome {
    /// `true` when the transfer can proceed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, DmaOutcome::Ok)
    }
}

/// Statistics of a DMA engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct DmaStats {
    /// Transfers fully translated.
    pub ok_transfers: u64,
    /// Transfers that faulted.
    pub faulted_transfers: u64,
    /// Individual page faults raised.
    pub page_faults: u64,
    /// Fatal errors.
    pub errors: u64,
}

/// The NIC's DMA engine.
#[derive(Debug, Default)]
pub struct DmaEngine {
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates an engine.
    #[must_use]
    pub fn new() -> Self {
        DmaEngine::default()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Attempts a DMA of `len` bytes at `addr` in `domain`. `write` is
    /// `true` for device-to-memory (receive) transfers.
    ///
    /// All pages of the range are checked even after the first fault so
    /// the driver receives the complete fault set in one interrupt
    /// (enabling batched page-table updates instead of one-page-per-PRI,
    /// §4).
    pub fn transfer(
        &mut self,
        mmu: &mut Iommu,
        domain: DomainId,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> DmaOutcome {
        let range = PageRange::covering(addr, len.max(1));
        // Batched resolution: the cached prefix comes from the IOTLB,
        // the rest of the scatter-gather range costs one table walk.
        match mmu.check_dma_range(domain, range, write) {
            RangeCheck::Ok => {
                self.stats.ok_transfers += 1;
                DmaOutcome::Ok
            }
            RangeCheck::Fault(faults) => {
                self.stats.faulted_transfers += 1;
                self.stats.page_faults += faults.len() as u64;
                DmaOutcome::Fault(faults)
            }
            RangeCheck::Error => {
                self.stats.errors += 1;
                DmaOutcome::Error
            }
        }
    }

    /// Probes whether a transfer would succeed without raising faults or
    /// touching statistics (the backup-ring presence check of Figure 6).
    #[must_use]
    pub fn probe(
        &self,
        mmu: &Iommu,
        domain: DomainId,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> bool {
        mmu.probe_range(domain, PageRange::covering(addr, len.max(1)), write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iommu::TableMode;
    use memsim::types::{FrameId, Vpn};

    fn setup() -> (Iommu, DomainId, DmaEngine) {
        let mut mmu = Iommu::new(64);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        (mmu, d, DmaEngine::new())
    }

    #[test]
    fn mapped_transfer_succeeds() {
        let (mut mmu, d, mut dma) = setup();
        mmu.map(d, Vpn(1), FrameId(1), true);
        mmu.map(d, Vpn(2), FrameId(2), true);
        // 0x1800..0x2800 spans pages 1 and 2.
        let out = dma.transfer(&mut mmu, d, VirtAddr(0x1800), 4096, true);
        assert_eq!(out, DmaOutcome::Ok);
        assert_eq!(dma.stats().ok_transfers, 1);
    }

    #[test]
    fn faulting_transfer_reports_all_pages() {
        let (mut mmu, d, mut dma) = setup();
        mmu.map(d, Vpn(1), FrameId(1), true);
        // Pages 1..5; 1 is mapped, 2,3,4 fault.
        let out = dma.transfer(&mut mmu, d, VirtAddr(0x1000), 4 * 4096, true);
        let DmaOutcome::Fault(reqs) = out else {
            panic!("expected fault");
        };
        assert_eq!(reqs.len(), 3, "complete fault set in one interrupt");
        assert_eq!(dma.stats().page_faults, 3);
        assert_eq!(mmu.pending_requests().len(), 3);
    }

    #[test]
    fn zero_length_touches_one_page() {
        let (mut mmu, d, mut dma) = setup();
        let out = dma.transfer(&mut mmu, d, VirtAddr(0x5000), 0, false);
        assert!(matches!(out, DmaOutcome::Fault(v) if v.len() == 1));
    }

    #[test]
    fn probe_is_side_effect_free() {
        let (mut mmu, d, dma) = setup();
        assert!(!dma.probe(&mmu, d, VirtAddr(0x1000), 100, true));
        assert!(mmu.pending_requests().is_empty());
        mmu.map(d, Vpn(1), FrameId(1), true);
        assert!(dma.probe(&mmu, d, VirtAddr(0x1000), 100, true));
        assert!(!dma.probe(&mmu, d, VirtAddr(0x1000), 8192, true));
    }

    #[test]
    fn pinned_domain_error_is_fatal() {
        let mut mmu = Iommu::new(16);
        let d = mmu.create_domain(TableMode::PinnedOnly);
        let mut dma = DmaEngine::new();
        let out = dma.transfer(&mut mmu, d, VirtAddr(0x1000), 10, true);
        assert_eq!(out, DmaOutcome::Error);
        assert_eq!(dma.stats().errors, 1);
    }
}
