//! # nicsim — a simulated direct-I/O network controller
//!
//! Models the NIC hardware the paper modifies: SR-IOV IOchannels with
//! port steering ([`sriov`]), IOMMU-checked DMA that reports *complete*
//! fault sets ([`dma`]), transmit queues that stall on send-side NPFs
//! ([`tx`]), interrupt moderation ([`interrupt`]), and — the heart of
//! the Ethernet design — a faithful implementation of Figure 6's
//! backup-ring hardware ([`rx`]): per-IOuser receive rings with
//! `head`/`head_offset`/`bitmap` bookkeeping that preserves in-order
//! delivery across receive-side page faults.
//!
//! # Examples
//!
//! ```
//! use nicsim::rx::{RxEngine, RxFaultMode, RxDescriptor, RingId, RxVerdict};
//! use memsim::types::VirtAddr;
//!
//! let mut rx: RxEngine<&str> = RxEngine::new(RxFaultMode::BackupRing { capacity: 64 });
//! rx.create_ring(RingId(0), 8, 16);
//! rx.post_descriptor(RingId(0), RxDescriptor { addr: VirtAddr(0x1000), capacity: 2048 });
//!
//! // A faulting receive is redirected to the backup ring...
//! let RxVerdict::Backup { bit_index, target_index, .. } =
//!     rx.recv(RingId(0), "payload", 100, false) else { unreachable!() };
//! // ...and merged back once the IOprovider resolves the fault.
//! let entry = rx.pop_backup().unwrap();
//! rx.place_resolved(RingId(0), target_index, entry.payload, entry.len);
//! assert!(rx.resolve_rnpfs(RingId(0), bit_index));
//! assert_eq!(rx.consume(RingId(0)), Some(("payload", 100)));
//! ```

pub mod dma;
pub mod interrupt;
pub mod rx;
pub mod sriov;
pub mod tx;

pub use dma::{DmaEngine, DmaOutcome, DmaStats};
pub use interrupt::{InterruptDecision, InterruptModerator};
pub use rx::{
    BackupEntry, BackupPolicy, IoUserRing, RingId, RxDescriptor, RxEngine, RxFaultMode, RxVerdict,
};
pub use sriov::{Channel, ChannelId, ChannelTable};
pub use tx::{TxDescriptor, TxQueue, TxState};
