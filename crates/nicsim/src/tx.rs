//! Transmit queues.
//!
//! The IOuser posts send descriptors; the NIC gathers the payload by
//! DMA. A gather fault is a *send-side* NPF: the queue stalls (the data
//! is local, so waiting is safe — §4) until the driver resolves the
//! fault and resumes the queue.

use std::collections::VecDeque;

use memsim::types::VirtAddr;

use crate::rx::RingId;

/// A posted transmit descriptor.
#[derive(Debug, Clone)]
pub struct TxDescriptor<P> {
    /// Gather address in the IOuser's space.
    pub addr: VirtAddr,
    /// Payload length.
    pub len: u64,
    /// The packet payload to put on the wire.
    pub payload: P,
}

/// State of a transmit queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxState {
    /// Transmitting normally.
    Running,
    /// Stalled on a send-side NPF; `resume` restarts it.
    Stalled {
        /// Correlation id of the blocking fault.
        fault_id: u64,
    },
}

/// A transmit queue for one IOchannel.
#[derive(Debug)]
pub struct TxQueue<P> {
    ring: RingId,
    queue: VecDeque<TxDescriptor<P>>,
    state: TxState,
    transmitted: u64,
    stalls: u64,
}

impl<P> TxQueue<P> {
    /// Creates an empty queue for the channel owning `ring`.
    #[must_use]
    pub fn new(ring: RingId) -> Self {
        TxQueue {
            ring,
            queue: VecDeque::new(),
            state: TxState::Running,
            transmitted: 0,
            stalls: 0,
        }
    }

    /// The owning channel's ring id.
    #[must_use]
    pub fn ring(&self) -> RingId {
        self.ring
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> TxState {
        self.state
    }

    /// Descriptors waiting.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Packets put on the wire.
    #[must_use]
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Send-side NPF stalls experienced.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// IOuser posts a descriptor.
    pub fn post(&mut self, desc: TxDescriptor<P>) {
        self.queue.push_back(desc);
    }

    /// The next descriptor the NIC would gather, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&TxDescriptor<P>> {
        if matches!(self.state, TxState::Stalled { .. }) {
            None
        } else {
            self.queue.front()
        }
    }

    /// Pops the head descriptor after a successful gather DMA.
    ///
    /// # Panics
    ///
    /// Panics when the queue is empty or stalled (callers must `peek`
    /// first).
    pub fn complete_head(&mut self) -> TxDescriptor<P> {
        assert_eq!(self.state, TxState::Running, "pop from stalled queue");
        self.transmitted += 1;
        self.queue.pop_front().expect("pop from empty tx queue")
    }

    /// Stalls the queue on a send-side NPF.
    pub fn stall(&mut self, fault_id: u64) {
        self.stalls += 1;
        self.state = TxState::Stalled { fault_id };
    }

    /// The driver resolved `fault_id`; returns `true` when this queue
    /// was unblocked.
    pub fn resume(&mut self, fault_id: u64) -> bool {
        if self.state == (TxState::Stalled { fault_id }) {
            self.state = TxState::Running;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(tag: &'static str) -> TxDescriptor<&'static str> {
        TxDescriptor {
            addr: VirtAddr(0x1000),
            len: 1500,
            payload: tag,
        }
    }

    #[test]
    fn fifo_transmission() {
        let mut q = TxQueue::new(RingId(0));
        q.post(desc("a"));
        q.post(desc("b"));
        assert_eq!(q.peek().expect("head").payload, "a");
        assert_eq!(q.complete_head().payload, "a");
        assert_eq!(q.complete_head().payload, "b");
        assert_eq!(q.transmitted(), 2);
        assert!(q.peek().is_none());
    }

    #[test]
    fn stall_blocks_until_matching_resume() {
        let mut q = TxQueue::new(RingId(0));
        q.post(desc("a"));
        q.stall(42);
        assert!(q.peek().is_none(), "stalled queue yields nothing");
        assert!(!q.resume(41), "wrong fault id does not resume");
        assert!(q.resume(42));
        assert_eq!(q.peek().expect("head").payload, "a");
        assert_eq!(q.stalls(), 1);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn popping_stalled_queue_panics() {
        let mut q = TxQueue::new(RingId(0));
        q.post(desc("a"));
        q.stall(1);
        q.complete_head();
    }
}
