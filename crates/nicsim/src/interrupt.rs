//! Interrupt moderation (coalescing).
//!
//! The backup ring "enjoys standard optimizations such as interrupt
//! coalescing and NAPI" (§5). The moderator rate-limits interrupt
//! delivery per vector: an interrupt requested within the holdoff
//! window of the previous one is deferred to the window's end, and
//! further requests merge into the deferred one.

use simcore::chaos::{ChaosEngine, InterruptFate};
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{self, ArgValue};

/// Decision for one interrupt request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptDecision {
    /// Deliver at the given time (possibly immediately).
    FireAt(SimTime),
    /// Already scheduled; this request merged into the pending one.
    Coalesced,
}

/// A per-vector interrupt moderator.
#[derive(Debug, Clone, Copy)]
pub struct InterruptModerator {
    holdoff: SimDuration,
    last_fired: Option<SimTime>,
    pending_at: Option<SimTime>,
    delivered: u64,
    coalesced: u64,
    lost: u64,
    delayed: u64,
}

impl InterruptModerator {
    /// Creates a moderator with the given holdoff window. A zero
    /// holdoff delivers every interrupt immediately.
    #[must_use]
    pub fn new(holdoff: SimDuration) -> Self {
        InterruptModerator {
            holdoff,
            last_fired: None,
            pending_at: None,
            delivered: 0,
            coalesced: 0,
            lost: 0,
            delayed: 0,
        }
    }

    /// Interrupts delivered.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Requests coalesced into pending deliveries.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Requests an interrupt at `now`. The caller schedules an event at
    /// the returned time for `FireAt` and must then call
    /// [`InterruptModerator::fired`] when it delivers.
    pub fn request(&mut self, now: SimTime) -> InterruptDecision {
        if self.pending_at.is_some() {
            self.coalesced += 1;
            return InterruptDecision::Coalesced;
        }
        let at = match self.last_fired {
            Some(last) if now.saturating_since(last) < self.holdoff => last + self.holdoff,
            _ => now,
        };
        self.pending_at = Some(at);
        InterruptDecision::FireAt(at)
    }

    /// [`InterruptModerator::request`] with fault injection: the fire
    /// time of a granted interrupt is perturbed by one
    /// [`InterruptFate`] drawn from the chaos engine's interrupt
    /// stream. A *lost* interrupt is redelivered at the watchdog
    /// timeout (as on real NICs), so the system stays live but eats the
    /// latency hole; a *delayed* one is merely late. Coalesced requests
    /// are untouched — the pending delivery already has its fate.
    pub fn request_chaos(&mut self, now: SimTime, chaos: &mut ChaosEngine) -> InterruptDecision {
        match self.request(now) {
            InterruptDecision::Coalesced => InterruptDecision::Coalesced,
            InterruptDecision::FireAt(at) => {
                let at = match chaos.interrupt_fate() {
                    InterruptFate::Deliver => at,
                    InterruptFate::Lose { redeliver_after } => {
                        self.lost += 1;
                        at + redeliver_after
                    }
                    InterruptFate::Delay { extra } => {
                        self.delayed += 1;
                        at + extra
                    }
                };
                self.pending_at = Some(at);
                InterruptDecision::FireAt(at)
            }
        }
    }

    /// Interrupts lost (and watchdog-redelivered) by fault injection.
    #[must_use]
    pub fn chaos_lost(&self) -> u64 {
        self.lost
    }

    /// Interrupts delayed by fault injection.
    #[must_use]
    pub fn chaos_delayed(&self) -> u64 {
        self.delayed
    }

    /// Records the delivery of the pending interrupt.
    pub fn fired(&mut self, now: SimTime) {
        self.pending_at = None;
        self.last_fired = Some(now);
        self.delivered += 1;
        if trace::enabled() {
            trace::instant(
                now,
                "nicsim",
                "interrupt",
                vec![("coalesced_so_far", ArgValue::U64(self.coalesced))],
            );
            trace::metrics(|m| m.counter_add("nicsim.interrupts_delivered", 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_interrupt_is_immediate() {
        let mut m = InterruptModerator::new(SimDuration::from_micros(50));
        assert_eq!(
            m.request(SimTime::from_micros(5)),
            InterruptDecision::FireAt(SimTime::from_micros(5))
        );
        m.fired(SimTime::from_micros(5));
        assert_eq!(m.delivered(), 1);
    }

    #[test]
    fn requests_inside_holdoff_defer() {
        let mut m = InterruptModerator::new(SimDuration::from_micros(50));
        m.request(SimTime::ZERO);
        m.fired(SimTime::ZERO);
        // 10 us later: deferred to the 50 us boundary.
        assert_eq!(
            m.request(SimTime::from_micros(10)),
            InterruptDecision::FireAt(SimTime::from_micros(50))
        );
        // Further requests merge.
        assert_eq!(
            m.request(SimTime::from_micros(20)),
            InterruptDecision::Coalesced
        );
        assert_eq!(m.coalesced(), 1);
        m.fired(SimTime::from_micros(50));
        // After the window, immediate again.
        assert_eq!(
            m.request(SimTime::from_micros(200)),
            InterruptDecision::FireAt(SimTime::from_micros(200))
        );
    }

    #[test]
    fn chaos_disabled_matches_plain_request() {
        use simcore::chaos::{ChaosConfig, ChaosEngine};
        let mut chaos = ChaosEngine::new(ChaosConfig::disabled());
        let mut a = InterruptModerator::new(SimDuration::from_micros(50));
        let mut b = InterruptModerator::new(SimDuration::from_micros(50));
        for i in 0..20u64 {
            let t = SimTime::from_micros(i * 7);
            assert_eq!(a.request_chaos(t, &mut chaos), b.request(t));
            if i % 3 == 0 {
                a.fired(t);
                b.fired(t);
            }
        }
        assert_eq!(a.chaos_lost(), 0);
        assert_eq!(a.chaos_delayed(), 0);
    }

    #[test]
    fn chaos_perturbs_fire_times_but_stays_live() {
        use simcore::chaos::{ChaosConfig, ChaosEngine, ChaosProfile};
        let mut chaos = ChaosEngine::new(ChaosConfig::profile(ChaosProfile::Interrupts, 5));
        let mut m = InterruptModerator::new(SimDuration::from_micros(10));
        let mut fired = 0;
        for i in 0..500u64 {
            let t = SimTime::from_micros(i * 20);
            if let InterruptDecision::FireAt(at) = m.request_chaos(t, &mut chaos) {
                assert!(at >= t, "never delivered early");
                m.fired(at);
                fired += 1;
            }
        }
        assert_eq!(fired, 500, "every granted interrupt is delivered");
        assert!(m.chaos_lost() > 0, "losses injected");
        assert!(m.chaos_delayed() > 0, "delays injected");
    }

    #[test]
    fn zero_holdoff_never_defers() {
        let mut m = InterruptModerator::new(SimDuration::ZERO);
        m.request(SimTime::ZERO);
        m.fired(SimTime::ZERO);
        assert_eq!(
            m.request(SimTime::ZERO),
            InterruptDecision::FireAt(SimTime::ZERO)
        );
    }
}
