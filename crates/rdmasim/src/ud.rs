//! Unreliable datagram (UD) queue pairs.
//!
//! UD gives no delivery or ordering guarantees: a datagram that cannot
//! be placed (no receive buffer, or an rNPF with no backup ring) is
//! simply lost. §4 notes that the Ethernet backup-ring solution (§5) is
//! what applies to UD — there is no connection to suspend.

use memsim::types::VirtAddr;
use netsim::packet::NodeId;

use std::collections::VecDeque;

use crate::types::{
    Completion, DmaGate, GateDecision, MessageRange, QpId, RecvWqe, WcOpcode, WcStatus, WrId,
};

/// A UD datagram on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdDatagram {
    /// Destination QP.
    pub dst_qp: QpId,
    /// Source QP.
    pub src_qp: QpId,
    /// Payload length (must fit one MTU).
    pub len: u64,
}

impl UdDatagram {
    /// On-wire size (payload + headers).
    #[must_use]
    pub fn wire_size(&self) -> u64 {
        self.len + 64
    }
}

/// Outcome of receiving a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdRecvOutcome {
    /// Landed in a receive buffer.
    Delivered(Completion),
    /// Lost: no receive buffer was posted.
    DroppedNoBuffer,
    /// Lost: the scatter DMA faulted (an rNPF with nowhere to go).
    DroppedFault {
        /// Correlation id from the gate.
        fault_id: u64,
    },
}

/// An unreliable-datagram queue pair.
#[derive(Debug)]
pub struct UdQp {
    qpn: QpId,
    mtu: u64,
    rq: VecDeque<RecvWqe>,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

impl UdQp {
    /// Creates a UD QP with the given path MTU.
    #[must_use]
    pub fn new(qpn: QpId, mtu: u64) -> Self {
        UdQp {
            qpn,
            mtu,
            rq: VecDeque::new(),
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// This QP's number.
    #[must_use]
    pub fn qpn(&self) -> QpId {
        self.qpn
    }

    /// Datagrams sent.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Datagrams delivered into buffers.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Datagrams lost on the receive side.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Posts a receive buffer.
    pub fn post_recv(&mut self, wqe: RecvWqe) {
        self.rq.push_back(wqe);
    }

    /// Builds a datagram toward `(node, qp)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the MTU — UD does not segment.
    pub fn send(&mut self, to_qp: QpId, _to_node: NodeId, len: u64) -> UdDatagram {
        assert!(len <= self.mtu, "UD datagrams must fit one MTU");
        self.sent += 1;
        UdDatagram {
            dst_qp: to_qp,
            src_qp: self.qpn,
            len,
        }
    }

    /// Receives a datagram: consumes a receive buffer and scatters, or
    /// drops.
    pub fn on_datagram(&mut self, dg: UdDatagram, gate: &mut dyn DmaGate) -> UdRecvOutcome {
        let Some(wqe) = self.rq.pop_front() else {
            self.dropped += 1;
            return UdRecvOutcome::DroppedNoBuffer;
        };
        let message = MessageRange::new(wqe.addr, dg.len);
        match gate.scatter(self.qpn, VirtAddr(wqe.addr.0), dg.len, message) {
            GateDecision::Ok => {
                self.delivered += 1;
                UdRecvOutcome::Delivered(Completion {
                    wr_id: wqe.wr_id,
                    opcode: WcOpcode::Recv,
                    status: WcStatus::Success,
                    len: dg.len,
                })
            }
            GateDecision::Fault { fault_id } => {
                // The buffer is consumed and the data is gone — exactly
                // the failure mode the backup ring exists to fix.
                self.dropped += 1;
                UdRecvOutcome::DroppedFault { fault_id }
            }
        }
    }
}

/// A convenience receive-side identifier for UD completions.
pub type UdWrId = WrId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PinnedGate;

    #[test]
    fn datagram_delivery() {
        let mut tx = UdQp::new(QpId(1), 4096);
        let mut rx = UdQp::new(QpId(2), 4096);
        rx.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x1000),
            capacity: 4096,
        });
        let dg = tx.send(QpId(2), NodeId(1), 512);
        let out = rx.on_datagram(dg, &mut PinnedGate);
        assert!(matches!(out, UdRecvOutcome::Delivered(c) if c.len == 512));
        assert_eq!(rx.delivered(), 1);
    }

    #[test]
    fn no_buffer_drops() {
        let mut tx = UdQp::new(QpId(1), 4096);
        let mut rx = UdQp::new(QpId(2), 4096);
        let dg = tx.send(QpId(2), NodeId(1), 512);
        assert_eq!(
            rx.on_datagram(dg, &mut PinnedGate),
            UdRecvOutcome::DroppedNoBuffer
        );
        assert_eq!(rx.dropped(), 1);
    }

    #[test]
    fn fault_drops_datagram() {
        struct AlwaysFault;
        impl DmaGate for AlwaysFault {
            fn gather(&mut self, _: QpId, _: VirtAddr, _: u64, _: MessageRange) -> GateDecision {
                GateDecision::Ok
            }
            fn scatter(&mut self, _: QpId, _: VirtAddr, _: u64, _: MessageRange) -> GateDecision {
                GateDecision::Fault { fault_id: 9 }
            }
        }
        let mut tx = UdQp::new(QpId(1), 4096);
        let mut rx = UdQp::new(QpId(2), 4096);
        rx.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x1000),
            capacity: 4096,
        });
        let dg = tx.send(QpId(2), NodeId(1), 100);
        assert_eq!(
            rx.on_datagram(dg, &mut AlwaysFault),
            UdRecvOutcome::DroppedFault { fault_id: 9 }
        );
    }

    #[test]
    #[should_panic(expected = "MTU")]
    fn oversized_datagram_panics() {
        let mut tx = UdQp::new(QpId(1), 4096);
        tx.send(QpId(2), NodeId(1), 5000);
    }
}
