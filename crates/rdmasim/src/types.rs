//! Verbs-level and wire-level types for the InfiniBand model.
//!
//! Simplifications relative to real IBA, none of which affect the
//! reproduced behaviour: PSNs are 64-bit (no 24-bit wraparound
//! handling), an RDMA read *reserves* one PSN per response packet up
//! front, and payload bytes are logical.

use memsim::types::VirtAddr;
use netsim::packet::NodeId;
use simcore::time::{SimDuration, SimTime};

/// Queue pair number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QpId(pub u32);

impl std::fmt::Display for QpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// A work-request identifier chosen by the application.
pub type WrId = u64;

/// Operations an application can post to the send queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOp {
    /// Two-sided send: consumes a receive WQE at the responder.
    Send {
        /// Local gather address.
        local: VirtAddr,
        /// Message length in bytes.
        len: u64,
    },
    /// One-sided RDMA write to remote virtual memory.
    Write {
        /// Local gather address.
        local: VirtAddr,
        /// Remote scatter address.
        remote: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// One-sided RDMA read from remote virtual memory.
    Read {
        /// Local scatter address (where responses land).
        local: VirtAddr,
        /// Remote gather address.
        remote: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
}

impl SendOp {
    /// Message length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        match *self {
            SendOp::Send { len, .. } | SendOp::Write { len, .. } | SendOp::Read { len, .. } => len,
        }
    }

    /// `true` for zero-length operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A posted receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvWqe {
    /// Application identifier reported in the completion.
    pub wr_id: WrId,
    /// Scatter address.
    pub addr: VirtAddr,
    /// Buffer capacity in bytes.
    pub capacity: u64,
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcStatus {
    /// Operation finished.
    Success,
    /// Transport retries exhausted.
    RetryExceeded,
    /// RNR retries exhausted.
    RnrRetryExceeded,
}

/// What completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcOpcode {
    /// A posted send finished (acked end to end).
    Send,
    /// An RDMA write finished.
    Write,
    /// An RDMA read finished (all response data arrived).
    Read,
    /// An inbound message landed in a receive buffer.
    Recv,
}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The application's work-request id.
    pub wr_id: WrId,
    /// What finished.
    pub opcode: WcOpcode,
    /// How it finished.
    pub status: WcStatus,
    /// Bytes transferred.
    pub len: u64,
}

/// Wire packet kinds of the RC protocol (BTH opcodes, abstracted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcPacketKind {
    /// A slice of a SEND message. `offset` is the byte offset within the
    /// message; `last` marks the final packet.
    SendData {
        /// Byte offset within the message.
        offset: u64,
        /// Payload bytes in this packet.
        len: u64,
        /// Final packet of the message.
        last: bool,
        /// Total message length (carried in the first packet of real IB;
        /// carried everywhere here for simplicity).
        message_len: u64,
    },
    /// A slice of an RDMA WRITE.
    WriteData {
        /// Remote scatter address for this slice.
        remote: VirtAddr,
        /// Payload bytes.
        len: u64,
        /// Final packet of the message.
        last: bool,
    },
    /// An RDMA READ request; the responder answers with `packets`
    /// [`RcPacketKind::ReadResponse`] packets using PSNs
    /// `psn+1 ..= psn+packets`.
    ReadRequest {
        /// Remote gather address.
        remote: VirtAddr,
        /// Total bytes requested.
        len: u64,
        /// Number of response packets reserved.
        packets: u64,
    },
    /// One response slice of an RDMA READ.
    ReadResponse {
        /// Byte offset within the read.
        offset: u64,
        /// Payload bytes.
        len: u64,
        /// Final response.
        last: bool,
    },
    /// Positive cumulative acknowledgment of everything up to and
    /// including `psn` (carried in the packet's own psn field).
    Ack,
    /// Negative acknowledgment: receiver not ready. Sender must pause
    /// for `wait` and resume from the NACKed PSN. This is the mechanism
    /// the modified firmware uses for rNPFs (§4).
    NakReceiverNotReady {
        /// Requested pause before retrying.
        wait: SimDuration,
    },
    /// Negative acknowledgment: out-of-sequence PSN; sender rewinds to
    /// the NACKed PSN.
    NakSequenceError,
    /// **Extension (§4's recommendation):** receiver-not-ready for RDMA
    /// *read responses*. Standard RC has no way for a faulting read
    /// initiator to stop the responder; the paper recommends extending
    /// the end-to-end flow control to reads. When a QP pair enables
    /// [`RcConfig::rnr_for_reads`], the initiator sends this instead of
    /// silently dropping, and the responder pauses and later resumes the
    /// response stream from the NACKed PSN.
    NakReadNotReady {
        /// Requested pause before the responder resumes.
        wait: SimDuration,
    },
    /// IRN-style cumulative + selective acknowledgment
    /// ([`RdmaTransport::SelectiveRepeat`] only). The packet's own `psn`
    /// field names the *expected* (first missing) PSN: everything below
    /// it is cumulatively acknowledged. Bit `i` of `bitmap` set means
    /// PSN `psn + 1 + i` was received out of order and must not be
    /// retransmitted. The legacy go-back-N path never emits this kind,
    /// keeping its wire traces byte-identical.
    SelectiveAck {
        /// Out-of-order reception bitmap relative to `psn + 1`.
        bitmap: u64,
    },
}

/// A packet on an RC connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcPacket {
    /// Destination QP.
    pub dst_qp: QpId,
    /// Source QP.
    pub src_qp: QpId,
    /// Packet sequence number (for ACK/NAK: the PSN being acknowledged).
    pub psn: u64,
    /// Kind and kind-specific fields.
    pub kind: RcPacketKind,
}

impl RcPacket {
    /// On-wire size: payload plus ~64 bytes of LRH/BTH/ICRC overhead.
    #[must_use]
    pub fn wire_size(&self) -> u64 {
        let payload = match self.kind {
            RcPacketKind::SendData { len, .. }
            | RcPacketKind::WriteData { len, .. }
            | RcPacketKind::ReadResponse { len, .. } => len,
            _ => 0,
        };
        payload + 64
    }
}

/// The full extent of the work request a DMA access belongs to. The
/// NIC hands the driver "as much information as possible about the page
/// fault", letting it pre-fault the whole scatter-gather range instead
/// of one page per PRI request (§4's third optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRange {
    /// First byte of the message buffer.
    pub base: VirtAddr,
    /// Total message bytes.
    pub len: u64,
}

impl MessageRange {
    /// A message of `len` bytes at `base`.
    #[must_use]
    pub fn new(base: VirtAddr, len: u64) -> Self {
        MessageRange { base, len }
    }
}

/// Decision of the DMA gate for one packet's memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Memory is present; DMA proceeds.
    Ok,
    /// Page fault. `fault_id` correlates the later resolution.
    Fault {
        /// Correlation id chosen by the gate.
        fault_id: u64,
    },
}

/// The QP's view of host memory: every DMA consults the gate, which is
/// implemented by the NPF engine (IOMMU + OS) in the full system and by
/// scripted fakes in tests.
pub trait DmaGate {
    /// A local *read* DMA gathering outgoing payload (send/write data or
    /// read responses). A fault here is a **local** fault: the QP simply
    /// pauses (§4: "it can simply stop sending and wait"). `message` is
    /// the owning work request's full extent, enabling batched
    /// pre-faulting.
    fn gather(&mut self, qp: QpId, addr: VirtAddr, len: u64, message: MessageRange)
        -> GateDecision;

    /// A local *write* DMA scattering incoming payload (receive data,
    /// inbound writes, read responses at the initiator). A fault here is
    /// an **rNPF**: the QP must answer with RNR NACK (send/write) or
    /// drop-and-rewind (read responses).
    fn scatter(
        &mut self,
        qp: QpId,
        addr: VirtAddr,
        len: u64,
        message: MessageRange,
    ) -> GateDecision;
}

/// A gate for memory that is always present (fully pinned channels).
#[derive(Debug, Default, Clone, Copy)]
pub struct PinnedGate;

impl DmaGate for PinnedGate {
    fn gather(
        &mut self,
        _qp: QpId,
        _addr: VirtAddr,
        _len: u64,
        _message: MessageRange,
    ) -> GateDecision {
        GateDecision::Ok
    }
    fn scatter(
        &mut self,
        _qp: QpId,
        _addr: VirtAddr,
        _len: u64,
        _message: MessageRange,
    ) -> GateDecision {
        GateDecision::Ok
    }
}

/// Timers a QP can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QpTimer {
    /// Transport retransmission timeout.
    Retransmit,
    /// RNR backoff expiry (resume after receiver-not-ready).
    RnrResume,
    /// Local-fault pause is resolved externally; this timer fires when
    /// the NPF engine says the page is ready.
    FaultResume,
}

/// Effects emitted by a QP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpOutput {
    /// Transmit a packet toward the peer node.
    Send {
        /// Physical destination.
        to: NodeId,
        /// The packet.
        packet: RcPacket,
    },
    /// Arm (replace) the given timer.
    SetTimer(QpTimer, SimTime),
    /// Disarm the given timer.
    CancelTimer(QpTimer),
    /// Deliver a completion to the application.
    Complete(Completion),
    /// The QP encountered an rNPF and issued an RNR NACK; the NPF engine
    /// should resolve `fault_id` (informational — the gate already knows).
    RnrIssued {
        /// Correlation id from the gate.
        fault_id: u64,
    },
}

/// Loss-recovery discipline of an RC QP. The canonical definition
/// lives in [`netsim::profile`] so the typed scenario surface
/// ([`netsim::profile::TransportConfig`]) can name it without a
/// dependency cycle; re-exported here because the QP state machine is
/// where it takes effect.
pub use netsim::profile::RdmaTransport;

/// Tuning knobs of an RC QP.
#[derive(Debug, Clone, Copy)]
pub struct RcConfig {
    /// Path MTU payload bytes.
    pub mtu: u64,
    /// Maximum outstanding unacked request packets.
    pub window_packets: u64,
    /// Transport retransmission timeout.
    pub retransmit_timeout: SimDuration,
    /// Transport retries before the QP errors out.
    pub max_retries: u32,
    /// Pause a sender honours on RNR NACK when the NACK does not carry
    /// its own value.
    pub rnr_wait: SimDuration,
    /// RNR retries before the QP errors out (IB's 7 means infinite; the
    /// simulator uses a large finite default).
    pub max_rnr_retries: u32,
    /// Acknowledge every `ack_every` packets in addition to
    /// end-of-message acks.
    pub ack_every: u64,
    /// Enable the paper's recommended RC extension: RNR-style flow
    /// control for RDMA read responses (§4). Off by default — standard
    /// RC drops and rewinds.
    pub rnr_for_reads: bool,
    /// Loss-recovery discipline. Defaults to the legacy go-back-N path
    /// so existing scenarios stay byte-identical.
    pub transport: RdmaTransport,
    /// Bandwidth-delay-product cap on in-flight request packets,
    /// honoured only by [`RdmaTransport::SelectiveRepeat`] (IRN bounds
    /// outstanding data to one BDP instead of relying on PFC). The
    /// effective cap is `min(window_packets, bdp_packets)`.
    pub bdp_packets: u64,
}

impl Default for RcConfig {
    fn default() -> Self {
        RcConfig {
            mtu: 4096,
            window_packets: 128,
            retransmit_timeout: SimDuration::from_micros(500),
            max_retries: 7,
            rnr_wait: SimDuration::from_micros(360),
            max_rnr_retries: 1000,
            ack_every: 16,
            rnr_for_reads: false,
            transport: RdmaTransport::GoBackN,
            // 56 Gb/s × ~10 us RTT ≈ 70 KB ≈ 17 MTU packets; default to a
            // round 32 so a single QP can still fill a longer pipe.
            bdp_packets: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_counts_payload_and_headers() {
        let p = RcPacket {
            dst_qp: QpId(1),
            src_qp: QpId(2),
            psn: 0,
            kind: RcPacketKind::SendData {
                offset: 0,
                len: 4096,
                last: true,
                message_len: 4096,
            },
        };
        assert_eq!(p.wire_size(), 4160);
        let ack = RcPacket {
            dst_qp: QpId(1),
            src_qp: QpId(2),
            psn: 9,
            kind: RcPacketKind::Ack,
        };
        assert_eq!(ack.wire_size(), 64);
    }

    #[test]
    fn send_op_lengths() {
        let op = SendOp::Write {
            local: VirtAddr(0),
            remote: VirtAddr(0x1000),
            len: 100,
        };
        assert_eq!(op.len(), 100);
        assert!(!op.is_empty());
    }

    #[test]
    fn pinned_gate_always_accepts() {
        let mut g = PinnedGate;
        let m = MessageRange::new(VirtAddr(0), 10);
        assert_eq!(g.gather(QpId(0), VirtAddr(0), 10, m), GateDecision::Ok);
        assert_eq!(g.scatter(QpId(0), VirtAddr(0), 10, m), GateDecision::Ok);
    }
}
