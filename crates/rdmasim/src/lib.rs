//! # rdmasim — a sans-IO InfiniBand verbs model
//!
//! Reliable-connection (RC) queue pairs with the full recovery toolbox
//! the paper's §4 builds on — cumulative ACKs, sequence-error NAKs,
//! go-back-N retransmission, and **RNR NACK** (the mechanism the
//! modified firmware reuses to suspend senders on receive-side NPFs) —
//! plus unreliable datagrams (UD) and a memory-region table
//! distinguishing pinned from on-demand-paging (ODP) registrations.
//!
//! Every DMA a QP performs consults a [`types::DmaGate`]; the NPF engine
//! in `npf-core` implements the gate over the IOMMU and host memory.
//! Pinned channels use [`types::PinnedGate`] and never fault.
//!
//! # Examples
//!
//! ```
//! use rdmasim::rc::RcQp;
//! use rdmasim::types::{PinnedGate, QpId, RcConfig, RecvWqe, SendOp, QpOutput};
//! use memsim::types::VirtAddr;
//! use netsim::packet::NodeId;
//! use simcore::SimTime;
//!
//! let mut requester = RcQp::new(RcConfig::default(), QpId(1), QpId(2), NodeId(1));
//! let outs = requester.post_send(
//!     SimTime::ZERO,
//!     1,
//!     SendOp::Write { local: VirtAddr(0), remote: VirtAddr(0x8000), len: 4096 },
//!     &mut PinnedGate,
//! );
//! assert!(outs.iter().any(|o| matches!(o, QpOutput::Send { .. })));
//! ```

pub mod mr;
pub mod rc;
pub mod types;
pub mod ud;

pub use mr::{MemoryRegion, MrKey, MrMode, MrTable};
pub use rc::{RcQp, RcStats};
pub use types::{
    Completion, DmaGate, GateDecision, MessageRange, PinnedGate, QpId, QpOutput, QpTimer, RcConfig,
    RcPacket, RcPacketKind, RdmaTransport, RecvWqe, SendOp, WcOpcode, WcStatus, WrId,
};
pub use ud::{UdDatagram, UdQp, UdRecvOutcome};
