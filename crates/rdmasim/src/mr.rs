//! Memory regions: the verbs registration surface.
//!
//! A memory region (MR) grants a NIC access to a span of an IOuser's
//! virtual memory. Registration style is the crux of the paper:
//!
//! * a **pinned** MR requires every page resident and locked for the
//!   region's lifetime (the `ibv_reg_mr` default), while
//! * an **ODP** MR (`IBV_ACCESS_ON_DEMAND`) is registered instantly with
//!   no pages present; the NIC faults pages in as they are touched.
//!
//! The cost difference between the two is what Figure 9 and Table 6
//! measure; the registration *work* itself (pin calls, page-table
//! population) is performed by the NPF engine in `npf-core` — this
//! module only records the bookkeeping.

use std::collections::HashMap;

use memsim::types::{PageRange, SpaceId, VirtAddr};

/// A registration key (stands in for lkey/rkey, which are equal here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MrKey(pub u32);

/// How a region was registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrMode {
    /// Pages pinned for the MR's lifetime.
    Pinned,
    /// On-demand paging: no pages pinned; NPFs resolve access.
    OnDemand,
}

/// A registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegion {
    /// The key naming this region.
    pub key: MrKey,
    /// Owning address space (IOuser).
    pub space: SpaceId,
    /// Pages covered.
    pub range: PageRange,
    /// Registration style.
    pub mode: MrMode,
    /// Whether remote peers may write (RDMA write targets).
    pub remote_write: bool,
}

impl MemoryRegion {
    /// `true` when `addr..addr+len` lies inside the region.
    #[must_use]
    pub fn covers(&self, addr: VirtAddr, len: u64) -> bool {
        if len == 0 {
            return self.range.contains(addr.vpn());
        }
        let r = PageRange::covering(addr, len);
        self.range.start.0 <= r.start.0 && r.end().0 <= self.range.end().0
    }
}

/// The per-NIC table of registered regions.
#[derive(Debug, Default)]
pub struct MrTable {
    regions: HashMap<MrKey, MemoryRegion>,
    next_key: u32,
}

impl MrTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        MrTable::default()
    }

    /// Registers a region and returns it.
    pub fn register(
        &mut self,
        space: SpaceId,
        range: PageRange,
        mode: MrMode,
        remote_write: bool,
    ) -> MemoryRegion {
        let key = MrKey(self.next_key);
        self.next_key += 1;
        let mr = MemoryRegion {
            key,
            space,
            range,
            mode,
            remote_write,
        };
        self.regions.insert(key, mr);
        mr
    }

    /// Deregisters a region. Returns it if it existed.
    pub fn deregister(&mut self, key: MrKey) -> Option<MemoryRegion> {
        self.regions.remove(&key)
    }

    /// Looks up a region.
    #[must_use]
    pub fn get(&self, key: MrKey) -> Option<&MemoryRegion> {
        self.regions.get(&key)
    }

    /// The region covering `addr..addr+len` in `space`, if any.
    #[must_use]
    pub fn find_covering(&self, space: SpaceId, addr: VirtAddr, len: u64) -> Option<&MemoryRegion> {
        self.regions
            .values()
            .find(|mr| mr.space == space && mr.covers(addr, len))
    }

    /// Number of live regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when no regions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total pages covered by pinned regions (what static/coarse pinning
    /// holds down).
    #[must_use]
    pub fn pinned_pages(&self) -> u64 {
        self.regions
            .values()
            .filter(|mr| mr.mode == MrMode::Pinned)
            .map(|mr| mr.range.pages)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::types::Vpn;

    #[test]
    fn register_and_lookup() {
        let mut t = MrTable::new();
        let mr = t.register(
            SpaceId(1),
            PageRange::new(Vpn(0x10), 16),
            MrMode::OnDemand,
            true,
        );
        assert_eq!(t.get(mr.key), Some(&mr));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn covers_respects_bounds() {
        let mut t = MrTable::new();
        let mr = t.register(
            SpaceId(1),
            PageRange::new(Vpn(0x10), 2),
            MrMode::Pinned,
            false,
        );
        assert!(mr.covers(VirtAddr(0x10000), 8192));
        assert!(!mr.covers(VirtAddr(0x10000), 8193));
        assert!(!mr.covers(VirtAddr(0xf000), 1));
    }

    #[test]
    fn find_covering_filters_by_space() {
        let mut t = MrTable::new();
        t.register(SpaceId(1), PageRange::new(Vpn(1), 4), MrMode::Pinned, false);
        assert!(t.find_covering(SpaceId(1), VirtAddr(0x1000), 100).is_some());
        assert!(t.find_covering(SpaceId(2), VirtAddr(0x1000), 100).is_none());
    }

    #[test]
    fn pinned_pages_counts_only_pinned() {
        let mut t = MrTable::new();
        t.register(
            SpaceId(1),
            PageRange::new(Vpn(0), 10),
            MrMode::Pinned,
            false,
        );
        let odp = t.register(
            SpaceId(1),
            PageRange::new(Vpn(100), 1000),
            MrMode::OnDemand,
            true,
        );
        assert_eq!(t.pinned_pages(), 10);
        t.deregister(odp.key);
        assert_eq!(t.len(), 1);
    }
}
