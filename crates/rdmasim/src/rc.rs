//! The reliable-connection (RC) queue pair.
//!
//! Implements the transport behaviour §4 of the paper relies on:
//!
//! * go-back-N reliability with cumulative ACKs, sequence-error NAKs and
//!   a transport retransmission timer,
//! * **RNR NACK**: when an inbound packet's scatter DMA faults (an rNPF)
//!   or no receive buffer is posted, the responder NACKs and the sender
//!   pauses for a bounded time and then resumes *from the NACKed PSN* —
//!   data already in flight is dropped and retransmitted from the
//!   sender's queue, requiring no receiver-side buffering,
//! * **local-fault stalling**: when an outbound packet's gather DMA
//!   faults, the QP simply stops transmitting until the fault resolves,
//! * **RDMA read rewind**: RC permits no RNR NACK for read responses
//!   (§4's noted limitation); a faulting initiator instead drops
//!   responses and, once the fault resolves, re-requests the remainder.
//! * **IRN selective repeat** (DESIGN §15, opt-in via
//!   [`RdmaTransport::SelectiveRepeat`]): the responder parks
//!   out-of-order packets and advertises them through cumulative +
//!   selective ACK bitmaps, the requester retransmits only the missing
//!   PSNs, in-flight data is BDP-capped, and the retransmission timer
//!   backs off exponentially — the lossy-fabric alternative to
//!   go-back-N. The legacy path is untouched when the transport is
//!   [`RdmaTransport::GoBackN`] (the default).
//!
//! Every DMA consults a [`DmaGate`], which the NPF engine implements; a
//! pinned channel uses [`crate::types::PinnedGate`] and never faults.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use memsim::types::VirtAddr;
use netsim::packet::NodeId;
use simcore::time::SimTime;
use simcore::trace::{self, ArgValue};

use crate::types::{
    Completion, DmaGate, GateDecision, MessageRange, QpId, QpOutput, QpTimer, RcConfig, RcPacket,
    RcPacketKind, RdmaTransport, RecvWqe, SendOp, WcOpcode, WcStatus, WrId,
};

/// Width of the [`RcPacketKind::SelectiveAck`] bitmap: out-of-order
/// packets more than this far ahead of the expected PSN are dropped
/// (the retransmission timer recovers them).
const SACK_WINDOW: u64 = 64;

#[cfg(test)]
use crate::types::PinnedGate;

/// Why the QP is not transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pause {
    None,
    /// Received RNR NACK; resume at the given time.
    Rnr(SimTime),
    /// A gather DMA faulted locally; resume on `fault_resolved`.
    LocalFault(u64),
}

/// One packet the requester may need to retransmit.
#[derive(Debug, Clone, Copy)]
struct TxDesc {
    kind: RcPacketKind,
    /// Local gather address (None for read requests).
    gather: Option<(VirtAddr, u64)>,
    /// Full extent of the owning work request (for batched pre-fault).
    message: MessageRange,
    /// Completion to deliver when this packet is cumulatively acked.
    complete: Option<(WrId, WcOpcode, u64)>,
}

/// Why a packet is being (re)transmitted, for split accounting: RNR
/// recovery is a *receiver readiness* event, loss recovery is a
/// *network* event, and the differential sweeps must not conflate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Retx {
    /// First transmission.
    No,
    /// Retransmitted after loss (timeout, sequence NAK, or SACK hole).
    Loss,
    /// Retransmitted after an RNR NACK rewind.
    Rnr,
}

/// An item waiting to be put on the wire.
#[derive(Debug, Clone, Copy)]
enum TxItem {
    /// A retransmission (PSN already assigned). `rnr` records whether an
    /// RNR NACK (rather than loss) caused it.
    Retransmit { psn: u64, desc: TxDesc, rnr: bool },
    /// A read-response slice (responder side; PSN pre-assigned from the
    /// request's reserved range).
    ReadResponse {
        psn: u64,
        addr: VirtAddr,
        offset: u64,
        len: u64,
        last: bool,
        message: MessageRange,
    },
}

/// A posted send-queue work request being packetized.
#[derive(Debug, Clone, Copy)]
struct SqWr {
    wr_id: WrId,
    op: SendOp,
    /// Bytes already packetized.
    cursor: u64,
}

/// Progress of an in-flight inbound SEND message.
#[derive(Debug, Clone, Copy)]
struct RecvProgress {
    wqe: RecvWqe,
    received: u64,
}

/// Initiator-side state of one outstanding RDMA read.
#[derive(Debug, Clone, Copy)]
struct ReadState {
    wr_id: WrId,
    local: VirtAddr,
    remote: VirtAddr,
    len: u64,
    packets: u64,
    /// PSN of the next in-order response we will accept.
    next_resp_psn: u64,
    received: u64,
}

/// Transport statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcStats {
    /// Data packets transmitted (including retransmissions).
    pub data_packets_sent: u64,
    /// Payload bytes transmitted (including retransmissions).
    pub bytes_sent: u64,
    /// Packets retransmitted because of *loss* (timeout, sequence NAK,
    /// or a selective-ACK hole). RNR-driven rewinds are accounted
    /// separately in [`RcStats::rnr_retransmits`].
    pub retransmits: u64,
    /// Packets retransmitted because of an RNR NACK rewind (receiver
    /// readiness, not network loss).
    pub rnr_retransmits: u64,
    /// Transport timer expirations.
    pub timeouts: u64,
    /// RNR NACKs sent (responder).
    pub rnr_nacks_sent: u64,
    /// RNR NACKs received (requester).
    pub rnr_nacks_received: u64,
    /// Sequence-error NAKs sent.
    pub seq_naks_sent: u64,
    /// Messages fully received.
    pub messages_received: u64,
    /// Inbound packets dropped (out of sequence, RNR window, read
    /// faults).
    pub rx_dropped: u64,
    /// Read-RNR extension NAKs sent (initiator side).
    pub read_rnr_sent: u64,
    /// Read-RNR extension NAKs received (responder side).
    pub read_rnr_received: u64,
    /// Selective ACKs sent (responder, selective-repeat only).
    pub sacks_sent: u64,
    /// Selective ACKs received (requester, selective-repeat only).
    pub sacks_received: u64,
    /// Packets accepted out of order and parked for later in-order
    /// processing (responder, selective-repeat only).
    pub ooo_parked: u64,
}

impl RcStats {
    /// All retransmissions regardless of cause (the pre-split meaning
    /// of [`RcStats::retransmits`]).
    #[must_use]
    pub fn total_retransmits(&self) -> u64 {
        self.retransmits + self.rnr_retransmits
    }
}

/// A reliable-connection queue pair.
#[derive(Debug)]
pub struct RcQp {
    cfg: RcConfig,
    qpn: QpId,
    peer_qp: QpId,
    peer_node: NodeId,
    /// Invariant-checker stream key: fresh per QP, so delivery
    /// sequences never alias across QPs — or across the many clusters
    /// an experiment binary builds in one process.
    chaos_stream: u64,

    // Requester.
    sq: VecDeque<SqWr>,
    tx: VecDeque<TxItem>,
    inflight: BTreeMap<u64, TxDesc>,
    next_psn: u64,
    pause: Pause,
    retry: u32,
    rnr_retry: u32,
    timer_armed: bool,
    /// When the retransmission timer was last armed (journalled as the
    /// `retransmit_wait` phase when it fires).
    timer_armed_at: SimTime,
    /// PSNs the peer advertised as received out of order (selective
    /// repeat only): still unacked cumulatively, but never retransmitted.
    sacked: BTreeSet<u64>,
    /// PSNs already queued or sent as SACK-driven retransmits since the
    /// last cumulative-ACK advance (suppresses duplicate recovery).
    retx_queued: BTreeSet<u64>,
    reads: BTreeMap<u64, ReadState>,
    read_fault: Option<(u64, u64)>, // (fault_id, base_psn)

    // Responder.
    epsn: u64,
    /// Out-of-order packets parked for in-order processing (selective
    /// repeat only). Keyed by PSN; bounded to [`SACK_WINDOW`] beyond
    /// the expected PSN.
    ooo: BTreeMap<u64, RcPacket>,
    rq: VecDeque<RecvWqe>,
    cur_recv: Option<RecvProgress>,
    nak_outstanding: bool,
    since_ack: u64,
    /// Read responses parked by a NakReadNotReady (the §4 extension):
    /// released when the RnrResume timer fires.
    parked_read_responses: VecDeque<TxItem>,
    /// Recently served reads (base PSN, remote, len, packets), kept so a
    /// read-RNR NAK can re-serve already-transmitted slices. Bounded.
    served_reads: VecDeque<(u64, VirtAddr, u64, u64)>,

    errored: bool,
    stats: RcStats,
}

impl RcQp {
    /// Creates a connected QP talking to `peer_qp` on `peer_node`.
    #[must_use]
    pub fn new(cfg: RcConfig, qpn: QpId, peer_qp: QpId, peer_node: NodeId) -> Self {
        RcQp {
            cfg,
            qpn,
            peer_qp,
            peer_node,
            chaos_stream: simcore::chaos::invariant::fresh_namespace(),
            sq: VecDeque::new(),
            tx: VecDeque::new(),
            inflight: BTreeMap::new(),
            next_psn: 0,
            pause: Pause::None,
            retry: 0,
            rnr_retry: 0,
            timer_armed: false,
            timer_armed_at: SimTime::ZERO,
            sacked: BTreeSet::new(),
            retx_queued: BTreeSet::new(),
            reads: BTreeMap::new(),
            read_fault: None,
            epsn: 0,
            ooo: BTreeMap::new(),
            rq: VecDeque::new(),
            cur_recv: None,
            nak_outstanding: false,
            since_ack: 0,
            parked_read_responses: VecDeque::new(),
            served_reads: VecDeque::new(),
            errored: false,
            stats: RcStats::default(),
        }
    }

    /// This QP's number.
    #[must_use]
    pub fn qpn(&self) -> QpId {
        self.qpn
    }

    /// The peer's node (physical destination of emitted packets).
    #[must_use]
    pub fn peer_node(&self) -> NodeId {
        self.peer_node
    }

    /// Transport statistics.
    #[must_use]
    pub fn stats(&self) -> &RcStats {
        &self.stats
    }

    /// `true` once the QP hit a fatal error.
    #[must_use]
    pub fn is_errored(&self) -> bool {
        self.errored
    }

    /// Work requests not yet fully acknowledged (pending sends + reads).
    #[must_use]
    pub fn pending_work(&self) -> usize {
        self.sq.len() + self.inflight.len() + self.reads.len() + self.tx.len()
    }

    /// Posts a receive buffer.
    pub fn post_recv(&mut self, wqe: RecvWqe) {
        self.rq.push_back(wqe);
    }

    /// Number of posted, unconsumed receive buffers.
    #[must_use]
    pub fn recv_queue_depth(&self) -> usize {
        self.rq.len()
    }

    /// Posts a send-queue operation and transmits what the window and
    /// gates allow.
    pub fn post_send(
        &mut self,
        now: SimTime,
        wr_id: WrId,
        op: SendOp,
        gate: &mut dyn DmaGate,
    ) -> Vec<QpOutput> {
        let mut out = Vec::new();
        if self.errored {
            out.push(QpOutput::Complete(Completion {
                wr_id,
                opcode: opcode_of(&op),
                status: WcStatus::RetryExceeded,
                len: op.len(),
            }));
            return out;
        }
        self.sq.push_back(SqWr {
            wr_id,
            op,
            cursor: 0,
        });
        self.pump(now, gate, &mut out);
        out
    }

    /// Handles an inbound packet.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        pkt: RcPacket,
        gate: &mut dyn DmaGate,
    ) -> Vec<QpOutput> {
        let mut out = Vec::new();
        if self.errored {
            return out;
        }
        debug_assert_eq!(pkt.dst_qp, self.qpn, "mis-routed packet");
        match pkt.kind {
            RcPacketKind::Ack => self.on_ack(now, pkt.psn, &mut out),
            RcPacketKind::NakSequenceError => self.on_seq_nak(now, pkt.psn, &mut out),
            RcPacketKind::NakReceiverNotReady { wait } => {
                self.stats.rnr_nacks_received += 1;
                if trace::enabled() {
                    trace::instant(
                        now,
                        "rdmasim",
                        "rnr_nack_received",
                        vec![
                            ("qpn", ArgValue::U64(u64::from(self.qpn.0))),
                            ("wait_us", ArgValue::F64(wait.as_micros_f64())),
                        ],
                    );
                    trace::metrics(|m| m.counter_add("rdmasim.rnr_nacks_received", 1));
                }
                self.rnr_retry += 1;
                if self.rnr_retry > self.cfg.max_rnr_retries {
                    self.fail(WcStatus::RnrRetryExceeded, &mut out);
                    return out;
                }
                // An RNR means the receiver discarded data (it also
                // flushes its out-of-order park under selective repeat),
                // so any SACK state is stale.
                self.sacked.clear();
                self.retx_queued.clear();
                self.rewind_to(pkt.psn, Retx::Rnr);
                self.pause = Pause::Rnr(now + wait);
                out.push(QpOutput::SetTimer(QpTimer::RnrResume, now + wait));
            }
            RcPacketKind::SelectiveAck { bitmap } => {
                self.on_selective_ack(now, pkt.psn, bitmap, &mut out);
            }
            RcPacketKind::ReadResponse { offset, len, last } => {
                self.on_read_response(now, pkt.psn, offset, len, last, gate, &mut out);
            }
            RcPacketKind::NakReadNotReady { wait } => {
                // §4 extension, responder side: stop serving this read
                // and re-serve everything from the NACKed PSN after the
                // requested pause. Not-yet-sent slices are discarded
                // (they will be regenerated), already-sent ones are
                // regenerated from the served-reads history.
                self.stats.read_rnr_received += 1;
                let nacked = pkt.psn;
                let mut kept = VecDeque::new();
                while let Some(item) = self.tx.pop_front() {
                    match item {
                        TxItem::ReadResponse { psn, .. } if psn >= nacked => {}
                        other => kept.push_back(other),
                    }
                }
                self.tx = kept;
                self.parked_read_responses.retain(
                    |item| !matches!(item, TxItem::ReadResponse { psn, .. } if *psn >= nacked),
                );
                if let Some(&(base, remote, len, packets)) = self
                    .served_reads
                    .iter()
                    .find(|&&(base, _, _, packets)| nacked > base && nacked <= base + packets)
                {
                    let message = MessageRange::new(remote, len);
                    let mtu = self.cfg.mtu;
                    for i in 0..packets {
                        let psn = base + 1 + i;
                        if psn < nacked {
                            continue;
                        }
                        let offset = i * mtu;
                        let chunk = (len - offset).min(mtu);
                        self.parked_read_responses.push_back(TxItem::ReadResponse {
                            psn,
                            addr: VirtAddr(remote.0 + offset),
                            offset,
                            len: chunk,
                            last: i + 1 == packets,
                            message,
                        });
                    }
                }
                out.push(QpOutput::SetTimer(QpTimer::RnrResume, now + wait));
            }
            _ => {
                let before = self.epsn;
                self.responder_path(now, pkt, gate, &mut out);
                if self.cfg.transport == RdmaTransport::SelectiveRepeat {
                    self.drain_parked(now, gate, &mut out);
                    if self.epsn != before && !self.ooo.is_empty() {
                        // Progress was made but holes remain: advertise
                        // the new expected PSN so the sender recovers the
                        // next loss without waiting for its timer.
                        self.send_sack(&mut out);
                    }
                }
            }
        }
        self.pump(now, gate, &mut out);
        out
    }

    /// Handles a timer expiry.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        timer: QpTimer,
        gate: &mut dyn DmaGate,
    ) -> Vec<QpOutput> {
        let mut out = Vec::new();
        if self.errored {
            return out;
        }
        match timer {
            QpTimer::RnrResume | QpTimer::FaultResume => {
                if matches!(self.pause, Pause::Rnr(_)) {
                    self.pause = Pause::None;
                }
                // Release any read responses parked by the §4 read-RNR
                // extension.
                while let Some(item) = self.parked_read_responses.pop_front() {
                    self.tx.push_back(item);
                }
            }
            QpTimer::Retransmit => {
                self.timer_armed = false;
                if self.inflight.is_empty() && self.reads.is_empty() {
                    return out;
                }
                self.stats.timeouts += 1;
                if trace::enabled() {
                    trace::instant(
                        now,
                        "rdmasim",
                        "retransmit_timeout",
                        vec![
                            ("qpn", ArgValue::U64(u64::from(self.qpn.0))),
                            ("inflight", ArgValue::U64(self.inflight.len() as u64)),
                        ],
                    );
                    trace::metrics(|m| m.counter_add("rdmasim.timeouts", 1));
                }
                self.retry += 1;
                if self.retry > self.cfg.max_retries {
                    self.fail(WcStatus::RetryExceeded, &mut out);
                    return out;
                }
                // The time between arming the timer and its expiry is
                // dead air on this QP: journal it so `whyslow` can
                // attribute tail latency to retransmission stalls.
                simcore::journal::wait_event(
                    simcore::journal::Phase::RetransmitWait,
                    self.timer_armed_at,
                    now,
                );
                match self.cfg.transport {
                    RdmaTransport::GoBackN => {
                        // Go-back-N: everything unacked is resent in
                        // order.
                        let oldest = self.inflight.keys().next().copied();
                        if let Some(psn) = oldest {
                            self.rewind_to(psn, Retx::Loss);
                        }
                    }
                    RdmaTransport::SelectiveRepeat => {
                        // Selective repeat: only the holes are resent;
                        // SACKed packets sit at the receiver already.
                        let mut missing: Vec<u64> = self
                            .inflight
                            .keys()
                            .copied()
                            .filter(|p| !self.sacked.contains(p))
                            .collect();
                        if missing.is_empty() {
                            // Every in-flight packet is SACKed: the
                            // receiver has them all and the ACK that
                            // would retire them was itself lost. Probe
                            // with the oldest unacked packet — the
                            // receiver re-acks duplicates — so the
                            // window drains instead of waiting forever.
                            if let Some(&oldest) = self.inflight.keys().next() {
                                self.sacked.remove(&oldest);
                                missing.push(oldest);
                            }
                        }
                        for p in &missing {
                            self.retx_queued.remove(p);
                        }
                        self.queue_selective_retransmits(&missing);
                    }
                }
                // Stalled reads re-request their remainders.
                self.reissue_read_continuations(&mut out);
            }
        }
        self.pump(now, gate, &mut out);
        out
    }

    /// The NPF engine resolved a fault this QP is paused on.
    pub fn fault_resolved(
        &mut self,
        now: SimTime,
        fault_id: u64,
        gate: &mut dyn DmaGate,
    ) -> Vec<QpOutput> {
        let mut out = Vec::new();
        if self.errored {
            return out;
        }
        if self.pause == Pause::LocalFault(fault_id) {
            self.pause = Pause::None;
        }
        if let Some((fid, _base)) = self.read_fault {
            if fid == fault_id {
                self.read_fault = None;
                if !self.cfg.rnr_for_reads {
                    // Standard RC: the only recovery is rewinding the
                    // read request. Under the §4 extension the responder
                    // resumes by itself after the RNR wait.
                    self.reissue_read_continuations(&mut out);
                }
            }
        }
        self.pump(now, gate, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Requester internals.
    // ------------------------------------------------------------------

    fn fail(&mut self, status: WcStatus, out: &mut Vec<QpOutput>) {
        self.errored = true;
        out.push(QpOutput::CancelTimer(QpTimer::Retransmit));
        // Flush completions for everything outstanding, oldest first.
        let mut flushed: Vec<Completion> = Vec::new();
        for (_psn, desc) in std::mem::take(&mut self.inflight) {
            if let Some((wr_id, opcode, len)) = desc.complete {
                flushed.push(Completion {
                    wr_id,
                    opcode,
                    status,
                    len,
                });
            }
        }
        for item in std::mem::take(&mut self.tx) {
            if let TxItem::Retransmit { desc, .. } = item {
                if let Some((wr_id, opcode, len)) = desc.complete {
                    flushed.push(Completion {
                        wr_id,
                        opcode,
                        status,
                        len,
                    });
                }
            }
        }
        for wr in std::mem::take(&mut self.sq) {
            flushed.push(Completion {
                wr_id: wr.wr_id,
                opcode: opcode_of(&wr.op),
                status,
                len: wr.op.len(),
            });
        }
        for (_base, r) in std::mem::take(&mut self.reads) {
            flushed.push(Completion {
                wr_id: r.wr_id,
                opcode: WcOpcode::Read,
                status,
                len: r.len,
            });
        }
        out.extend(flushed.into_iter().map(QpOutput::Complete));
    }

    fn on_ack(&mut self, now: SimTime, psn: u64, out: &mut Vec<QpOutput>) {
        let acked: Vec<u64> = self.inflight.range(..=psn).map(|(&p, _)| p).collect();
        if acked.is_empty() {
            return;
        }
        self.retry = 0;
        self.rnr_retry = 0;
        for p in acked {
            let desc = self.inflight.remove(&p).expect("keys from range");
            if let Some((wr_id, opcode, len)) = desc.complete {
                out.push(QpOutput::Complete(Completion {
                    wr_id,
                    opcode,
                    status: WcStatus::Success,
                    len,
                }));
            }
        }
        // Cumulative progress retires SACK bookkeeping below it.
        if !self.sacked.is_empty() {
            self.sacked = self.sacked.split_off(&(psn + 1));
        }
        if !self.retx_queued.is_empty() {
            self.retx_queued = self.retx_queued.split_off(&(psn + 1));
        }
        self.rearm_timer(now, out);
    }

    fn on_seq_nak(&mut self, now: SimTime, psn: u64, out: &mut Vec<QpOutput>) {
        // Cumulative ack of everything before the missing PSN.
        if psn > 0 {
            self.on_ack(now, psn - 1, out);
        }
        self.rewind_to(psn, Retx::Loss);
    }

    /// Handles an IRN cumulative + selective acknowledgment: `expected`
    /// is the first PSN the receiver is missing (everything below it is
    /// cumulatively acked), bit `i` of `bitmap` marks `expected + 1 + i`
    /// as parked at the receiver. Every unsacked hole at or above
    /// `expected` is queued for selective retransmission exactly once
    /// per recovery round.
    fn on_selective_ack(&mut self, now: SimTime, expected: u64, bitmap: u64, out: &mut Vec<QpOutput>) {
        self.stats.sacks_received += 1;
        if expected > 0 {
            self.on_ack(now, expected - 1, out);
        }
        let mut highest = None;
        for i in 0..SACK_WINDOW {
            if bitmap & (1 << i) != 0 {
                let p = expected + 1 + i;
                if self.inflight.contains_key(&p) {
                    self.sacked.insert(p);
                }
                highest = Some(p);
            }
        }
        let upper = highest.map_or(expected + 1, |h| h);
        let missing: Vec<u64> = self
            .inflight
            .range(expected..upper)
            .map(|(&p, _)| p)
            .filter(|p| !self.sacked.contains(p))
            .collect();
        self.queue_selective_retransmits(&missing);
    }

    /// Queues loss retransmissions for `psns` (ascending), skipping any
    /// already queued for recovery or currently waiting in the tx queue.
    fn queue_selective_retransmits(&mut self, psns: &[u64]) {
        for &p in psns {
            if !self.retx_queued.insert(p) {
                continue;
            }
            if self
                .tx
                .iter()
                .any(|item| matches!(item, TxItem::Retransmit { psn, .. } if *psn == p))
            {
                continue;
            }
            if let Some(desc) = self.inflight.get(&p).copied() {
                self.tx.push_back(TxItem::Retransmit {
                    psn: p,
                    desc,
                    rnr: false,
                });
            }
        }
    }

    /// Moves every unacked packet with `psn >= from` back onto the front
    /// of the tx queue, in PSN order. Under selective repeat, packets
    /// the receiver already SACKed are left in place.
    fn rewind_to(&mut self, from: u64, cause: Retx) {
        let rnr = cause == Retx::Rnr;
        let resend: Vec<(u64, TxDesc)> = self
            .inflight
            .range(from..)
            .filter(|(p, _)| {
                self.cfg.transport == RdmaTransport::GoBackN || !self.sacked.contains(p)
            })
            .map(|(&p, d)| (p, *d))
            .collect();
        for &(p, _) in &resend {
            self.inflight.remove(&p);
        }
        for (psn, desc) in resend.into_iter().rev() {
            self.tx.push_front(TxItem::Retransmit { psn, desc, rnr });
        }
    }

    fn reissue_read_continuations(&mut self, out: &mut Vec<QpOutput>) {
        let conts: Vec<(u64, ReadState)> = self.reads.iter().map(|(&b, r)| (b, *r)).collect();
        for (_base, r) in conts {
            if r.received >= r.len {
                continue;
            }
            let remaining = r.len - r.received;
            let packets = remaining.div_ceil(self.cfg.mtu).max(1);
            // Continuation request: PSN = last successfully received
            // response (or the original request PSN), so the responder
            // re-streams `next_resp_psn ..`.
            let pkt = RcPacket {
                dst_qp: self.peer_qp,
                src_qp: self.qpn,
                psn: r.next_resp_psn - 1,
                kind: RcPacketKind::ReadRequest {
                    remote: VirtAddr(r.remote.0 + r.received),
                    len: remaining,
                    packets,
                },
            };
            out.push(QpOutput::Send {
                to: self.peer_node,
                packet: pkt,
            });
        }
    }

    fn rearm_timer(&mut self, now: SimTime, out: &mut Vec<QpOutput>) {
        let need = !self.inflight.is_empty() || !self.reads.is_empty();
        if need {
            self.timer_armed = true;
            self.timer_armed_at = now;
            // Selective repeat backs the timeout off exponentially under
            // consecutive losses (IRN's loss-driven backoff); go-back-N
            // keeps the fixed legacy timeout.
            let timeout = match self.cfg.transport {
                RdmaTransport::GoBackN => self.cfg.retransmit_timeout,
                RdmaTransport::SelectiveRepeat => {
                    self.cfg.retransmit_timeout * (1u64 << self.retry.min(5))
                }
            };
            out.push(QpOutput::SetTimer(QpTimer::Retransmit, now + timeout));
        } else if self.timer_armed {
            self.timer_armed = false;
            out.push(QpOutput::CancelTimer(QpTimer::Retransmit));
        }
    }

    /// Emits everything the window, pause state, and gather gate allow.
    fn pump(&mut self, now: SimTime, gate: &mut dyn DmaGate, out: &mut Vec<QpOutput>) {
        if self.errored {
            return;
        }
        loop {
            match self.pause {
                Pause::None => {}
                Pause::Rnr(until) if until <= now => self.pause = Pause::None,
                _ => break,
            }
            // Priority 1: queued retransmissions and read responses.
            if let Some(item) = self.tx.front().copied() {
                match item {
                    TxItem::Retransmit { psn, desc, rnr } => {
                        if let Some((addr, len)) = desc.gather {
                            if let GateDecision::Fault { fault_id } =
                                gate.gather(self.qpn, addr, len, desc.message)
                            {
                                self.pause = Pause::LocalFault(fault_id);
                                break;
                            }
                        }
                        self.tx.pop_front();
                        self.emit(psn, desc, if rnr { Retx::Rnr } else { Retx::Loss }, out);
                    }
                    TxItem::ReadResponse {
                        psn,
                        addr,
                        offset,
                        len,
                        last,
                        message,
                    } => {
                        if let GateDecision::Fault { fault_id } =
                            gate.gather(self.qpn, addr, len, message)
                        {
                            self.pause = Pause::LocalFault(fault_id);
                            break;
                        }
                        self.tx.pop_front();
                        self.stats.data_packets_sent += 1;
                        self.stats.bytes_sent += len;
                        out.push(QpOutput::Send {
                            to: self.peer_node,
                            packet: RcPacket {
                                dst_qp: self.peer_qp,
                                src_qp: self.qpn,
                                psn,
                                kind: RcPacketKind::ReadResponse { offset, len, last },
                            },
                        });
                    }
                }
                continue;
            }
            // Priority 2: new packets from the send queue, window
            // permitting. Selective repeat additionally caps in-flight
            // data at one BDP (IRN's replacement for PFC back-pressure).
            let window = match self.cfg.transport {
                RdmaTransport::GoBackN => self.cfg.window_packets,
                RdmaTransport::SelectiveRepeat => {
                    self.cfg.window_packets.min(self.cfg.bdp_packets)
                }
            };
            if self.inflight.len() as u64 >= window {
                break;
            }
            let Some(wr) = self.sq.front().copied() else {
                break;
            };
            match wr.op {
                SendOp::Send { local, len } => {
                    let offset = wr.cursor;
                    let chunk = (len - offset).min(self.cfg.mtu);
                    let last = offset + chunk >= len;
                    let addr = VirtAddr(local.0 + offset);
                    let message = MessageRange::new(local, len);
                    if let GateDecision::Fault { fault_id } =
                        gate.gather(self.qpn, addr, chunk, message)
                    {
                        self.pause = Pause::LocalFault(fault_id);
                        break;
                    }
                    let desc = TxDesc {
                        kind: RcPacketKind::SendData {
                            offset,
                            len: chunk,
                            last,
                            message_len: len,
                        },
                        gather: Some((addr, chunk)),
                        message,
                        complete: last.then_some((wr.wr_id, WcOpcode::Send, len)),
                    };
                    self.advance_sq(last, chunk);
                    let psn = self.next_psn;
                    self.next_psn += 1;
                    self.emit(psn, desc, Retx::No, out);
                }
                SendOp::Write { local, remote, len } => {
                    let offset = wr.cursor;
                    let chunk = (len - offset).min(self.cfg.mtu);
                    let last = offset + chunk >= len;
                    let addr = VirtAddr(local.0 + offset);
                    let message = MessageRange::new(local, len);
                    if let GateDecision::Fault { fault_id } =
                        gate.gather(self.qpn, addr, chunk, message)
                    {
                        self.pause = Pause::LocalFault(fault_id);
                        break;
                    }
                    let desc = TxDesc {
                        kind: RcPacketKind::WriteData {
                            remote: VirtAddr(remote.0 + offset),
                            len: chunk,
                            last,
                        },
                        gather: Some((addr, chunk)),
                        message,
                        complete: last.then_some((wr.wr_id, WcOpcode::Write, len)),
                    };
                    self.advance_sq(last, chunk);
                    let psn = self.next_psn;
                    self.next_psn += 1;
                    self.emit(psn, desc, Retx::No, out);
                }
                SendOp::Read { local, remote, len } => {
                    let packets = len.div_ceil(self.cfg.mtu).max(1);
                    let base = self.next_psn;
                    self.next_psn += packets + 1;
                    self.sq.pop_front();
                    self.reads.insert(
                        base,
                        ReadState {
                            wr_id: wr.wr_id,
                            local,
                            remote,
                            len,
                            packets,
                            next_resp_psn: base + 1,
                            received: 0,
                        },
                    );
                    out.push(QpOutput::Send {
                        to: self.peer_node,
                        packet: RcPacket {
                            dst_qp: self.peer_qp,
                            src_qp: self.qpn,
                            psn: base,
                            kind: RcPacketKind::ReadRequest {
                                remote,
                                len,
                                packets,
                            },
                        },
                    });
                }
            }
        }
        self.rearm_timer(now, out);
    }

    fn advance_sq(&mut self, last: bool, chunk: u64) {
        let wr = self.sq.front_mut().expect("pump checked front");
        wr.cursor += chunk;
        if last {
            self.sq.pop_front();
        }
    }

    fn emit(&mut self, psn: u64, desc: TxDesc, retx: Retx, out: &mut Vec<QpOutput>) {
        if retx != Retx::No {
            match retx {
                Retx::Loss => self.stats.retransmits += 1,
                Retx::Rnr => self.stats.rnr_retransmits += 1,
                Retx::No => unreachable!(),
            }
            if trace::enabled() {
                trace::instant_now(
                    "rdmasim",
                    "retransmit",
                    vec![
                        ("qpn", ArgValue::U64(u64::from(self.qpn.0))),
                        ("psn", ArgValue::U64(psn)),
                    ],
                );
                trace::metrics(|m| m.counter_add("rdmasim.retransmits", 1));
            }
        }
        let len = match desc.kind {
            RcPacketKind::SendData { len, .. } | RcPacketKind::WriteData { len, .. } => len,
            _ => 0,
        };
        self.stats.data_packets_sent += 1;
        self.stats.bytes_sent += len;
        self.inflight.insert(psn, desc);
        out.push(QpOutput::Send {
            to: self.peer_node,
            packet: RcPacket {
                dst_qp: self.peer_qp,
                src_qp: self.qpn,
                psn,
                kind: desc.kind,
            },
        });
    }

    // ------------------------------------------------------------------
    // Responder internals.
    // ------------------------------------------------------------------

    fn responder_path(
        &mut self,
        _now: SimTime,
        pkt: RcPacket,
        gate: &mut dyn DmaGate,
        out: &mut Vec<QpOutput>,
    ) {
        // Rewound read requests may legitimately arrive below ePSN.
        if let RcPacketKind::ReadRequest {
            remote,
            len,
            packets,
        } = pkt.kind
        {
            if pkt.psn < self.epsn {
                self.queue_read_responses(pkt.psn, remote, len, packets);
                return;
            }
        }
        if pkt.psn < self.epsn {
            // Duplicate from a go-back-N rewind: re-ack so the sender
            // advances.
            self.stats.rx_dropped += 1;
            self.send_ack(out);
            return;
        }
        if pkt.psn > self.epsn {
            if self.cfg.transport == RdmaTransport::SelectiveRepeat {
                self.park_out_of_order(pkt, out);
                return;
            }
            self.stats.rx_dropped += 1;
            if !self.nak_outstanding {
                self.nak_outstanding = true;
                self.stats.seq_naks_sent += 1;
                out.push(QpOutput::Send {
                    to: self.peer_node,
                    packet: RcPacket {
                        dst_qp: self.peer_qp,
                        src_qp: self.qpn,
                        psn: self.epsn,
                        kind: RcPacketKind::NakSequenceError,
                    },
                });
            }
            return;
        }

        // In sequence.
        match pkt.kind {
            RcPacketKind::SendData {
                offset,
                len,
                last,
                message_len,
            } => {
                if offset == 0 && self.cur_recv.is_none() {
                    match self.rq.pop_front() {
                        Some(wqe) => {
                            self.cur_recv = Some(RecvProgress { wqe, received: 0 });
                        }
                        None => {
                            // Classic RNR: no buffer posted.
                            self.send_rnr(u64::MAX, out);
                            return;
                        }
                    }
                }
                let Some(progress) = self.cur_recv else {
                    // Mid-message packet with no message in progress: the
                    // first packet was RNR'd; keep NACKing until rewind.
                    self.send_rnr(u64::MAX, out);
                    return;
                };
                let addr = VirtAddr(progress.wqe.addr.0 + offset);
                let message = MessageRange::new(progress.wqe.addr, message_len);
                match gate.scatter(self.qpn, addr, len, message) {
                    GateDecision::Ok => {}
                    GateDecision::Fault { fault_id } => {
                        self.send_rnr(fault_id, out);
                        out.push(QpOutput::RnrIssued { fault_id });
                        return;
                    }
                }
                let progress = self.cur_recv.as_mut().expect("checked above");
                progress.received += len;
                self.accept_packet(last, out);
                if last {
                    let progress = self.cur_recv.take().expect("message in progress");
                    self.stats.messages_received += 1;
                    // Exactly-once in-order delivery invariant: the
                    // stream key is this QP's own — unique per QP
                    // direction — and the sequence is its running
                    // message count.
                    simcore::chaos::invariant::note_qp_message(
                        self.chaos_stream,
                        self.stats.messages_received,
                    );
                    out.push(QpOutput::Complete(Completion {
                        wr_id: progress.wqe.wr_id,
                        opcode: WcOpcode::Recv,
                        status: WcStatus::Success,
                        len: message_len,
                    }));
                }
            }
            RcPacketKind::WriteData { remote, len, last } => {
                // The RETH of the first packet carries the full DMA
                // extent in real IB; here each packet self-describes.
                let message = MessageRange::new(remote, len);
                match gate.scatter(self.qpn, remote, len, message) {
                    GateDecision::Ok => {}
                    GateDecision::Fault { fault_id } => {
                        self.send_rnr(fault_id, out);
                        out.push(QpOutput::RnrIssued { fault_id });
                        return;
                    }
                }
                self.accept_packet(last, out);
            }
            RcPacketKind::ReadRequest {
                remote,
                len,
                packets,
            } => {
                self.epsn += packets + 1;
                self.nak_outstanding = false;
                self.queue_read_responses(pkt.psn, remote, len, packets);
            }
            _ => unreachable!("ack/nak/read-response handled by caller"),
        }
    }

    /// Parks an out-of-order packet for later in-order processing and
    /// advertises the reception through a selective ACK (IRN's NACK: the
    /// sender learns both the cumulative point and the hole).
    fn park_out_of_order(&mut self, pkt: RcPacket, out: &mut Vec<QpOutput>) {
        if pkt.psn > self.epsn + SACK_WINDOW {
            // Beyond the bitmap's reach: drop; the sender's timer
            // recovers it.
            self.stats.rx_dropped += 1;
            return;
        }
        if self.ooo.insert(pkt.psn, pkt).is_none() {
            self.stats.ooo_parked += 1;
        } else {
            // Duplicate of an already-parked packet.
            self.stats.rx_dropped += 1;
        }
        self.send_sack(out);
    }

    /// Processes parked packets that have become in-order. Stops as soon
    /// as the expected PSN is missing or a packet fails to make progress
    /// (e.g. its scatter DMA faulted and an RNR flushed the park).
    fn drain_parked(&mut self, now: SimTime, gate: &mut dyn DmaGate, out: &mut Vec<QpOutput>) {
        loop {
            let Some(pkt) = self.ooo.remove(&self.epsn) else {
                break;
            };
            let before = self.epsn;
            self.responder_path(now, pkt, gate, out);
            if self.epsn == before {
                break;
            }
        }
    }

    /// Sends a cumulative + selective acknowledgment describing the
    /// receiver's reassembly state.
    fn send_sack(&mut self, out: &mut Vec<QpOutput>) {
        self.stats.sacks_sent += 1;
        self.since_ack = 0;
        let mut bitmap = 0u64;
        for (&p, _) in self.ooo.range(self.epsn + 1..=self.epsn + SACK_WINDOW) {
            bitmap |= 1 << (p - self.epsn - 1);
        }
        out.push(QpOutput::Send {
            to: self.peer_node,
            packet: RcPacket {
                dst_qp: self.peer_qp,
                src_qp: self.qpn,
                psn: self.epsn,
                kind: RcPacketKind::SelectiveAck { bitmap },
            },
        });
    }

    fn accept_packet(&mut self, last: bool, out: &mut Vec<QpOutput>) {
        self.epsn += 1;
        self.nak_outstanding = false;
        self.since_ack += 1;
        if last || self.since_ack >= self.cfg.ack_every {
            self.send_ack(out);
        }
    }

    fn send_ack(&mut self, out: &mut Vec<QpOutput>) {
        self.since_ack = 0;
        out.push(QpOutput::Send {
            to: self.peer_node,
            packet: RcPacket {
                dst_qp: self.peer_qp,
                src_qp: self.qpn,
                psn: self.epsn.saturating_sub(1),
                kind: RcPacketKind::Ack,
            },
        });
    }

    fn send_rnr(&mut self, _fault_id: u64, out: &mut Vec<QpOutput>) {
        // RNR recovery retransmits from the expected PSN, so any parked
        // out-of-order data is discarded; the selective-ACK state the
        // sender holds is invalidated by the NACK itself.
        if !self.ooo.is_empty() {
            self.stats.rx_dropped += self.ooo.len() as u64;
            self.ooo.clear();
        }
        self.stats.rnr_nacks_sent += 1;
        if trace::enabled() {
            trace::instant_now(
                "rdmasim",
                "rnr_nack_sent",
                vec![("qpn", ArgValue::U64(u64::from(self.qpn.0)))],
            );
            trace::metrics(|m| m.counter_add("rdmasim.rnr_nacks_sent", 1));
        }
        out.push(QpOutput::Send {
            to: self.peer_node,
            packet: RcPacket {
                dst_qp: self.peer_qp,
                src_qp: self.qpn,
                psn: self.epsn,
                kind: RcPacketKind::NakReceiverNotReady {
                    wait: self.cfg.rnr_wait,
                },
            },
        });
    }

    fn queue_read_responses(&mut self, base_psn: u64, remote: VirtAddr, len: u64, packets: u64) {
        self.served_reads
            .push_back((base_psn, remote, len, packets));
        if self.served_reads.len() > 64 {
            self.served_reads.pop_front();
        }
        let message = MessageRange::new(remote, len);
        let mut offset = 0;
        for i in 0..packets {
            let chunk = (len - offset).min(self.cfg.mtu);
            let last = i + 1 == packets;
            self.tx.push_back(TxItem::ReadResponse {
                psn: base_psn + 1 + i,
                addr: VirtAddr(remote.0 + offset),
                offset,
                len: chunk,
                last,
                message,
            });
            offset += chunk;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_read_response(
        &mut self,
        _now: SimTime,
        psn: u64,
        offset: u64,
        len: u64,
        last: bool,
        gate: &mut dyn DmaGate,
        out: &mut Vec<QpOutput>,
    ) {
        // Drop everything while a read fault is pending (§4: no RNR for
        // reads; recovery is rewind-after-resolution).
        if self.read_fault.is_some() {
            self.stats.rx_dropped += 1;
            return;
        }
        // Find the read whose reserved range contains this PSN.
        let Some((&base, _)) = self.reads.range(..psn).next_back() else {
            self.stats.rx_dropped += 1;
            return;
        };
        let read = self.reads.get_mut(&base).expect("range hit");
        if psn > base + read.packets || psn != read.next_resp_psn {
            // Out of order or stale: drop; the timer re-requests.
            self.stats.rx_dropped += 1;
            return;
        }
        let addr = VirtAddr(read.local.0 + offset);
        let message = MessageRange::new(read.local, read.len);
        match gate.scatter(self.qpn, addr, len, message) {
            GateDecision::Ok => {}
            GateDecision::Fault { fault_id } => {
                self.stats.rx_dropped += 1;
                self.read_fault = Some((fault_id, base));
                if self.cfg.rnr_for_reads {
                    // §4 extension: stop the responder instead of letting
                    // it stream responses into the void.
                    self.stats.read_rnr_sent += 1;
                    out.push(QpOutput::Send {
                        to: self.peer_node,
                        packet: RcPacket {
                            dst_qp: self.peer_qp,
                            src_qp: self.qpn,
                            psn,
                            kind: RcPacketKind::NakReadNotReady {
                                wait: self.cfg.rnr_wait,
                            },
                        },
                    });
                }
                return;
            }
        }
        read.next_resp_psn += 1;
        read.received += len;
        self.retry = 0;
        if last || read.received >= read.len {
            let read = self.reads.remove(&base).expect("present");
            out.push(QpOutput::Complete(Completion {
                wr_id: read.wr_id,
                opcode: WcOpcode::Read,
                status: WcStatus::Success,
                len: read.len,
            }));
        }
    }
}

fn opcode_of(op: &SendOp) -> WcOpcode {
    match op {
        SendOp::Send { .. } => WcOpcode::Send,
        SendOp::Write { .. } => WcOpcode::Write,
        SendOp::Read { .. } => WcOpcode::Read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    const NODE_A: NodeId = NodeId(0);
    const NODE_B: NodeId = NodeId(1);

    fn qp_pair() -> (RcQp, RcQp) {
        let a = RcQp::new(RcConfig::default(), QpId(1), QpId(2), NODE_B);
        let b = RcQp::new(RcConfig::default(), QpId(2), QpId(1), NODE_A);
        (a, b)
    }

    /// Delivers all queued packets between two QPs until quiescent,
    /// collecting completions from both sides.
    fn run(
        a: &mut RcQp,
        b: &mut RcQp,
        first: Vec<QpOutput>,
        gate_a: &mut dyn DmaGate,
        gate_b: &mut dyn DmaGate,
        now: SimTime,
    ) -> (Vec<Completion>, Vec<Completion>) {
        let mut comps_a = Vec::new();
        let mut comps_b = Vec::new();
        let mut to_b: Vec<RcPacket> = Vec::new();
        let mut to_a: Vec<RcPacket> = Vec::new();
        let absorb = |outs: Vec<QpOutput>, tx: &mut Vec<RcPacket>, comps: &mut Vec<Completion>| {
            for o in outs {
                match o {
                    QpOutput::Send { packet, .. } => tx.push(packet),
                    QpOutput::Complete(c) => comps.push(c),
                    _ => {}
                }
            }
        };
        absorb(first, &mut to_b, &mut comps_a);
        for _ in 0..10_000 {
            if to_b.is_empty() && to_a.is_empty() {
                break;
            }
            if let Some(pkt) = to_b.first().copied() {
                to_b.remove(0);
                absorb(b.on_packet(now, pkt, gate_b), &mut to_a, &mut comps_b);
            }
            if let Some(pkt) = to_a.first().copied() {
                to_a.remove(0);
                absorb(a.on_packet(now, pkt, gate_a), &mut to_b, &mut comps_a);
            }
        }
        (comps_a, comps_b)
    }

    #[test]
    fn send_recv_single_packet() {
        let (mut a, mut b) = qp_pair();
        b.post_recv(RecvWqe {
            wr_id: 77,
            addr: VirtAddr(0x10000),
            capacity: 8192,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            1,
            SendOp::Send {
                local: VirtAddr(0x2000),
                len: 1000,
            },
            &mut PinnedGate,
        );
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            SimTime::ZERO,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(ca[0].opcode, WcOpcode::Send);
        assert_eq!(ca[0].status, WcStatus::Success);
        assert_eq!(cb.len(), 1);
        assert_eq!(cb[0].wr_id, 77);
        assert_eq!(cb[0].opcode, WcOpcode::Recv);
        assert_eq!(cb[0].len, 1000);
    }

    #[test]
    fn multi_packet_message_segments_by_mtu() {
        let (mut a, mut b) = qp_pair();
        b.post_recv(RecvWqe {
            wr_id: 9,
            addr: VirtAddr(0x10000),
            capacity: 1 << 22,
        });
        // 4 MiB message = 1024 MTU packets.
        let outs = a.post_send(
            SimTime::ZERO,
            1,
            SendOp::Send {
                local: VirtAddr(0),
                len: 4 << 20,
            },
            &mut PinnedGate,
        );
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            SimTime::ZERO,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert_eq!(cb[0].len, 4 << 20);
        assert_eq!(a.stats().data_packets_sent, 1024);
        assert_eq!(b.stats().messages_received, 1);
    }

    #[test]
    fn rdma_write_needs_no_recv_wqe() {
        let (mut a, mut b) = qp_pair();
        let outs = a.post_send(
            SimTime::ZERO,
            3,
            SendOp::Write {
                local: VirtAddr(0),
                remote: VirtAddr(0x9000),
                len: 10_000,
            },
            &mut PinnedGate,
        );
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            SimTime::ZERO,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(ca[0].opcode, WcOpcode::Write);
        assert!(cb.is_empty(), "inbound writes are invisible to the app");
    }

    #[test]
    fn rdma_read_round_trip() {
        let (mut a, mut b) = qp_pair();
        let outs = a.post_send(
            SimTime::ZERO,
            4,
            SendOp::Read {
                local: VirtAddr(0x4000),
                remote: VirtAddr(0x8000),
                len: 10_000,
            },
            &mut PinnedGate,
        );
        let (ca, _cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            SimTime::ZERO,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(ca[0].opcode, WcOpcode::Read);
        assert_eq!(ca[0].len, 10_000);
        assert!(a.reads.is_empty());
    }

    #[test]
    fn missing_recv_wqe_triggers_rnr_and_recovers() {
        let (mut a, mut b) = qp_pair();
        // No recv posted: the first delivery attempt RNR-NACKs.
        let outs = a.post_send(
            SimTime::ZERO,
            5,
            SendOp::Send {
                local: VirtAddr(0),
                len: 500,
            },
            &mut PinnedGate,
        );
        let pkt = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("data packet");
        let nacks = b.on_packet(SimTime::ZERO, pkt, &mut PinnedGate);
        let nak = nacks
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("rnr nack");
        assert!(matches!(nak.kind, RcPacketKind::NakReceiverNotReady { .. }));
        assert_eq!(b.stats().rnr_nacks_sent, 1);
        // Sender pauses...
        let outs = a.on_packet(SimTime::ZERO, nak, &mut PinnedGate);
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, QpOutput::Send { packet, .. } if packet.wire_size() > 64)),
            "paused sender must not retransmit data yet"
        );
        assert_eq!(a.stats().rnr_nacks_received, 1);
        // ...the app posts a buffer, the RNR timer fires, and the
        // retransmission completes the exchange.
        b.post_recv(RecvWqe {
            wr_id: 50,
            addr: VirtAddr(0x10000),
            capacity: 4096,
        });
        let resume = SimTime::ZERO + RcConfig::default().rnr_wait;
        let outs = a.on_timer(resume, QpTimer::RnrResume, &mut PinnedGate);
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            resume,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert!(a.stats().rnr_retransmits >= 1, "RNR rewind books separately");
        assert_eq!(a.stats().retransmits, 0, "no loss happened");
    }

    /// A gate that faults the first `n` scatter accesses.
    struct FaultFirstN {
        remaining: u32,
        next_id: u64,
        pub faults: Vec<u64>,
    }

    impl FaultFirstN {
        fn new(n: u32) -> Self {
            FaultFirstN {
                remaining: n,
                next_id: 100,
                faults: Vec::new(),
            }
        }
    }

    impl DmaGate for FaultFirstN {
        fn gather(
            &mut self,
            _qp: QpId,
            _addr: VirtAddr,
            _len: u64,
            _m: MessageRange,
        ) -> GateDecision {
            GateDecision::Ok
        }
        fn scatter(
            &mut self,
            _qp: QpId,
            _addr: VirtAddr,
            _len: u64,
            _m: MessageRange,
        ) -> GateDecision {
            if self.remaining > 0 {
                self.remaining -= 1;
                let id = self.next_id;
                self.next_id += 1;
                self.faults.push(id);
                GateDecision::Fault { fault_id: id }
            } else {
                GateDecision::Ok
            }
        }
    }

    #[test]
    fn rnpf_on_receive_rnr_nacks_then_recovers() {
        let (mut a, mut b) = qp_pair();
        b.post_recv(RecvWqe {
            wr_id: 7,
            addr: VirtAddr(0x10000),
            capacity: 4096,
        });
        let mut faulty = FaultFirstN::new(1);
        let outs = a.post_send(
            SimTime::ZERO,
            6,
            SendOp::Send {
                local: VirtAddr(0),
                len: 2000,
            },
            &mut PinnedGate,
        );
        let pkt = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("data");
        // The receive DMA faults: RNR NACK + RnrIssued effect.
        let outs = b.on_packet(SimTime::ZERO, pkt, &mut faulty);
        assert!(outs
            .iter()
            .any(|o| matches!(o, QpOutput::RnrIssued { fault_id } if *fault_id == 100)));
        let nak = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("nak");
        a.on_packet(SimTime::ZERO, nak, &mut PinnedGate);
        // After the pause the fault is resolved (gate accepts) and the
        // retransmitted packet lands.
        let resume = SimTime::ZERO + RcConfig::default().rnr_wait;
        let outs = a.on_timer(resume, QpTimer::RnrResume, &mut PinnedGate);
        let (ca, cb) = run(&mut a, &mut b, outs, &mut PinnedGate, &mut faulty, resume);
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert_eq!(cb[0].len, 2000);
    }

    /// A gate that faults gathers once.
    struct GatherFaultOnce {
        armed: bool,
    }

    impl DmaGate for GatherFaultOnce {
        fn gather(
            &mut self,
            _qp: QpId,
            _addr: VirtAddr,
            _len: u64,
            _m: MessageRange,
        ) -> GateDecision {
            if self.armed {
                self.armed = false;
                GateDecision::Fault { fault_id: 555 }
            } else {
                GateDecision::Ok
            }
        }
        fn scatter(
            &mut self,
            _qp: QpId,
            _addr: VirtAddr,
            _len: u64,
            _m: MessageRange,
        ) -> GateDecision {
            GateDecision::Ok
        }
    }

    #[test]
    fn local_fault_pauses_sender_until_resolved() {
        let (mut a, mut b) = qp_pair();
        b.post_recv(RecvWqe {
            wr_id: 8,
            addr: VirtAddr(0x10000),
            capacity: 4096,
        });
        let mut gate = GatherFaultOnce { armed: true };
        let outs = a.post_send(
            SimTime::ZERO,
            9,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100,
            },
            &mut gate,
        );
        assert!(
            !outs.iter().any(|o| matches!(o, QpOutput::Send { .. })),
            "faulted gather must emit nothing"
        );
        // The NPF engine resolves fault 555; transmission resumes.
        let outs = a.fault_resolved(SimTime::from_micros(220), 555, &mut gate);
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut gate,
            &mut PinnedGate,
            SimTime::from_micros(220),
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
    }

    #[test]
    fn read_response_fault_drops_then_rewinds() {
        let (mut a, mut b) = qp_pair();
        let mut faulty = FaultFirstN::new(1);
        let outs = a.post_send(
            SimTime::ZERO,
            10,
            SendOp::Read {
                local: VirtAddr(0x4000),
                remote: VirtAddr(0x8000),
                len: 10_000,
            },
            &mut PinnedGate,
        );
        // Deliver the request; collect the responses.
        let req = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("request");
        let outs = b.on_packet(SimTime::ZERO, req, &mut PinnedGate);
        let responses: Vec<RcPacket> = outs
            .iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .collect();
        assert_eq!(responses.len(), 3, "10 KB = 3 MTU packets");
        // First response faults at the initiator; the rest are dropped.
        for r in &responses {
            a.on_packet(SimTime::ZERO, *r, &mut faulty);
        }
        assert_eq!(a.stats().rx_dropped, 3);
        assert!(a.reads.len() == 1, "read still outstanding");
        // Resolution triggers a rewound request for the full remainder.
        let outs = a.fault_resolved(SimTime::from_micros(300), faulty.faults[0], &mut faulty);
        let (ca, _cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut faulty,
            &mut PinnedGate,
            SimTime::from_micros(300),
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(ca[0].opcode, WcOpcode::Read);
        assert_eq!(ca[0].status, WcStatus::Success);
    }

    #[test]
    fn retransmit_timeout_goes_back_n() {
        let (mut a, mut b) = qp_pair();
        b.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            11,
            SendOp::Send {
                local: VirtAddr(0),
                len: 3 * 4096,
            },
            &mut PinnedGate,
        );
        let pkts: Vec<RcPacket> = outs
            .iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .collect();
        assert_eq!(pkts.len(), 3);
        // Lose all three; fire the retransmission timer.
        let deadline = SimTime::ZERO + RcConfig::default().retransmit_timeout;
        let outs = a.on_timer(deadline, QpTimer::Retransmit, &mut PinnedGate);
        let retx: Vec<RcPacket> = outs
            .iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .collect();
        assert_eq!(retx.len(), 3, "go-back-N resends the window");
        assert_eq!(retx[0].psn, 0);
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            deadline,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
    }

    #[test]
    fn out_of_sequence_packet_naked_and_recovered() {
        let (mut a, mut b) = qp_pair();
        b.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            12,
            SendOp::Send {
                local: VirtAddr(0),
                len: 3 * 4096,
            },
            &mut PinnedGate,
        );
        let pkts: Vec<RcPacket> = outs
            .iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .collect();
        // Drop packet 0; deliver 1 and 2: one NAK comes back.
        let naks = b.on_packet(SimTime::ZERO, pkts[1], &mut PinnedGate);
        let nak = naks
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("nak");
        assert_eq!(nak.kind, RcPacketKind::NakSequenceError);
        assert_eq!(nak.psn, 0);
        let more = b.on_packet(SimTime::ZERO, pkts[2], &mut PinnedGate);
        assert!(
            !more.iter().any(|o| matches!(o, QpOutput::Send { .. })),
            "NAK storm suppressed"
        );
        // The NAK rewinds the sender; the retransmitted stream completes.
        let outs = a.on_packet(SimTime::ZERO, nak, &mut PinnedGate);
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            SimTime::ZERO,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert_eq!(b.stats().messages_received, 1);
    }

    #[test]
    fn retry_exhaustion_errors_the_qp() {
        let cfg = RcConfig {
            max_retries: 2,
            ..RcConfig::default()
        };
        let mut a = RcQp::new(cfg, QpId(1), QpId(2), NODE_B);
        let outs = a.post_send(
            SimTime::ZERO,
            13,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100,
            },
            &mut PinnedGate,
        );
        assert!(outs.iter().any(|o| matches!(o, QpOutput::Send { .. })));
        let mut now = SimTime::ZERO;
        let mut failed = Vec::new();
        for _ in 0..5 {
            now += cfg.retransmit_timeout;
            for o in a.on_timer(now, QpTimer::Retransmit, &mut PinnedGate) {
                if let QpOutput::Complete(c) = o {
                    failed.push(c);
                }
            }
            if a.is_errored() {
                break;
            }
        }
        assert!(a.is_errored());
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].status, WcStatus::RetryExceeded);
        // Posts after the error complete immediately with failure.
        let outs = a.post_send(
            now,
            14,
            SendOp::Send {
                local: VirtAddr(0),
                len: 1,
            },
            &mut PinnedGate,
        );
        assert!(matches!(
            outs[0],
            QpOutput::Complete(Completion {
                status: WcStatus::RetryExceeded,
                ..
            })
        ));
    }

    /// Regression (ISSUE 10 satellite): RNR-driven rewinds and
    /// loss-driven retransmissions must land in different counters —
    /// a run with both kinds keeps them apart.
    #[test]
    fn rnr_and_loss_retransmits_are_accounted_separately() {
        let (mut a, mut b) = qp_pair();
        // Phase 1: loss. Send one packet, never deliver it, fire the
        // retransmission timer.
        b.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            20,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100,
            },
            &mut PinnedGate,
        );
        drop(outs); // packet lost on the wire
        let deadline = SimTime::ZERO + RcConfig::default().retransmit_timeout;
        let outs = a.on_timer(deadline, QpTimer::Retransmit, &mut PinnedGate);
        assert_eq!(a.stats().retransmits, 1, "timeout retx is loss");
        assert_eq!(a.stats().rnr_retransmits, 0);
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            deadline,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        // Phase 2: RNR. No receive buffer posted; the retransmit after
        // the RNR wait books to the RNR counter.
        let outs = a.post_send(
            deadline,
            21,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100,
            },
            &mut PinnedGate,
        );
        let pkt = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("data");
        let naks = b.on_packet(deadline, pkt, &mut PinnedGate);
        let nak = naks
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("rnr nak");
        a.on_packet(deadline, nak, &mut PinnedGate);
        b.post_recv(RecvWqe {
            wr_id: 2,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let resume = deadline + RcConfig::default().rnr_wait;
        let outs = a.on_timer(resume, QpTimer::RnrResume, &mut PinnedGate);
        let (ca, cb) = run(
            &mut a,
            &mut b,
            outs,
            &mut PinnedGate,
            &mut PinnedGate,
            resume,
        );
        assert_eq!(ca.len(), 1);
        assert_eq!(cb.len(), 1);
        assert_eq!(a.stats().retransmits, 1, "loss count unchanged");
        assert_eq!(a.stats().rnr_retransmits, 1, "RNR rewind counted apart");
        assert_eq!(a.stats().total_retransmits(), 2);
    }

    #[test]
    fn window_limits_outstanding_packets() {
        let cfg = RcConfig {
            window_packets: 4,
            ..RcConfig::default()
        };
        let mut a = RcQp::new(cfg, QpId(1), QpId(2), NODE_B);
        let outs = a.post_send(
            SimTime::ZERO,
            15,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100 * 4096,
            },
            &mut PinnedGate,
        );
        let sent = outs
            .iter()
            .filter(|o| matches!(o, QpOutput::Send { .. }))
            .count();
        assert_eq!(sent, 4, "window caps the burst");
    }
}

#[cfg(test)]
mod read_rnr_extension_tests {
    use super::*;
    use crate::types::PinnedGate;

    /// The §4 extension end to end: a faulting read initiator stops the
    /// responder with a read-RNR NAK; the responder resumes after the
    /// wait and the read completes without a rewound request.
    #[test]
    fn read_rnr_extension_recovers_without_rewind() {
        let cfg = RcConfig {
            rnr_for_reads: true,
            ..RcConfig::default()
        };
        let mut a = RcQp::new(cfg, QpId(1), QpId(2), NodeId(1));
        let mut b = RcQp::new(cfg, QpId(2), QpId(1), NodeId(0));

        struct FaultOnce {
            armed: bool,
        }
        impl DmaGate for FaultOnce {
            fn gather(&mut self, _: QpId, _: VirtAddr, _: u64, _: MessageRange) -> GateDecision {
                GateDecision::Ok
            }
            fn scatter(&mut self, _: QpId, _: VirtAddr, _: u64, _: MessageRange) -> GateDecision {
                if self.armed {
                    self.armed = false;
                    GateDecision::Fault { fault_id: 42 }
                } else {
                    GateDecision::Ok
                }
            }
        }
        let mut gate = FaultOnce { armed: true };

        let outs = a.post_send(
            SimTime::ZERO,
            1,
            SendOp::Read {
                local: VirtAddr(0x4000),
                remote: VirtAddr(0x8000),
                len: 12_288,
            },
            &mut PinnedGate,
        );
        let req = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("request");
        let responses: Vec<RcPacket> = b
            .on_packet(SimTime::ZERO, req, &mut PinnedGate)
            .into_iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(packet),
                _ => None,
            })
            .collect();
        assert_eq!(responses.len(), 3);

        // First response faults at the initiator: a read-RNR NAK goes
        // back instead of silence.
        let outs = a.on_packet(SimTime::ZERO, responses[0], &mut gate);
        let nak = outs
            .iter()
            .find_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .expect("read-rnr nak");
        assert!(matches!(nak.kind, RcPacketKind::NakReadNotReady { .. }));
        assert_eq!(a.stats().read_rnr_sent, 1);
        // In-flight responses are dropped while the fault is pending.
        a.on_packet(SimTime::ZERO, responses[1], &mut gate);
        a.on_packet(SimTime::ZERO, responses[2], &mut gate);
        assert_eq!(a.stats().rx_dropped, 3);

        // The responder parks its stream (nothing new goes out) and
        // arms a resume timer.
        let outs = b.on_packet(SimTime::ZERO, nak, &mut PinnedGate);
        assert!(outs
            .iter()
            .any(|o| matches!(o, QpOutput::SetTimer(QpTimer::RnrResume, _))));
        assert_eq!(b.stats().read_rnr_received, 1);

        // Initiator's fault resolves (gate now accepts); no rewound
        // request is sent under the extension.
        let outs = a.fault_resolved(SimTime::from_micros(220), 42, &mut gate);
        assert!(
            !outs.iter().any(|o| matches!(o, QpOutput::Send { .. })),
            "extension avoids the rewind request"
        );

        // The responder's timer fires and it re-streams from the NACKed
        // PSN; the read completes.
        let resume = SimTime::ZERO + cfg.rnr_wait;
        let resent: Vec<RcPacket> = b
            .on_timer(resume, QpTimer::RnrResume, &mut PinnedGate)
            .into_iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(packet),
                _ => None,
            })
            .collect();
        assert_eq!(resent.len(), 3, "responder re-serves the parked slices");
        let mut comps = Vec::new();
        for p in resent {
            for o in a.on_packet(resume, p, &mut gate) {
                if let QpOutput::Complete(c) = o {
                    comps.push(c);
                }
            }
        }
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].opcode, WcOpcode::Read);
        assert_eq!(comps[0].status, WcStatus::Success);
    }
}

#[cfg(test)]
mod exhaustion_tests {
    use super::*;
    use crate::types::PinnedGate;

    /// RNR retries are bounded: a receiver that never becomes ready
    /// eventually errors the QP with `RnrRetryExceeded`.
    #[test]
    fn rnr_retry_exhaustion_errors_qp() {
        let cfg = RcConfig {
            max_rnr_retries: 3,
            ..RcConfig::default()
        };
        let mut a = RcQp::new(cfg, QpId(1), QpId(2), NodeId(1));
        let mut b = RcQp::new(cfg, QpId(2), QpId(1), NodeId(0));
        // No receive buffer is ever posted at b.
        let mut now = SimTime::ZERO;
        let mut outs = a.post_send(
            now,
            1,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100,
            },
            &mut PinnedGate,
        );
        let mut failed = None;
        for _ in 0..10 {
            // Deliver a's data packets to b; b RNR-NACKs; deliver the
            // NACK back; fire a's resume timer.
            let data: Vec<RcPacket> = outs
                .iter()
                .filter_map(|o| match o {
                    QpOutput::Send { packet, .. } => Some(*packet),
                    _ => None,
                })
                .collect();
            let mut naks = Vec::new();
            for p in data {
                for o in b.on_packet(now, p, &mut PinnedGate) {
                    if let QpOutput::Send { packet, .. } = o {
                        naks.push(packet);
                    }
                }
            }
            let mut resume_at = None;
            for n in naks {
                for o in a.on_packet(now, n, &mut PinnedGate) {
                    match o {
                        QpOutput::SetTimer(QpTimer::RnrResume, t) => resume_at = Some(t),
                        QpOutput::Complete(c) => failed = Some(c),
                        _ => {}
                    }
                }
            }
            if failed.is_some() {
                break;
            }
            let Some(t) = resume_at else { break };
            now = t;
            outs = a.on_timer(now, QpTimer::RnrResume, &mut PinnedGate);
        }
        let failure = failed.expect("RNR retries must exhaust");
        assert_eq!(failure.status, WcStatus::RnrRetryExceeded);
        assert!(a.is_errored());
    }

    /// The send window refills as cumulative ACKs arrive: a message
    /// larger than the window completes through multiple bursts.
    #[test]
    fn window_refills_on_ack() {
        // Ack coalescing must not exceed the window or the pipeline
        // stalls until the retransmission timer (as on real hardware).
        let cfg = RcConfig {
            window_packets: 2,
            ack_every: 2,
            ..RcConfig::default()
        };
        let mut a = RcQp::new(cfg, QpId(1), QpId(2), NodeId(1));
        let mut b = RcQp::new(cfg, QpId(2), QpId(1), NodeId(0));
        b.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let mut wire: Vec<RcPacket> = a
            .post_send(
                SimTime::ZERO,
                1,
                SendOp::Send {
                    local: VirtAddr(0),
                    len: 10 * 4096,
                },
                &mut PinnedGate,
            )
            .into_iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(packet),
                _ => None,
            })
            .collect();
        assert_eq!(wire.len(), 2, "window caps the first burst");
        let mut recv_done = false;
        for _ in 0..40 {
            if wire.is_empty() {
                break;
            }
            let mut next = Vec::new();
            for p in wire.drain(..) {
                let qp: &mut RcQp = if p.dst_qp == QpId(2) { &mut b } else { &mut a };
                for o in qp.on_packet(SimTime::ZERO, p, &mut PinnedGate) {
                    match o {
                        QpOutput::Send { packet, .. } => next.push(packet),
                        QpOutput::Complete(c) if c.opcode == WcOpcode::Recv => {
                            recv_done = true;
                        }
                        _ => {}
                    }
                }
            }
            wire = next;
        }
        assert!(
            recv_done,
            "10-packet message completes through a 2-packet window"
        );
        assert_eq!(a.stats().data_packets_sent, 10);
    }
}

#[cfg(test)]
mod selective_repeat_tests {
    use super::*;
    use crate::types::PinnedGate;

    fn sr_cfg() -> RcConfig {
        RcConfig {
            transport: RdmaTransport::SelectiveRepeat,
            ..RcConfig::default()
        }
    }

    fn sr_pair(cfg: RcConfig) -> (RcQp, RcQp) {
        (
            RcQp::new(cfg, QpId(1), QpId(2), NodeId(1)),
            RcQp::new(cfg, QpId(2), QpId(1), NodeId(0)),
        )
    }

    fn sends(outs: &[QpOutput]) -> Vec<RcPacket> {
        outs.iter()
            .filter_map(|o| match o {
                QpOutput::Send { packet, .. } => Some(*packet),
                _ => None,
            })
            .collect()
    }

    /// Delivers packets until quiescent (lossless), collecting
    /// completions on both sides.
    fn settle(
        a: &mut RcQp,
        b: &mut RcQp,
        first: Vec<QpOutput>,
        now: SimTime,
    ) -> (Vec<Completion>, Vec<Completion>) {
        let mut comps_a = Vec::new();
        let mut comps_b = Vec::new();
        let mut to_b = sends(&first);
        let mut to_a: Vec<RcPacket> = Vec::new();
        for o in &first {
            if let QpOutput::Complete(c) = o {
                comps_a.push(*c);
            }
        }
        for _ in 0..10_000 {
            if to_b.is_empty() && to_a.is_empty() {
                break;
            }
            if !to_b.is_empty() {
                let pkt = to_b.remove(0);
                for o in b.on_packet(now, pkt, &mut PinnedGate) {
                    match o {
                        QpOutput::Send { packet, .. } => to_a.push(packet),
                        QpOutput::Complete(c) => comps_b.push(c),
                        _ => {}
                    }
                }
            }
            if !to_a.is_empty() {
                let pkt = to_a.remove(0);
                for o in a.on_packet(now, pkt, &mut PinnedGate) {
                    match o {
                        QpOutput::Send { packet, .. } => to_b.push(packet),
                        QpOutput::Complete(c) => comps_a.push(c),
                        _ => {}
                    }
                }
            }
        }
        (comps_a, comps_b)
    }

    /// One lost packet in a burst: the receiver parks the rest, the
    /// selective ACK triggers retransmission of only the hole, and no
    /// already-delivered packet crosses the wire twice.
    #[test]
    fn single_loss_recovers_without_rewind() {
        let (mut a, mut b) = sr_pair(sr_cfg());
        b.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            1,
            SendOp::Send {
                local: VirtAddr(0),
                len: 4 * 4096,
            },
            &mut PinnedGate,
        );
        let pkts = sends(&outs);
        assert_eq!(pkts.len(), 4);
        // Lose packet 1; deliver 0, 2, 3.
        let mut to_a = Vec::new();
        to_a.extend(sends(&b.on_packet(SimTime::ZERO, pkts[0], &mut PinnedGate)));
        to_a.extend(sends(&b.on_packet(SimTime::ZERO, pkts[2], &mut PinnedGate)));
        to_a.extend(sends(&b.on_packet(SimTime::ZERO, pkts[3], &mut PinnedGate)));
        assert_eq!(b.stats().ooo_parked, 2, "packets 2 and 3 parked");
        assert!(b.stats().sacks_sent >= 2, "each OOO arrival SACKs");
        assert_eq!(b.stats().seq_naks_sent, 0, "IRN never seq-NAKs");
        // Feed the ACK/SACK stream back: exactly one retransmit (PSN 1).
        let mut retx = Vec::new();
        for pkt in to_a {
            retx.extend(sends(&a.on_packet(SimTime::ZERO, pkt, &mut PinnedGate)));
        }
        assert_eq!(retx.len(), 1, "only the hole is retransmitted");
        assert_eq!(retx[0].psn, 1);
        assert_eq!(a.stats().retransmits, 1);
        // Delivering it completes the message exactly once.
        let (ca, cb) = settle(&mut a, &mut b, vec![], SimTime::ZERO);
        assert!(ca.is_empty() && cb.is_empty());
        let mut comps_b = Vec::new();
        for o in b.on_packet(SimTime::ZERO, retx[0], &mut PinnedGate) {
            if let QpOutput::Complete(c) = o {
                comps_b.push(c);
            }
        }
        assert_eq!(comps_b.len(), 1, "message completes after hole fills");
        assert_eq!(comps_b[0].len, 4 * 4096);
        assert_eq!(b.stats().messages_received, 1);
    }

    /// Lossless operation is exactly-once and in-order: same completion
    /// stream as go-back-N.
    #[test]
    fn lossless_matches_go_back_n_completions() {
        let mk = |transport| {
            let cfg = RcConfig {
                transport,
                ..RcConfig::default()
            };
            let (mut a, mut b) = sr_pair(cfg);
            for i in 0..8 {
                b.post_recv(RecvWqe {
                    wr_id: 100 + i,
                    addr: VirtAddr(0x10000),
                    capacity: 1 << 20,
                });
            }
            let mut first = Vec::new();
            for i in 0..8 {
                first.extend(a.post_send(
                    SimTime::ZERO,
                    i,
                    SendOp::Send {
                        local: VirtAddr(0),
                        len: 3 * 4096,
                    },
                    &mut PinnedGate,
                ));
            }
            let (ca, cb) = settle(&mut a, &mut b, first, SimTime::ZERO);
            (
                ca.iter().map(|c| (c.wr_id, c.len)).collect::<Vec<_>>(),
                cb.iter().map(|c| (c.wr_id, c.len)).collect::<Vec<_>>(),
            )
        };
        let gbn = mk(RdmaTransport::GoBackN);
        let irn = mk(RdmaTransport::SelectiveRepeat);
        assert_eq!(gbn, irn, "lossless completion streams identical");
    }

    /// The BDP cap bounds the first burst below the window.
    #[test]
    fn bdp_cap_limits_inflight() {
        let cfg = RcConfig {
            transport: RdmaTransport::SelectiveRepeat,
            window_packets: 128,
            bdp_packets: 8,
            ..RcConfig::default()
        };
        let mut a = RcQp::new(cfg, QpId(1), QpId(2), NodeId(1));
        let outs = a.post_send(
            SimTime::ZERO,
            1,
            SendOp::Send {
                local: VirtAddr(0),
                len: 100 * 4096,
            },
            &mut PinnedGate,
        );
        assert_eq!(sends(&outs).len(), 8, "BDP caps the burst");
    }

    /// Timeout recovery resends only unsacked holes and backs the timer
    /// off exponentially.
    #[test]
    fn timeout_resends_holes_with_backoff() {
        let (mut a, mut b) = sr_pair(sr_cfg());
        b.post_recv(RecvWqe {
            wr_id: 1,
            addr: VirtAddr(0x10000),
            capacity: 1 << 20,
        });
        let outs = a.post_send(
            SimTime::ZERO,
            1,
            SendOp::Send {
                local: VirtAddr(0),
                len: 3 * 4096,
            },
            &mut PinnedGate,
        );
        let pkts = sends(&outs);
        // Only packet 2 arrives (parked); its SACK is lost too.
        b.on_packet(SimTime::ZERO, pkts[2], &mut PinnedGate);
        let deadline = SimTime::ZERO + RcConfig::default().retransmit_timeout;
        let outs = a.on_timer(deadline, QpTimer::Retransmit, &mut PinnedGate);
        let retx = sends(&outs);
        // The SACK never arrived, so the sender re-sends all three; but
        // after a SACK arrives, a second timeout skips the sacked PSN.
        assert_eq!(retx.len(), 3);
        // Deliver packet 0 only; the ACK carries cumulative progress,
        // then a SACK for the still-parked PSN 2 arrives via packet 2's
        // earlier park (simulate by handing the SACK directly).
        let acks = sends(&b.on_packet(deadline, retx[0], &mut PinnedGate));
        for pkt in acks {
            a.on_packet(deadline, pkt, &mut PinnedGate);
        }
        let timer2 = outs.iter().find_map(|o| match o {
            QpOutput::SetTimer(QpTimer::Retransmit, t) => Some(*t),
            _ => None,
        });
        let t2 = timer2.expect("timer re-armed");
        assert!(
            t2 >= deadline + RcConfig::default().retransmit_timeout * 2,
            "backoff doubles the timeout after a loss round"
        );
        let outs = a.on_timer(t2, QpTimer::Retransmit, &mut PinnedGate);
        let retx2 = sends(&outs);
        assert!(
            retx2.iter().all(|p| p.psn != 2),
            "sacked PSN 2 is never resent: {retx2:?}"
        );
        assert!(retx2.iter().any(|p| p.psn == 1), "hole PSN 1 is resent");
    }
}
