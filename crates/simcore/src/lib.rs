//! # simcore — deterministic discrete-event simulation foundation
//!
//! Shared infrastructure for the NPF reproduction: simulated time, a
//! deterministic event queue, seeded randomness, measurement statistics,
//! and bandwidth/size units. Every other crate in the workspace builds on
//! these types.
//!
//! The design goal is *bit-for-bit reproducibility*: given the same seed
//! and configuration, a simulation produces identical event orderings and
//! therefore identical measurements. Two rules make that hold:
//!
//! 1. all time comes from one [`event::EventQueue`] per testbed, with FIFO
//!    tie-breaking for simultaneous events, and
//! 2. all randomness comes from a [`rng::SimRng`] seeded at testbed
//!    construction (components fork child streams so their draws do not
//!    interleave).
//!
//! # Examples
//!
//! ```
//! use simcore::event::EventQueue;
//! use simcore::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event { PacketArrives, TimerFires }
//!
//! let mut q = EventQueue::new();
//! q.schedule_in(SimDuration::from_micros(10), Event::PacketArrives);
//! q.schedule_in(SimDuration::from_micros(5), Event::TimerFires);
//!
//! let (t, e) = q.pop().expect("event pending");
//! assert_eq!(e, Event::TimerFires);
//! assert_eq!(t, SimTime::from_micros(5));
//! ```

pub mod chaos;
pub mod event;
pub mod fxhash;
pub mod journal;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use chaos::{ChaosConfig, ChaosEngine, ChaosProfile, FaultPlan, InvariantChecker};
pub use event::{EventQueue, EventToken};
pub use journal::{CauseId, FaultJournal, JournalId, JournalRecorder, JournalWatchdog, Phase};
pub use rng::SimRng;
pub use shard::{run_epochs, run_isolated, EpochPool, EpochReport, IsolationSpec, Outbox, ShardLp};
pub use stats::{Counters, DurationHistogram, OnlineStats, ThroughputMeter, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use trace::{ArgValue, MetricsRegistry, SpanId, TraceRecord, TraceRecorder};
pub use units::{Bandwidth, ByteSize};
