//! # journal — causal fault-lifecycle observability
//!
//! The trace ring ([`crate::trace`]) records flat spans per subsystem;
//! nothing connects the packet that *caused* a network page fault to
//! the arbiter wait, page-table walk, backing-store fetch, and replay
//! that *resolved* it. This module adds that causal layer:
//!
//! * a copy-cheap [`CauseId`] (tenant + packet provenance) threaded
//!   from packet arrival through the NIC, NPF engine, IOMMU, and
//!   memory manager;
//! * a per-fault [`FaultJournal`] of typed [`Phase`] slices whose
//!   durations **sum exactly** to the fault's end-to-end latency
//!   (Figure 3's (i)–(v) decomposition, plus queue/arbiter/chaos
//!   phases), and a stream of [`Mark`] annotations (IOTLB fills,
//!   backing fetches, replay drains) keyed by cause;
//! * deterministic **critical-path extraction** (the longest blocking
//!   chain of a fault, phase-attributed) and a per-tenant, per-phase
//!   **tail attribution report** for the p50/p99/p999 faults;
//! * Chrome-trace *flow events* (`ph: "s"/"t"/"f"`) so Perfetto draws
//!   causal arrows from packet arrival to fault resolution;
//! * an SLO watchdog ([`JournalWatchdog`]) that flags faults whose
//!   latency exceeds a sim-time budget, shipping the causal chain.
//!
//! Like the trace ring, the journal uses a thread-local recorder with
//! a dedicated enabled flag, so the disabled path is one `Cell` read.
//! Recorders merge with [`JournalRecorder::absorb`] in task order with
//! `(time, seq)` event rebasing — parallel runs stay byte-identical to
//! serial ones at every `--jobs` value.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;

use crate::fxhash::FxHashMap;
use crate::time::{SimDuration, SimTime};
use crate::trace::{self, ArgValue};

/// Provenance of a fault: which tenant's traffic and which packet (a
/// per-run monotonic sequence number) triggered it. `Copy` and two
/// words wide, so threading it through hot paths costs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CauseId {
    /// Tenant (IOchannel) index, [`CauseId::NO_TENANT`] when unknown.
    pub tenant: u32,
    /// Packet sequence number within the run, 0 when not packet-born.
    pub packet: u64,
}

impl CauseId {
    /// Sentinel tenant for causes with no tenant attribution
    /// (driver-internal faults, warmup traffic).
    pub const NO_TENANT: u32 = u32::MAX;

    /// A cause with no provenance at all.
    pub const UNKNOWN: CauseId = CauseId {
        tenant: Self::NO_TENANT,
        packet: 0,
    };

    /// A cause attributed to `tenant` only.
    #[must_use]
    pub const fn tenant(tenant: u32) -> Self {
        CauseId { tenant, packet: 0 }
    }
}

/// Identifier of one journalled fault, unique within a merged
/// recorder. Rebased on [`JournalRecorder::absorb`] exactly like trace
/// span ids, so ids are deterministic in task order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JournalId(pub u64);

/// One phase of a fault's lifecycle. The fifteen phases tile the
/// interval `[begun, resolved_at]` with no gaps or overlaps, so their
/// durations sum exactly to the end-to-end latency. The firmware NPF
/// backend uses the trigger/driver/translate/update/resume chain
/// (Figure 3's (i)–(v)); the software-emulation backend replaces the
/// hardware trigger and resume with validate/bounce/copy slices;
/// speculative pre-faults open with a `Prefetch` issue slice and
/// tier-migration fetches carve a `TierMigrate` slice out of the OS
/// share. Transport stalls (retransmission timeouts, PFC pauses) are
/// journalled as standalone single-slice records through
/// [`JournalRecorder::wait_event`], so they keep the tile-exactly
/// contract trivially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting for a per-channel fault slot (outstanding-limit queue).
    QueueWait,
    /// Waiting for the cross-channel arbiter to grant a global slot.
    ArbWait,
    /// Driver-level DMA address validation before posting (software
    /// emulation only — the NP-RDMA-style pre-post check).
    Validate,
    /// Waiting for a bounce buffer from the bounded pool (software
    /// emulation backpressure).
    BounceWait,
    /// Driver-side issue of a speculative pre-fault (stride prefetch;
    /// no NIC interrupt, no firmware resume).
    Prefetch,
    /// Hardware fault trigger + interrupt delivery (Fig. 3 phase i).
    Trigger,
    /// IOprovider driver software, minus the OS part (phase ii).
    DriverSw,
    /// OS page-in: page-table walk, backing-store fetch, invalidation
    /// (phases iii–iv's OS share).
    OsTranslate,
    /// Fetching the page from the slow memory tier (NVM) instead of
    /// swap — tiered backing store migration time.
    TierMigrate,
    /// Updating the device page tables / IOTLB (phase iv's HW share).
    PtUpdate,
    /// Resuming the stalled DMA (phase v).
    Resume,
    /// Copying bounced data out to the now-resident target pages
    /// (software emulation only).
    CopyOut,
    /// Time a QP spent stalled on a loss-driven retransmission timeout
    /// (selective-repeat or go-back-N); recorded as a standalone
    /// single-slice journal record, not part of an NPF chain.
    RetransmitWait,
    /// Time a link spent paused by PFC back-pressure (802.3x-style
    /// pause frames); also a standalone single-slice record.
    PauseWait,
    /// Chaos-injected perturbation (delays, transient retries).
    ChaosExtra,
}

impl Phase {
    /// Every phase, in lifecycle order. Attribution tables iterate
    /// this, so column order is fixed.
    pub const ALL: [Phase; 15] = [
        Phase::QueueWait,
        Phase::ArbWait,
        Phase::Validate,
        Phase::BounceWait,
        Phase::Prefetch,
        Phase::Trigger,
        Phase::DriverSw,
        Phase::OsTranslate,
        Phase::TierMigrate,
        Phase::PtUpdate,
        Phase::Resume,
        Phase::CopyOut,
        Phase::RetransmitWait,
        Phase::PauseWait,
        Phase::ChaosExtra,
    ];

    /// Stable short name (column header / event name).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::ArbWait => "arb_wait",
            Phase::Validate => "validate",
            Phase::BounceWait => "bounce_wait",
            Phase::Prefetch => "prefetch",
            Phase::Trigger => "trigger",
            Phase::DriverSw => "driver_sw",
            Phase::OsTranslate => "os_translate",
            Phase::TierMigrate => "tier_migrate",
            Phase::PtUpdate => "pt_update",
            Phase::Resume => "resume",
            Phase::CopyOut => "copy_out",
            Phase::RetransmitWait => "retransmit_wait",
            Phase::PauseWait => "pause_wait",
            Phase::ChaosExtra => "chaos_extra",
        }
    }
}

/// One contiguous slice of a fault's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSlice {
    /// Which phase this slice belongs to.
    pub phase: Phase,
    /// When the phase began.
    pub start: SimTime,
    /// How long it lasted (zero-duration slices are kept: the table
    /// still shows the column, the critical path skips them).
    pub duration: SimDuration,
}

/// Kinds of causal annotations emitted by the subsystems a fault
/// flows through. Marks attach to a [`CauseId`], not a fault id, so
/// producers (NIC rx, IOMMU, memory manager) need no fault handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MarkKind {
    /// A packet arrived from the fabric (netsim delivery).
    PacketArrival,
    /// The NIC steered a faulting packet to the backup ring.
    RxBackupDivert,
    /// The NIC dropped a faulting packet (drop mode / overflow).
    RxDrop,
    /// An IOMMU page-table walk ran (detail = levels touched).
    IommuWalk,
    /// An IOTLB entry was filled (detail = vpn).
    IotlbFill,
    /// The memory manager fetched a page from the backing store
    /// (detail = vpn).
    BackingFetch,
    /// The memory manager evicted a page (detail = vpn).
    Eviction,
    /// The backup-ring driver merged a parked packet back (replay
    /// drain; detail = packet length).
    ReplayDrain,
    /// 512 resident 4 KiB siblings were folded into a 2 MiB leaf
    /// (detail = chunk base vpn).
    HugePromote,
    /// A 2 MiB leaf was split back into 4 KiB PTEs (detail = chunk
    /// base vpn).
    HugeDemote,
    /// A page migrated between memory tiers (detail = vpn).
    TierMigrate,
}

impl MarkKind {
    /// Stable short name (event name in exports).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MarkKind::PacketArrival => "packet_arrival",
            MarkKind::RxBackupDivert => "rx_backup_divert",
            MarkKind::RxDrop => "rx_drop",
            MarkKind::IommuWalk => "iommu_walk",
            MarkKind::IotlbFill => "iotlb_fill",
            MarkKind::BackingFetch => "backing_fetch",
            MarkKind::Eviction => "eviction",
            MarkKind::ReplayDrain => "replay_drain",
            MarkKind::HugePromote => "huge_promote",
            MarkKind::HugeDemote => "huge_demote",
            MarkKind::TierMigrate => "tier_migrate",
        }
    }
}

/// One causal annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    /// When it happened.
    pub time: SimTime,
    /// Global event sequence (rebased on merge; total order with
    /// `time` as the primary key).
    pub seq: u64,
    /// Whose traffic caused it.
    pub cause: CauseId,
    /// What happened.
    pub kind: MarkKind,
    /// Kind-specific detail (levels, vpn, bytes).
    pub detail: u64,
}

/// The journal of one fault, from admit to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultJournal {
    /// Merged-recorder-unique id.
    pub id: JournalId,
    /// Provenance.
    pub cause: CauseId,
    /// IOMMU domain the fault occurred in.
    pub domain: u64,
    /// Pages the fault covers.
    pub pages: u64,
    /// Whether a backing-store fetch was required (major fault).
    pub major: bool,
    /// Event sequence at admit (total order across the journal).
    pub seq: u64,
    /// When the fault was admitted (`begin_fault`'s `now`).
    pub begun: SimTime,
    /// When the resolution completes.
    pub ready_at: SimTime,
    /// `true` once `complete_fault` closed the chain.
    pub resolved: bool,
    /// Lifecycle slices, in time order, tiling `[begun, ready_at]`.
    pub phases: Vec<PhaseSlice>,
}

impl FaultJournal {
    /// End-to-end latency (admit to resolution).
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.ready_at.saturating_since(self.begun)
    }

    /// Sum of all phase durations. Equal to [`FaultJournal::latency`]
    /// by construction; [`JournalRecorder::unbalanced_faults`] checks.
    #[must_use]
    pub fn phase_sum(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// Duration attributed to `phase` (zero when absent).
    #[must_use]
    pub fn phase_total(&self, phase: Phase) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| p.phase == phase)
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// The fault's critical path: its non-empty slices in time order.
    /// Phases are strictly sequential per fault (the NPF pipeline
    /// never overlaps them), so the longest blocking chain is the
    /// chain of all blocking slices.
    #[must_use]
    pub fn critical_path(&self) -> Vec<PhaseSlice> {
        self.phases
            .iter()
            .copied()
            .filter(|p| p.duration > SimDuration::ZERO)
            .collect()
    }

    /// The phase that dominates the critical path (earliest wins
    /// ties, so the answer is deterministic).
    #[must_use]
    pub fn dominant_phase(&self) -> Phase {
        let mut best = Phase::QueueWait;
        let mut best_d = SimDuration::ZERO;
        for p in &self.phases {
            if p.duration > best_d {
                best = p.phase;
                best_d = p.duration;
            }
        }
        best
    }
}

/// SLO watchdog configuration: any fault whose end-to-end latency
/// exceeds `budget` is recorded as a [`SloHit`] (and, when the trace
/// ring is recording, emitted as a structured instant event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalWatchdog {
    /// Maximum tolerated fault latency.
    pub budget: SimDuration,
}

/// One watchdog violation, with enough context to print the causal
/// chain without the full journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloHit {
    /// The offending fault.
    pub fault: JournalId,
    /// Its provenance.
    pub cause: CauseId,
    /// Its domain.
    pub domain: u64,
    /// Its end-to-end latency.
    pub latency: SimDuration,
    /// The budget it broke.
    pub budget: SimDuration,
}

/// The thread-local journal recorder. Mirrors
/// [`crate::trace::TraceRecorder`]: install one per worker, drive the
/// simulation, uninstall, and [`JournalRecorder::absorb`] into the
/// main recorder in task order.
#[derive(Debug)]
pub struct JournalRecorder {
    faults: Vec<FaultJournal>,
    marks: Vec<Mark>,
    /// Open (admitted, unresolved) faults: caller key → index.
    open: FxHashMap<u64, usize>,
    next_id: u64,
    seq: u64,
    clock: SimTime,
    cause: CauseId,
    watchdog: Option<JournalWatchdog>,
    slo_hits: Vec<SloHit>,
}

impl Default for JournalRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl JournalRecorder {
    /// Creates an empty recorder with no watchdog.
    #[must_use]
    pub fn new() -> Self {
        JournalRecorder {
            faults: Vec::new(),
            marks: Vec::new(),
            open: FxHashMap::default(),
            next_id: 0,
            seq: 0,
            clock: SimTime::ZERO,
            cause: CauseId::UNKNOWN,
            watchdog: None,
            slo_hits: Vec::new(),
        }
    }

    /// Arms the SLO watchdog.
    pub fn set_watchdog(&mut self, watchdog: JournalWatchdog) {
        self.watchdog = Some(watchdog);
    }

    /// The armed SLO watchdog, if any (shard workers copy it onto
    /// their per-LP recorders).
    #[must_use]
    pub fn watchdog(&self) -> Option<JournalWatchdog> {
        self.watchdog
    }

    /// Advances the recorder's notion of now (monotone, like the trace
    /// clock).
    pub fn set_clock(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
    }

    /// Sets the current cause context; subsequent faults and marks
    /// inherit it.
    pub fn set_cause(&mut self, cause: CauseId) {
        self.cause = cause;
    }

    /// Clears the cause context back to [`CauseId::UNKNOWN`].
    pub fn clear_cause(&mut self) {
        self.cause = CauseId::UNKNOWN;
    }

    /// The current cause context.
    #[must_use]
    pub fn cause(&self) -> CauseId {
        self.cause
    }

    /// All journalled faults, in admit order.
    #[must_use]
    pub fn faults(&self) -> &[FaultJournal] {
        &self.faults
    }

    /// All marks, in emit order.
    #[must_use]
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Watchdog violations, in resolve order.
    #[must_use]
    pub fn slo_hits(&self) -> &[SloHit] {
        &self.slo_hits
    }

    /// Admitted faults whose chain was never closed by
    /// [`JournalRecorder::fault_resolved`] — the chaos-sweep
    /// completeness invariant requires zero after quiescence.
    #[must_use]
    pub fn incomplete_faults(&self) -> usize {
        self.faults.iter().filter(|f| !f.resolved).count()
    }

    /// Faults whose phase durations do not sum to their end-to-end
    /// latency. Always zero unless an instrumentation site is buggy.
    #[must_use]
    pub fn unbalanced_faults(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.phase_sum() != f.latency())
            .count()
    }

    /// Opens a fault journal under the caller-chosen `key` (unique
    /// among this recorder's open faults; the NPF engine uses its
    /// namespaced fault id). The current cause context is captured.
    pub fn fault_begun(
        &mut self,
        key: u64,
        domain: u64,
        pages: u64,
        major: bool,
        begun: SimTime,
        ready_at: SimTime,
    ) -> JournalId {
        let id = JournalId(self.next_id);
        self.next_id += 1;
        let seq = self.seq;
        self.seq += 1;
        self.open.insert(key, self.faults.len());
        self.faults.push(FaultJournal {
            id,
            cause: self.cause,
            domain,
            pages,
            major,
            seq,
            begun,
            ready_at,
            resolved: false,
            phases: Vec::with_capacity(Phase::ALL.len()),
        });
        id
    }

    /// Appends one lifecycle slice to the open fault `key`. No-op for
    /// unknown keys (the fault may predate the recorder's install).
    pub fn phase(&mut self, key: u64, phase: Phase, start: SimTime, duration: SimDuration) {
        if let Some(&idx) = self.open.get(&key) {
            self.faults[idx].phases.push(PhaseSlice {
                phase,
                start,
                duration,
            });
        }
    }

    /// Closes the fault chain opened under `key`, running the
    /// watchdog. No-op for unknown keys.
    pub fn fault_resolved(&mut self, key: u64) {
        let Some(idx) = self.open.remove(&key) else {
            return;
        };
        let f = &mut self.faults[idx];
        f.resolved = true;
        let (id, cause, domain, latency, ready_at) =
            (f.id, f.cause, f.domain, f.latency(), f.ready_at);
        if let Some(w) = self.watchdog {
            if latency > w.budget {
                self.slo_hits.push(SloHit {
                    fault: id,
                    cause,
                    domain,
                    latency,
                    budget: w.budget,
                });
                if trace::enabled() {
                    trace::instant(
                        ready_at,
                        "journal",
                        "slo_violation",
                        vec![
                            ("fault", ArgValue::U64(id.0)),
                            ("tenant", ArgValue::U64(u64::from(cause.tenant))),
                            ("latency_ns", ArgValue::U64(latency.as_nanos())),
                            ("budget_ns", ArgValue::U64(w.budget.as_nanos())),
                        ],
                    );
                }
            }
        }
    }

    /// Records a standalone transport stall — a retransmission timeout
    /// or a PFC pause — as a born-resolved journal record with a single
    /// phase slice spanning exactly `[start, end]`. The slice tiles its
    /// own interval, so the tile-exactly invariant holds trivially and
    /// the stall shows up in phase totals and the attribution table
    /// without joining any NPF chain. Zero-length stalls are dropped.
    /// The watchdog does not apply: stalls are not faults with an SLO.
    pub fn wait_event(&mut self, phase: Phase, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let id = JournalId(self.next_id);
        self.next_id += 1;
        let seq = self.seq;
        self.seq += 1;
        self.faults.push(FaultJournal {
            id,
            cause: self.cause,
            domain: 0,
            pages: 0,
            major: false,
            seq,
            begun: start,
            ready_at: end,
            resolved: true,
            phases: vec![PhaseSlice {
                phase,
                start,
                duration: end.saturating_since(start),
            }],
        });
    }

    /// Emits a causal annotation at `time` under the current cause.
    pub fn mark_at(&mut self, time: SimTime, kind: MarkKind, detail: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.marks.push(Mark {
            time,
            seq,
            cause: self.cause,
            kind,
            detail,
        });
    }

    /// Emits a causal annotation at the recorder clock.
    pub fn mark(&mut self, kind: MarkKind, detail: u64) {
        self.mark_at(self.clock, kind, detail);
    }

    /// Merges `other` (a completed task's recorder) into `self`,
    /// rebasing journal ids and event sequence numbers — the same
    /// contract as [`crate::trace::TraceRecorder::absorb`]: merging in
    /// task order yields byte-identical journals at every `--jobs`
    /// value.
    pub fn absorb(&mut self, other: &JournalRecorder) {
        let id_base = self.next_id;
        let seq_base = self.seq;
        for f in &other.faults {
            let mut f = f.clone();
            f.id = JournalId(id_base + f.id.0);
            f.seq += seq_base;
            self.faults.push(f);
        }
        for m in &other.marks {
            let mut m = *m;
            m.seq += seq_base;
            self.marks.push(m);
        }
        for h in &other.slo_hits {
            let mut h = *h;
            h.fault = JournalId(id_base + h.fault.0);
            self.slo_hits.push(h);
        }
        self.next_id = id_base + other.next_id;
        self.seq = seq_base + other.seq;
        self.set_clock(other.clock);
        if self.watchdog.is_none() {
            self.watchdog = other.watchdog;
        }
    }

    /// Renders the journal as Chrome trace-event JSON: one `X` span
    /// per non-empty phase slice (track = the fault's tenant), flow
    /// events (`s`/`t`/`f`) tying each fault's packet provenance,
    /// admit, and resolution together, and `i` instants for marks.
    /// Events are ordered by `(time, seq)`, then fault id — fully
    /// deterministic.
    #[must_use]
    pub fn export_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, line: String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };
        // Process metadata so Perfetto names the track.
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"journal\"}}"
                .to_string(),
        );
        let mut faults: Vec<&FaultJournal> = self.faults.iter().collect();
        faults.sort_by_key(|f| (f.begun, f.seq));
        for f in &faults {
            let tid = tenant_tid(f.cause.tenant);
            // Flow start at admit...
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"s\",\"pid\":2,\"tid\":{tid},\"cat\":\"fault\",\
                     \"name\":\"fault\",\"id\":{},\"ts\":{}}}",
                    f.id.0,
                    fmt_us(f.begun.as_nanos())
                ),
            );
            for p in &f.phases {
                if p.duration == SimDuration::ZERO {
                    continue;
                }
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":2,\"tid\":{tid},\"cat\":\"fault\",\
                         \"name\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{\"fault\":{},\
                         \"tenant\":{},\"packet\":{},\"domain\":{}}}}}",
                        p.phase.name(),
                        fmt_us(p.start.as_nanos()),
                        fmt_us(p.duration.as_nanos()),
                        f.id.0,
                        i64::from(f.cause.tenant as i32),
                        f.cause.packet,
                        f.domain
                    ),
                );
            }
            // ...flow finish at resolution.
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":2,\"tid\":{tid},\
                     \"cat\":\"fault\",\"name\":\"fault\",\"id\":{},\"ts\":{}}}",
                    f.id.0,
                    fmt_us(f.ready_at.as_nanos())
                ),
            );
        }
        let mut marks: Vec<&Mark> = self.marks.iter().collect();
        marks.sort_by_key(|m| (m.time, m.seq));
        for m in &marks {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"i\",\"pid\":2,\"tid\":{},\"s\":\"t\",\"cat\":\"cause\",\
                     \"name\":\"{}\",\"ts\":{},\"args\":{{\"packet\":{},\"detail\":{}}}}}",
                    tenant_tid(m.cause.tenant),
                    m.kind.name(),
                    fmt_us(m.time.as_nanos()),
                    m.cause.packet,
                    m.detail
                ),
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// The per-tenant, per-phase tail attribution table, plus the
    /// aggregate phase totals, the exact-sum self-check, and watchdog
    /// hits — one deterministic string, byte-stable across `--jobs`.
    ///
    /// For each tenant (ascending; unattributed faults last under
    /// tenant `-`), the table shows the p50, p99, and p999 faults by
    /// end-to-end latency (nearest-rank over that tenant's faults),
    /// with every phase in nanoseconds, the total, and the dominant
    /// critical-path phase.
    #[must_use]
    pub fn attribution_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "journal: {} faults ({} incomplete, {} unbalanced), {} marks, {} slo hits",
            self.faults.len(),
            self.incomplete_faults(),
            self.unbalanced_faults(),
            self.marks.len(),
            self.slo_hits.len()
        );
        // Aggregate phase totals.
        let mut totals = [SimDuration::ZERO; Phase::ALL.len()];
        for f in &self.faults {
            for (slot, phase) in totals.iter_mut().zip(Phase::ALL) {
                *slot += f.phase_total(phase);
            }
        }
        out.push_str("phase totals [ns]:");
        for (slot, phase) in totals.iter().zip(Phase::ALL) {
            let _ = write!(out, " {}={}", phase.name(), slot.as_nanos());
        }
        out.push('\n');
        // Per-tenant percentile rows.
        let mut by_tenant: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for (i, f) in self.faults.iter().enumerate() {
            by_tenant.entry(f.cause.tenant).or_default().push(i);
        }
        let mut tenants: Vec<u32> = by_tenant.keys().copied().collect();
        tenants.sort_unstable();
        let _ = writeln!(
            out,
            "{:>7} {:>5} {:>6} {:>10} {:>10} {:>10} {:>11} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}  dominant",
            "tenant",
            "pct",
            "fault",
            "queue",
            "arb",
            "validate",
            "bounce_wait",
            "prefetch",
            "trigger",
            "driver",
            "os_translate",
            "tier_migrate",
            "pt_upd",
            "resume",
            "copy_out",
            "retrans_wait",
            "pause_wait",
            "chaos",
            "total_ns"
        );
        for tenant in tenants {
            let mut idxs = by_tenant.remove(&tenant).expect("key present");
            // Sort by (latency, id): deterministic pick under ties.
            idxs.sort_by_key(|&i| (self.faults[i].latency(), self.faults[i].id));
            let n = idxs.len();
            for (label, q) in [("p50", 0.50_f64), ("p99", 0.99), ("p999", 0.999)] {
                #[allow(clippy::cast_sign_loss, clippy::cast_precision_loss)]
                let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
                let f = &self.faults[idxs[rank.min(n - 1)]];
                let tenant_label = if tenant == CauseId::NO_TENANT {
                    "-".to_string()
                } else {
                    tenant.to_string()
                };
                let _ = writeln!(
                    out,
                    "{:>7} {:>5} {:>6} {:>10} {:>10} {:>10} {:>11} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}  {}",
                    tenant_label,
                    label,
                    f.id.0,
                    f.phase_total(Phase::QueueWait).as_nanos(),
                    f.phase_total(Phase::ArbWait).as_nanos(),
                    f.phase_total(Phase::Validate).as_nanos(),
                    f.phase_total(Phase::BounceWait).as_nanos(),
                    f.phase_total(Phase::Prefetch).as_nanos(),
                    f.phase_total(Phase::Trigger).as_nanos(),
                    f.phase_total(Phase::DriverSw).as_nanos(),
                    f.phase_total(Phase::OsTranslate).as_nanos(),
                    f.phase_total(Phase::TierMigrate).as_nanos(),
                    f.phase_total(Phase::PtUpdate).as_nanos(),
                    f.phase_total(Phase::Resume).as_nanos(),
                    f.phase_total(Phase::CopyOut).as_nanos(),
                    f.phase_total(Phase::RetransmitWait).as_nanos(),
                    f.phase_total(Phase::PauseWait).as_nanos(),
                    f.phase_total(Phase::ChaosExtra).as_nanos(),
                    f.latency().as_nanos(),
                    f.dominant_phase().name()
                );
            }
        }
        out
    }

    /// Watchdog hits rendered one per line with their causal chain —
    /// the payload the chaos invariant dump ships.
    #[must_use]
    pub fn slo_report(&self) -> String {
        let mut out = String::new();
        for h in &self.slo_hits {
            let tenant = if h.cause.tenant == CauseId::NO_TENANT {
                "-".to_string()
            } else {
                h.cause.tenant.to_string()
            };
            let chain = self
                .faults
                .iter()
                .find(|f| f.id == h.fault)
                .map(|f| {
                    f.critical_path()
                        .iter()
                        .map(|p| format!("{}={}", p.phase.name(), p.duration.as_nanos()))
                        .collect::<Vec<_>>()
                        .join(" -> ")
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "slo violation: fault {} tenant {tenant} packet {} domain {} \
                 latency {}ns budget {}ns chain: {chain}",
                h.fault.0,
                h.cause.packet,
                h.domain,
                h.latency.as_nanos(),
                h.budget.as_nanos()
            );
        }
        out
    }
}

/// Chrome-trace thread id for a tenant: tenant index + 1 (tid 0 is
/// the metadata row); unattributed causes share the last tid.
fn tenant_tid(tenant: u32) -> u64 {
    if tenant == CauseId::NO_TENANT {
        u64::from(u32::MAX)
    } else {
        u64::from(tenant) + 1
    }
}

/// Nanoseconds to Chrome's fractional microseconds, no float rounding.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<JournalRecorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as the thread's journal, returning the old one.
pub fn install(recorder: JournalRecorder) -> Option<JournalRecorder> {
    ENABLED.with(|e| e.set(true));
    RECORDER.with(|r| r.borrow_mut().replace(recorder))
}

/// Removes and returns the thread's journal.
pub fn uninstall() -> Option<JournalRecorder> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// `true` when a journal recorder is installed on this thread. The
/// disabled path of every instrumentation site is this single read.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Runs `f` against the installed recorder, if any.
pub fn with<F: FnOnce(&mut JournalRecorder)>(f: F) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Advances the journal clock (testbed dispatch loop).
#[inline]
pub fn set_clock(now: SimTime) {
    if enabled() {
        with(|j| j.set_clock(now));
    }
}

/// Sets the cause context for subsequent faults and marks.
#[inline]
pub fn set_cause(cause: CauseId) {
    if enabled() {
        with(|j| j.set_cause(cause));
    }
}

/// Clears the cause context.
#[inline]
pub fn clear_cause() {
    if enabled() {
        with(|j| j.clear_cause());
    }
}

/// Emits a causal annotation at the journal clock.
#[inline]
pub fn mark(kind: MarkKind, detail: u64) {
    if enabled() {
        with(|j| j.mark(kind, detail));
    }
}

/// Records a standalone transport stall (retransmission timeout or PFC
/// pause) spanning `[start, end]` on the installed recorder, if any.
#[inline]
pub fn wait_event(phase: Phase, start: SimTime, end: SimTime) {
    if enabled() {
        with(|j| j.wait_event(phase, start, end));
    }
}

/// Emits a causal annotation at `time`.
#[inline]
pub fn mark_at(time: SimTime, kind: MarkKind, detail: u64) {
    if enabled() {
        with(|j| j.mark_at(time, kind, detail));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_fault(
        j: &mut JournalRecorder,
        key: u64,
        tenant: u32,
        begun_ns: u64,
        phase_ns: [u64; 15],
    ) {
        j.set_cause(CauseId::tenant(tenant));
        let begun = SimTime::from_nanos(begun_ns);
        let total: u64 = phase_ns.iter().sum();
        let ready = begun + SimDuration::from_nanos(total);
        j.fault_begun(key, u64::from(tenant), 1, true, begun, ready);
        let mut t = begun;
        for (phase, ns) in Phase::ALL.into_iter().zip(phase_ns) {
            let d = SimDuration::from_nanos(ns);
            j.phase(key, phase, t, d);
            t += d;
        }
        j.fault_resolved(key);
    }

    #[test]
    fn phase_sums_equal_latency_exactly() {
        let mut j = JournalRecorder::new();
        record_fault(
            &mut j,
            1,
            0,
            100,
            [5, 0, 0, 0, 0, 100, 10, 250, 0, 20, 90, 0, 0, 0, 0],
        );
        record_fault(
            &mut j,
            2,
            1,
            900,
            [0, 40, 0, 0, 0, 100, 10, 0, 0, 20, 90, 0, 0, 0, 7],
        );
        assert_eq!(j.unbalanced_faults(), 0);
        assert_eq!(j.incomplete_faults(), 0);
        let f = &j.faults()[0];
        assert_eq!(f.latency(), SimDuration::from_nanos(475));
        assert_eq!(f.phase_sum(), f.latency());
        assert_eq!(f.dominant_phase(), Phase::OsTranslate);
    }

    #[test]
    fn critical_path_drops_empty_slices_keeps_order() {
        let mut j = JournalRecorder::new();
        record_fault(
            &mut j,
            1,
            0,
            0,
            [5, 0, 0, 0, 0, 100, 10, 250, 0, 20, 90, 0, 0, 0, 0],
        );
        let path = j.faults()[0].critical_path();
        let names: Vec<&str> = path.iter().map(|p| p.phase.name()).collect();
        assert_eq!(
            names,
            vec![
                "queue_wait",
                "trigger",
                "driver_sw",
                "os_translate",
                "pt_update",
                "resume"
            ]
        );
        // Slices tile without gaps.
        for w in path.windows(2) {
            assert_eq!(w[0].start + w[0].duration, w[1].start);
        }
    }

    #[test]
    fn absorb_rebases_ids_and_seq_in_task_order() {
        let mut a = JournalRecorder::new();
        record_fault(&mut a, 1, 0, 0, [1, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        a.mark_at(SimTime::from_nanos(1), MarkKind::IotlbFill, 7);
        let mut b = JournalRecorder::new();
        record_fault(&mut b, 1, 1, 50, [0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        b.mark_at(SimTime::from_nanos(51), MarkKind::BackingFetch, 9);

        let mut merged = JournalRecorder::new();
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(merged.faults().len(), 2);
        assert_eq!(merged.faults()[0].id, JournalId(0));
        assert_eq!(merged.faults()[1].id, JournalId(1));
        assert!(merged.faults()[0].seq < merged.faults()[1].seq);
        assert_eq!(merged.marks().len(), 2);
        assert!(merged.marks()[0].seq < merged.marks()[1].seq);
        // Same tasks, same order => byte-identical renderings.
        let mut merged2 = JournalRecorder::new();
        merged2.absorb(&a);
        merged2.absorb(&b);
        assert_eq!(merged.attribution_report(), merged2.attribution_report());
        assert_eq!(merged.export_chrome_json(), merged2.export_chrome_json());
    }

    #[test]
    fn watchdog_flags_over_budget_faults_with_chain() {
        let mut j = JournalRecorder::new();
        j.set_watchdog(JournalWatchdog {
            budget: SimDuration::from_nanos(100),
        });
        record_fault(&mut j, 1, 3, 0, [0, 0, 0, 0, 0, 50, 0, 0, 0, 0, 0, 0, 0, 0, 0]); // under
        record_fault(&mut j, 2, 4, 0, [0, 200, 0, 0, 0, 50, 0, 0, 0, 0, 0, 0, 0, 0, 0]); // over
        assert_eq!(j.slo_hits().len(), 1);
        let hit = j.slo_hits()[0];
        assert_eq!(hit.cause.tenant, 4);
        assert_eq!(hit.latency, SimDuration::from_nanos(250));
        let report = j.slo_report();
        assert!(report.contains("tenant 4"), "{report}");
        assert!(report.contains("arb_wait=200 -> trigger=50"), "{report}");
    }

    #[test]
    fn incomplete_fault_is_counted_until_resolved() {
        let mut j = JournalRecorder::new();
        j.fault_begun(9, 0, 1, false, SimTime::ZERO, SimTime::from_nanos(10));
        assert_eq!(j.incomplete_faults(), 1);
        j.fault_resolved(9);
        assert_eq!(j.incomplete_faults(), 0);
        // Unknown keys are ignored.
        j.fault_resolved(1234);
        j.phase(1234, Phase::Trigger, SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(j.faults().len(), 1);
    }

    #[test]
    fn export_has_flow_and_phase_events() {
        let mut j = JournalRecorder::new();
        j.set_cause(CauseId {
            tenant: 2,
            packet: 77,
        });
        j.mark_at(SimTime::ZERO, MarkKind::PacketArrival, 1500);
        record_fault(
            &mut j,
            1,
            2,
            10,
            [0, 0, 0, 0, 0, 100, 10, 250, 0, 20, 90, 0, 0, 0, 0],
        );
        let json = j.export_chrome_json();
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"name\":\"os_translate\""), "{json}");
        assert!(json.contains("\"name\":\"packet_arrival\""), "{json}");
        assert!(
            !json.contains("\"name\":\"queue_wait\""),
            "zero-width phase skipped: {json}"
        );
    }

    #[test]
    fn install_roundtrip_and_disabled_path() {
        assert!(!enabled());
        mark(MarkKind::Eviction, 1); // no-op, no panic
        assert!(install(JournalRecorder::new()).is_none());
        assert!(enabled());
        set_cause(CauseId::tenant(5));
        mark_at(SimTime::from_nanos(3), MarkKind::Eviction, 42);
        let rec = uninstall().expect("installed");
        assert!(!enabled());
        assert_eq!(rec.marks().len(), 1);
        assert_eq!(rec.marks()[0].cause.tenant, 5);
    }

    #[test]
    fn attribution_report_groups_tenants_in_order() {
        let mut j = JournalRecorder::new();
        record_fault(&mut j, 1, 1, 0, [0, 0, 0, 0, 0, 100, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        record_fault(&mut j, 2, 0, 0, [0, 0, 0, 0, 0, 300, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        record_fault(&mut j, 3, 0, 0, [0, 0, 0, 0, 0, 200, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        let report = j.attribution_report();
        let t0 = report.find("\n      0 ").expect("tenant 0 row");
        let t1 = report.find("\n      1 ").expect("tenant 1 row");
        assert!(t0 < t1, "tenants ascend:\n{report}");
        assert!(report.contains("0 unbalanced"), "{report}");
        // p50 of tenant 0's two faults is the 200ns one; p99/p999 the
        // 300ns one.
        assert!(report.contains(" p50 "), "{report}");
        assert!(report.contains(" p999 "), "{report}");
    }

    #[test]
    fn prefetch_and_tier_phases_balance_and_report() {
        let mut j = JournalRecorder::new();
        // A speculative pre-fault: prefetch issue + driver/OS work, no
        // trigger/resume (driver-initiated, no NIC interrupt).
        record_fault(
            &mut j,
            1,
            0,
            0,
            [0, 0, 0, 0, 2000, 0, 10, 250, 0, 20, 0, 0, 0, 0, 0],
        );
        // A demand fault whose backing fetch hit the slow tier.
        record_fault(
            &mut j,
            2,
            0,
            0,
            [5, 0, 0, 0, 0, 100, 10, 50, 80000, 20, 90, 0, 0, 0, 0],
        );
        assert_eq!(j.unbalanced_faults(), 0);
        let spec = &j.faults()[0];
        assert_eq!(
            spec.phase_total(Phase::Prefetch),
            SimDuration::from_nanos(2000)
        );
        assert_eq!(spec.phase_total(Phase::Trigger), SimDuration::ZERO);
        let tiered = &j.faults()[1];
        assert_eq!(tiered.dominant_phase(), Phase::TierMigrate);
        let report = j.attribution_report();
        assert!(report.contains("prefetch"), "{report}");
        assert!(report.contains("tier_migrate"), "{report}");
        let json = j.export_chrome_json();
        assert!(json.contains("\"name\":\"prefetch\""), "{json}");
        assert!(json.contains("\"name\":\"tier_migrate\""), "{json}");
    }

    #[test]
    fn softemu_phases_balance_and_report() {
        let mut j = JournalRecorder::new();
        // A software-emulation chain: validate, bounce-pool wait,
        // driver + OS work, PT update, copy-out — no trigger/resume.
        record_fault(
            &mut j,
            1,
            0,
            0,
            [5, 0, 30, 120, 0, 0, 10, 250, 0, 20, 0, 80, 0, 0, 0],
        );
        assert_eq!(j.unbalanced_faults(), 0);
        let f = &j.faults()[0];
        assert_eq!(f.phase_total(Phase::Validate), SimDuration::from_nanos(30));
        assert_eq!(
            f.phase_total(Phase::BounceWait),
            SimDuration::from_nanos(120)
        );
        assert_eq!(f.phase_total(Phase::CopyOut), SimDuration::from_nanos(80));
        assert_eq!(f.phase_total(Phase::Trigger), SimDuration::ZERO);
        let names: Vec<&str> = f.critical_path().iter().map(|p| p.phase.name()).collect();
        assert_eq!(
            names,
            vec![
                "queue_wait",
                "validate",
                "bounce_wait",
                "driver_sw",
                "os_translate",
                "pt_update",
                "copy_out"
            ]
        );
        let report = j.attribution_report();
        assert!(report.contains("bounce_wait"), "{report}");
        assert!(report.contains("copy_out"), "{report}");
        let json = j.export_chrome_json();
        assert!(json.contains("\"name\":\"validate\""), "{json}");
        assert!(json.contains("\"name\":\"copy_out\""), "{json}");
    }

    #[test]
    fn wait_events_tile_exactly_and_report() {
        let mut j = JournalRecorder::new();
        j.set_cause(CauseId::tenant(3));
        j.wait_event(
            Phase::RetransmitWait,
            SimTime::from_nanos(100),
            SimTime::from_nanos(600),
        );
        j.wait_event(
            Phase::PauseWait,
            SimTime::from_nanos(700),
            SimTime::from_nanos(900),
        );
        // Zero-length stalls are dropped.
        j.wait_event(
            Phase::PauseWait,
            SimTime::from_nanos(900),
            SimTime::from_nanos(900),
        );
        assert_eq!(j.faults().len(), 2);
        assert_eq!(j.incomplete_faults(), 0);
        assert_eq!(j.unbalanced_faults(), 0);
        let retx = &j.faults()[0];
        assert_eq!(retx.latency(), SimDuration::from_nanos(500));
        assert_eq!(
            retx.phase_total(Phase::RetransmitWait),
            SimDuration::from_nanos(500)
        );
        assert_eq!(retx.dominant_phase(), Phase::RetransmitWait);
        assert_eq!(retx.cause.tenant, 3);
        let report = j.attribution_report();
        assert!(report.contains("retransmit_wait=500"), "{report}");
        assert!(report.contains("pause_wait=200"), "{report}");
        assert!(report.contains("retrans_wait"), "{report}");
        // Wait events never trip the SLO watchdog.
        let mut w = JournalRecorder::new();
        w.set_watchdog(JournalWatchdog {
            budget: SimDuration::from_nanos(10),
        });
        w.wait_event(Phase::RetransmitWait, SimTime::ZERO, SimTime::from_nanos(500));
        assert!(w.slo_hits().is_empty());
    }
}
