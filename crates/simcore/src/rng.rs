//! Seeded randomness for reproducible simulations.
//!
//! All stochastic behaviour in the simulator (jitter, workload key
//! selection, loss) draws from a [`SimRng`] so that a run is fully
//! determined by its seed.
//!
//! # Examples
//!
//! ```
//! use simcore::rng::SimRng;
//!
//! let mut a = SimRng::new(42);
//! let mut b = SimRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use crate::time::SimDuration;

/// The xoshiro256++ generator: fast, high-quality, and — crucially for
/// this workspace — self-contained, so simulation streams never shift
/// underneath us when an external crate changes its algorithm.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full state with SplitMix64, the
    /// seeding procedure recommended by the xoshiro authors.
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256pp {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random number generator for simulations.
///
/// Wraps an embedded xoshiro256++ with convenience samplers used across
/// the workloads: uniform ranges, Bernoulli trials, exponential
/// inter-arrival times, Zipf-like key popularity, and log-normal latency
/// jitter.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::from_seed(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; useful for giving each
    /// component its own stream so adding draws in one component does not
    /// perturb another.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> SimRng {
        let child = self
            .inner
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label);
        SimRng::new(child)
    }

    /// A uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniformly random value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's unbiased multiply-shift rejection method.
        let mut m = u128::from(self.inner.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.inner.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly random value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniformly random float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard [0, 1) construction.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// An exponentially distributed duration with the given mean; used for
    /// Poisson arrival processes.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u = 1.0 - self.unit(); // (0, 1]
        SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
    }

    /// A log-normally jittered duration around `base`: the result has
    /// median `base` and sigma controlling tail heaviness. Used to model
    /// the latency tails of Table 4.
    pub fn lognormal_jitter(&mut self, base: SimDuration, sigma: f64) -> SimDuration {
        // Box-Muller transform; two uniforms -> one standard normal.
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        SimDuration::from_secs_f64(base.as_secs_f64() * (sigma * z).exp())
    }

    /// Samples a key in `[0, n)` with approximately Zipfian popularity
    /// (exponent `s`), the classic skew of key-value workloads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf over empty domain");
        if n == 1 {
            return 0;
        }
        // Inverse-CDF approximation for the continuous analogue; exact
        // Zipf sampling is unnecessary for workload modelling.
        let u = self.unit().max(f64::MIN_POSITIVE);
        if (s - 1.0).abs() < 1e-9 {
            let hmax = (n as f64).ln();
            return ((u * hmax).exp() - 1.0).min((n - 1) as f64) as u64;
        }
        let e = 1.0 - s;
        let hmax = ((n as f64).powf(e) - 1.0) / e;
        let x = (1.0 + u * hmax * e).powf(1.0 / e) - 1.0;
        (x.min((n - 1) as f64)) as u64
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Drawing from the fork does not perturb the parent.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = SimRng::new(11);
        let mean = SimDuration::from_micros(100);
        let n = 20_000;
        let total: SimDuration = (0..n).map(|_| r.exponential(mean)).sum();
        let avg = total.as_secs_f64() / n as f64;
        assert!((avg - 1e-4).abs() < 5e-6, "sample mean {avg} too far");
    }

    #[test]
    fn lognormal_median_near_base() {
        let mut r = SimRng::new(13);
        let base = SimDuration::from_micros(220);
        let mut samples: Vec<u64> = (0..10_001)
            .map(|_| r.lognormal_jitter(base, 0.1).as_nanos())
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!((median / base.as_nanos() as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn zipf_skews_to_small_keys() {
        let mut r = SimRng::new(17);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if r.zipf(1000, 0.99) < 100 {
                low += 1;
            }
        }
        // With skew 0.99, the first 10% of keys receive well over half
        // of the draws.
        assert!(low > n / 2, "only {low}/{n} in the head");
        assert_eq!(r.zipf(1, 0.99), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }
}
