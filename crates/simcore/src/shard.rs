//! Conservative parallel simulation: domain-sharded logical processes
//! with deterministic epoch synchronization.
//!
//! The engine parallelizes a run at the granularity of **coupling
//! groups**: sets of domains that share zero-lookahead state (a host
//! memory pool, a fault arbiter, a backup ring, the link queues of a
//! testbed) and therefore must advance as one logical process (LP).
//! Only the fabric — links with a propagation delay of at least the
//! configured lookahead — is a legal shard boundary, because a message
//! sent at `t` cannot affect its destination before `t + lookahead`.
//!
//! Two execution shapes share this module:
//!
//! * [`run_isolated`] — LPs that exchange **no** messages (independent
//!   testbeds of one experiment, scalebench cells). Each runs to
//!   completion on a worker pool; instrumentation is installed per LP
//!   and absorbed in LP order, so output is byte-identical at any
//!   `--shards N` (and `N = 1` runs inline, reproducing the serial
//!   path exactly).
//! * [`run_epochs`] — LPs coupled through a latency-`lookahead` fabric.
//!   A conservative epoch loop: every epoch starts at the global
//!   minimum next-event time (`barrier`), each LP advances freely to
//!   `epoch_end = barrier + lookahead` processing only events with
//!   `time < epoch_end` (events exactly **on** the horizon wait for the
//!   next epoch), and cross-LP messages are exchanged at the barrier,
//!   delivered in `(time, src, seq)` order. Scheduling, worker count,
//!   and OS timing never reach the event order.
//!
//! # Determinism contract
//!
//! Both shapes install fresh thread-local instrumentation
//! ([`trace`]/[`journal`]/[`invariant`]) around each LP slice on
//! whichever worker runs it, and absorb the collected state into the
//! caller's installed instruments strictly in LP order after all
//! workers join — the same discipline `bench::par_runner` applies to
//! experiment points. Nothing about thread interleaving is observable.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use crate::chaos::{invariant, InvariantChecker};
use crate::journal::{self, JournalRecorder, JournalWatchdog};
use crate::time::{SimDuration, SimTime};
use crate::trace::{self, TraceRecorder};

/// What instrumentation each LP (or isolated task) runs under.
///
/// Mirrors the caller's own environment: a bench task running with
/// `--trace --chaos-seed 7` hands its shard pool the same spec so every
/// LP records into a private recorder/checker that is later absorbed.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsolationSpec {
    /// Give each LP a fresh [`TraceRecorder`] (absorbed in LP order).
    pub record: bool,
    /// Ring capacity for per-LP recorders.
    pub ring_capacity: usize,
    /// Give each LP a fresh [`InvariantChecker`] with this seed.
    pub chaos_seed: Option<u64>,
    /// Give each LP a fresh [`JournalRecorder`].
    pub journal: bool,
    /// Watchdog armed on each per-LP journal.
    pub watchdog: Option<JournalWatchdog>,
}

impl IsolationSpec {
    /// A spec that installs nothing (pure compute fan-out).
    #[must_use]
    pub fn none() -> Self {
        IsolationSpec::default()
    }
}

/// Instruments displaced by an [`Instruments::install`], restored by
/// the matching `uninstall`.
#[derive(Debug, Default)]
struct Swapped {
    recorder: Option<TraceRecorder>,
    checker: Option<InvariantChecker>,
    journal: Option<JournalRecorder>,
}

/// Per-LP instrumentation state, carried across epochs and absorbed at
/// the end of the run.
#[derive(Debug, Default)]
struct Instruments {
    recorder: Option<TraceRecorder>,
    checker: Option<InvariantChecker>,
    journal: Option<JournalRecorder>,
}

impl Instruments {
    fn fresh(spec: IsolationSpec) -> Self {
        Instruments {
            recorder: spec.record.then(|| TraceRecorder::new(spec.ring_capacity)),
            checker: spec.chaos_seed.map(InvariantChecker::new),
            journal: spec.journal.then(|| {
                let mut j = JournalRecorder::new();
                if let Some(w) = spec.watchdog {
                    j.set_watchdog(w);
                }
                j
            }),
        }
    }

    /// Installs this LP's instruments on the current thread, returning
    /// whatever was installed before (the caller's own instruments when
    /// running on the caller's thread; nothing on a fresh worker).
    fn install(&mut self) -> Swapped {
        Swapped {
            recorder: self.recorder.take().and_then(trace::install),
            checker: self.checker.take().and_then(invariant::install),
            journal: self.journal.take().and_then(journal::install),
        }
    }

    /// Takes the instruments back off the current thread and restores
    /// whatever [`Instruments::install`] displaced.
    fn uninstall(&mut self, spec: IsolationSpec, swapped: Swapped) {
        if spec.journal {
            self.journal = Some(journal::uninstall().expect("journal installed"));
        }
        if spec.chaos_seed.is_some() {
            self.checker = Some(invariant::uninstall().expect("checker installed"));
        }
        if spec.record {
            self.recorder = Some(trace::uninstall().expect("recorder installed"));
        }
        if let Some(r) = swapped.recorder {
            trace::install(r);
        }
        if let Some(c) = swapped.checker {
            invariant::install(c);
        }
        if let Some(j) = swapped.journal {
            journal::install(j);
        }
    }

    /// Folds this LP's collected state into the caller's installed
    /// instruments. Call in LP order from the coordinating thread.
    fn absorb_into_caller(self) {
        if let Some(rec) = self.recorder {
            trace::with(|mine| mine.absorb(rec));
        }
        if let Some(j) = self.journal {
            journal::with(|mine| mine.absorb(&j));
        }
        if let Some(c) = self.checker {
            invariant::with(|mine| mine.absorb(c));
        }
    }
}

/// Deterministic invariant-namespace base for task `i`: testbeds a
/// task constructs draw their note-key namespaces from here (via
/// [`invariant::with_namespace_base`]), so the salted ids violation
/// reports mention depend on the task index, never on which worker
/// constructed which testbed first.
fn ns_base(i: usize) -> u64 {
    (i as u64 + 1) << 20
}

/// A boxed isolated task, as [`run_isolated`] consumes them.
pub type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Hardware threads available to this process (1 when unknown).
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The worker count a pool actually uses for `requested` shards over
/// `tasks` work items on a host with `host` hardware threads.
///
/// Beyond the obvious clamp to `[1, tasks]`, a single-hardware-thread
/// host always runs inline: spawned workers would time-slice the one
/// core the caller's thread already owns, so the pool pays spawn,
/// mutex, and scheduling overhead to execute the exact same serial
/// order (output is byte-identical either way — the per-task
/// instrument isolation does not depend on worker count — so only
/// wall-clock changes). This is the `fig4a_shards4` fix: on 1-core CI
/// runners, `--shards 4` used to run slower than `--shards 1` for no
/// benefit.
#[must_use]
pub fn effective_shards(requested: usize, tasks: usize, host: usize) -> usize {
    if host <= 1 {
        return 1;
    }
    requested.clamp(1, tasks.max(1))
}

/// Runs independent closures on a pool of `shards` workers and returns
/// their results in task order.
///
/// The message-free fast path of the sharded engine: each task is one
/// coupling group (a whole testbed, a scalebench cell) with no
/// cross-group events, so no epoch synchronization is needed — only
/// deterministic instrumentation handling:
///
/// Every task runs under **fresh** instruments built from `spec` —
/// at every shard count, including 1 — and the collected state is
/// absorbed into the caller's installed instruments in task order
/// after all tasks finish (the discipline `bench::par_runner` applies
/// to experiment points). That construction, not luck, is what makes
/// `--shards N` byte-identical to `--shards 1`: per-task recorder
/// clocks, journal cause state, and checker timelines never leak
/// between tasks on any path.
///
/// `shards <= 1` executes the tasks sequentially on the caller's own
/// thread (no spawns); `shards > 1` fans them over scoped workers —
/// except on a single-hardware-thread host, where the pool always runs
/// inline (see [`effective_shards`]).
pub fn run_isolated<T: Send>(
    tasks: Vec<Task<'_, T>>,
    shards: usize,
    spec: IsolationSpec,
) -> Vec<T> {
    let n = tasks.len();
    let shards = effective_shards(shards, n, host_parallelism());
    if shards <= 1 {
        let mut results = Vec::with_capacity(n);
        let mut collected = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            let mut instruments = Instruments::fresh(spec);
            let swapped = instruments.install();
            results.push(invariant::with_namespace_base(ns_base(i), task));
            instruments.uninstall(spec, swapped);
            collected.push(instruments);
        }
        for instruments in collected {
            instruments.absorb_into_caller();
        }
        return results;
    }
    struct Done<T> {
        result: T,
        instruments: Instruments,
    }
    let inputs: Vec<Mutex<Option<Task<'_, T>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<Done<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let task = inputs[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("claimed exactly once");
        let mut instruments = Instruments::fresh(spec);
        let swapped = instruments.install();
        let result = invariant::with_namespace_base(ns_base(i), task);
        instruments.uninstall(spec, swapped);
        *outputs[i].lock().expect("result slot poisoned") = Some(Done {
            result,
            instruments,
        });
    };
    std::thread::scope(|s| {
        for _ in 0..shards {
            s.spawn(worker);
        }
    });
    let mut results = Vec::with_capacity(n);
    for slot in outputs {
        let done = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("worker loop fills every slot");
        done.instruments.absorb_into_caller();
        results.push(done.result);
    }
    results
}

/// A cross-shard message in flight: scheduled to arrive at `at` on LP
/// `dst`, stamped with its sender and a per-sender sequence number so
/// the global delivery order `(at, src, seq)` is total and independent
/// of worker scheduling.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Arrival time at the destination (≥ epoch end, by lookahead).
    pub at: SimTime,
    /// Sending LP index.
    pub src: usize,
    /// Per-sender sequence number (FIFO among same-instant sends).
    pub seq: u64,
    /// Destination LP index.
    pub dst: usize,
    /// Payload.
    pub msg: M,
}

/// Per-LP staging area for cross-shard messages produced during one
/// epoch. Exchanged and drained at the epoch barrier.
#[derive(Debug)]
pub struct Outbox<M> {
    src: usize,
    seq: u64,
    msgs: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    fn new(src: usize) -> Self {
        Outbox {
            src,
            seq: 0,
            msgs: Vec::new(),
        }
    }

    /// Sends `msg` to LP `dst`, arriving at absolute time `at`. The
    /// arrival must respect the fabric lookahead: `at` may not precede
    /// the end of the epoch in which the send happens (checked at the
    /// barrier).
    pub fn send(&mut self, dst: usize, at: SimTime, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.msgs.push(Envelope {
            at,
            src: self.src,
            seq,
            dst,
            msg,
        });
    }

    /// Messages staged so far this epoch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` when nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// One logical process of a sharded run: a coupling group advancing on
/// its own event queue, exchanging messages with other LPs only through
/// the latency-bounded fabric.
pub trait ShardLp: Send {
    /// Cross-shard message payload.
    type Msg: Send;

    /// Timestamp of the LP's next local event, if any.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Processes every local event with timestamp **strictly below**
    /// `horizon`, staging any cross-shard sends in `outbox`. An event
    /// exactly on the horizon must be left pending — it belongs to the
    /// next epoch (the epoch-edge rule the conformance tests pin down).
    fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<Self::Msg>);

    /// Accepts a message from another LP, scheduling it locally at
    /// `at`. The executor guarantees `at` is not in the LP's past.
    fn deliver(&mut self, at: SimTime, msg: Self::Msg);
}

/// Outcome of an epoch-synchronized run.
#[derive(Debug)]
pub struct EpochReport<L> {
    /// The LPs, in their original order, advanced to the horizon.
    pub lps: Vec<L>,
    /// Epochs executed.
    pub epochs: u64,
    /// Cross-shard messages exchanged.
    pub messages: u64,
}

/// Runs coupled LPs to `until` under conservative epoch synchronization
/// with fixed `lookahead` (the minimum fabric latency between any two
/// LPs), on `shards` workers.
///
/// Every epoch: `barrier = min(next_event_time)` over all LPs,
/// `epoch_end = min(barrier + lookahead, until)`; each LP advances to
/// `epoch_end` in parallel; staged messages are merged in
/// `(at, src, seq)` order and delivered. The loop ends when no LP has
/// an event before `until`. Events exactly at `until` stay pending.
///
/// # Panics
///
/// Panics when a staged message violates the lookahead contract
/// (arrival before the end of its sending epoch) — that means two LPs
/// actually share zero-lookahead state and belong in one coupling
/// group.
pub fn run_epochs<L: ShardLp>(
    lps: Vec<L>,
    lookahead: SimDuration,
    until: SimTime,
    shards: usize,
    spec: IsolationSpec,
) -> EpochReport<L> {
    assert!(
        lookahead > SimDuration::ZERO,
        "zero lookahead cannot shard: the LPs form one coupling group"
    );
    struct Cell<L: ShardLp> {
        lp: L,
        instruments: Instruments,
        outbox: Outbox<L::Msg>,
    }
    let n = lps.len();
    let shards = effective_shards(shards, n, host_parallelism());
    let cells: Vec<Mutex<Cell<L>>> = lps
        .into_iter()
        .enumerate()
        .map(|(i, lp)| {
            Mutex::new(Cell {
                lp,
                instruments: Instruments::fresh(spec),
                outbox: Outbox::new(i),
            })
        })
        .collect();

    let mut epochs = 0u64;
    let mut messages = 0u64;

    // One advance of every LP to `horizon`, fanned over the pool. The
    // claiming order is racy; the per-LP instruments travel with the
    // claim, so nothing observable depends on it.
    let advance_all = |horizon: SimTime| {
        let cursor = AtomicUsize::new(0);
        let worker = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            let mut cell = cells[i].lock().expect("cell poisoned");
            let swapped = cell.instruments.install();
            let Cell { lp, outbox, .. } = &mut *cell;
            lp.advance(horizon, outbox);
            cell.instruments.uninstall(spec, swapped);
        };
        if shards == 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..shards {
                    s.spawn(worker);
                }
            });
        }
    };

    loop {
        // Barrier: the global minimum next event. Serial and cheap —
        // one lock round over the LPs.
        let barrier = cells
            .iter()
            .filter_map(|c| c.lock().expect("cell poisoned").lp.next_event_time())
            .min();
        let Some(barrier) = barrier else { break };
        if barrier >= until {
            break;
        }
        let epoch_end = barrier.saturating_add(lookahead).min(until);
        advance_all(epoch_end);
        epochs += 1;

        // Exchange: merge every outbox, deliver in (at, src, seq) order.
        let mut exchange: Vec<Envelope<L::Msg>> = Vec::new();
        for cell in &cells {
            let mut cell = cell.lock().expect("cell poisoned");
            exchange.append(&mut cell.outbox.msgs);
        }
        if exchange.is_empty() {
            continue;
        }
        exchange.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
        messages += exchange.len() as u64;
        for env in exchange {
            assert!(
                env.at >= epoch_end,
                "lookahead violation: LP {} scheduled a message at {:?} before \
                 epoch end {:?} — these LPs share zero-lookahead state and must \
                 be one coupling group",
                env.src,
                env.at,
                epoch_end,
            );
            let mut cell = cells[env.dst].lock().expect("cell poisoned");
            let swapped = cell.instruments.install();
            cell.lp.deliver(env.at, env.msg);
            cell.instruments.uninstall(spec, swapped);
        }
    }

    // Absorb per-LP instruments into the caller's, strictly in LP order.
    let mut lps = Vec::with_capacity(n);
    for cell in cells {
        let cell = cell.into_inner().expect("cell poisoned");
        cell.instruments.absorb_into_caller();
        lps.push(cell.lp);
    }
    EpochReport {
        lps,
        epochs,
        messages,
    }
}

/// Microbench helper: merges pre-staged envelopes the way the epoch
/// barrier does, returning the delivery order. Exposed for
/// `enginebench`'s `shard_merge` sample and the determinism tests.
#[must_use]
pub fn merge_order<M>(mut envelopes: Vec<Envelope<M>>) -> Vec<Envelope<M>> {
    envelopes.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
    envelopes
}

// The Barrier/AtomicU64 imports back the persistent-pool variant of
// `run_epochs` used when epochs are small relative to thread spawn
// cost; see `EpochPool`.
/// A persistent worker pool for epoch loops with many tiny epochs:
/// workers are spawned once and coordinate through a [`Barrier`], so
/// per-epoch cost is a barrier round, not a thread spawn.
///
/// Semantics are identical to [`run_epochs`]; only the scheduling
/// differs, and scheduling is unobservable.
pub struct EpochPool {
    shards: usize,
}

impl EpochPool {
    /// A pool of `shards` workers (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        EpochPool {
            shards: shards.max(1),
        }
    }

    /// Runs the epoch loop on the persistent pool. See [`run_epochs`].
    pub fn run<L: ShardLp>(
        &self,
        lps: Vec<L>,
        lookahead: SimDuration,
        until: SimTime,
        spec: IsolationSpec,
    ) -> EpochReport<L> {
        let n = lps.len();
        let shards = effective_shards(self.shards, n, host_parallelism());
        if shards == 1 || n == 0 {
            return run_epochs(lps, lookahead, until, 1, spec);
        }
        assert!(
            lookahead > SimDuration::ZERO,
            "zero lookahead cannot shard: the LPs form one coupling group"
        );
        struct Cell<L: ShardLp> {
            lp: L,
            instruments: Instruments,
            outbox: Outbox<L::Msg>,
        }
        let cells: Vec<Mutex<Cell<L>>> = lps
            .into_iter()
            .enumerate()
            .map(|(i, lp)| {
                Mutex::new(Cell {
                    lp,
                    instruments: Instruments::fresh(spec),
                    outbox: Outbox::new(i),
                })
            })
            .collect();
        let gate = Barrier::new(shards + 1);
        // Epoch horizon in nanos; u64::MAX doubles as the stop signal.
        let horizon = AtomicU64::new(0);
        const STOP: u64 = u64::MAX;
        let cursor = AtomicUsize::new(0);
        let mut epochs = 0u64;
        let mut messages = 0u64;

        std::thread::scope(|s| {
            for _ in 0..shards {
                s.spawn(|| loop {
                    gate.wait();
                    let h = horizon.load(Ordering::Acquire);
                    if h == STOP {
                        return;
                    }
                    let epoch_end = SimTime::from_nanos(h);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut cell = cells[i].lock().expect("cell poisoned");
                        let swapped = cell.instruments.install();
                        let Cell { lp, outbox, .. } = &mut *cell;
                        lp.advance(epoch_end, outbox);
                        cell.instruments.uninstall(spec, swapped);
                    }
                    gate.wait();
                });
            }
            // Coordinator (caller's thread).
            loop {
                let barrier = cells
                    .iter()
                    .filter_map(|c| c.lock().expect("cell poisoned").lp.next_event_time())
                    .min();
                let stop = match barrier {
                    None => true,
                    Some(b) => b >= until,
                };
                if stop {
                    horizon.store(STOP, Ordering::Release);
                    gate.wait();
                    break;
                }
                let barrier = barrier.expect("checked above");
                let epoch_end = barrier.saturating_add(lookahead).min(until);
                cursor.store(0, Ordering::Relaxed);
                horizon.store(epoch_end.as_nanos(), Ordering::Release);
                gate.wait(); // release workers into the epoch
                gate.wait(); // wait for the epoch to complete
                epochs += 1;
                let mut exchange: Vec<Envelope<L::Msg>> = Vec::new();
                for cell in &cells {
                    let mut cell = cell.lock().expect("cell poisoned");
                    exchange.append(&mut cell.outbox.msgs);
                }
                if exchange.is_empty() {
                    continue;
                }
                exchange.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
                messages += exchange.len() as u64;
                for env in exchange {
                    assert!(
                        env.at >= epoch_end,
                        "lookahead violation: LP {} message at {:?} before epoch \
                         end {:?}",
                        env.src,
                        env.at,
                        epoch_end,
                    );
                    let mut cell = cells[env.dst].lock().expect("cell poisoned");
                    let swapped = cell.instruments.install();
                    cell.lp.deliver(env.at, env.msg);
                    cell.instruments.uninstall(spec, swapped);
                }
            }
        });

        let mut lps = Vec::with_capacity(n);
        for cell in cells {
            let cell = cell.into_inner().expect("cell poisoned");
            cell.instruments.absorb_into_caller();
            lps.push(cell.lp);
        }
        EpochReport {
            lps,
            epochs,
            messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// A minimal LP: a queue of u64 payloads; processing payload `p`
    /// appends `(time, p)` to a log, and payloads with the high bit set
    /// are forwarded to the next LP over the fabric.
    struct TestLp {
        id: usize,
        peers: usize,
        queue: EventQueue<u64>,
        log: Vec<(SimTime, u64)>,
        fabric_latency: SimDuration,
    }

    const FWD: u64 = 1 << 63;

    impl TestLp {
        fn new(id: usize, peers: usize, fabric_latency: SimDuration) -> Self {
            TestLp {
                id,
                peers,
                queue: EventQueue::new(),
                log: Vec::new(),
                fabric_latency,
            }
        }
    }

    impl ShardLp for TestLp {
        type Msg = u64;

        fn next_event_time(&self) -> Option<SimTime> {
            self.queue.next_time()
        }

        fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<u64>) {
            while let Some(t) = self.queue.next_time() {
                if t >= horizon {
                    break;
                }
                let (at, p) = self.queue.pop().expect("peeked");
                self.log.push((at, p));
                if p & FWD != 0 {
                    let dst = (self.id + 1) % self.peers;
                    outbox.send(dst, at.saturating_add(self.fabric_latency), p & !FWD);
                }
            }
        }

        fn deliver(&mut self, at: SimTime, msg: u64) {
            self.queue.schedule_at(at, msg);
        }
    }

    fn build(n: usize, lookahead: SimDuration) -> Vec<TestLp> {
        let mut lps: Vec<TestLp> = (0..n).map(|i| TestLp::new(i, n, lookahead)).collect();
        // Seed: staggered local work plus a few cross-LP sends.
        for (i, lp) in lps.iter_mut().enumerate() {
            for k in 0..40u64 {
                let at = SimTime::from_nanos(10 + k * 97 + i as u64 * 13);
                let payload = if k % 5 == 0 { FWD | (k + 1) } else { k + 1 };
                lp.queue.schedule_at(at, payload);
            }
        }
        lps
    }

    fn full_log(lps: &[TestLp]) -> Vec<(usize, SimTime, u64)> {
        let mut out = Vec::new();
        for lp in lps {
            for &(t, p) in &lp.log {
                out.push((lp.id, t, p));
            }
        }
        out
    }

    #[test]
    fn epoch_run_is_shard_count_invariant() {
        let la = SimDuration::from_nanos(50);
        let until = SimTime::from_micros(100);
        let a = run_epochs(build(4, la), la, until, 1, IsolationSpec::none());
        let b = run_epochs(build(4, la), la, until, 2, IsolationSpec::none());
        let c = run_epochs(build(4, la), la, until, 8, IsolationSpec::none());
        assert_eq!(full_log(&a.lps), full_log(&b.lps));
        assert_eq!(full_log(&a.lps), full_log(&c.lps));
        assert!(a.messages > 0, "sends actually crossed shards");
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.epochs, c.epochs);
    }

    #[test]
    fn persistent_pool_matches_scoped_spawns() {
        let la = SimDuration::from_nanos(50);
        let until = SimTime::from_micros(100);
        let a = run_epochs(build(6, la), la, until, 3, IsolationSpec::none());
        let pool = EpochPool::new(3);
        let b = pool.run(build(6, la), la, until, IsolationSpec::none());
        assert_eq!(full_log(&a.lps), full_log(&b.lps));
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn event_exactly_on_the_horizon_waits_for_the_next_epoch() {
        // One LP, one event at t, another exactly at t + lookahead (the
        // first epoch's end). The horizon event must not be processed
        // in epoch 1 — strictly-less-than is the epoch-edge rule.
        let la = SimDuration::from_nanos(100);
        let mut lp = TestLp::new(0, 1, la);
        lp.queue.schedule_at(SimTime::from_nanos(10), 1);
        lp.queue.schedule_at(SimTime::from_nanos(110), 2); // == 10 + lookahead
        let report = run_epochs(
            vec![lp],
            la,
            SimTime::from_micros(1),
            1,
            IsolationSpec::none(),
        );
        let lp = &report.lps[0];
        assert_eq!(
            lp.log,
            vec![(SimTime::from_nanos(10), 1), (SimTime::from_nanos(110), 2),]
        );
        // Epoch 1 covered [10, 110); the horizon event needed epoch 2.
        assert_eq!(report.epochs, 2);
    }

    #[test]
    fn events_at_until_stay_pending() {
        let la = SimDuration::from_nanos(100);
        let mut lp = TestLp::new(0, 1, la);
        lp.queue.schedule_at(SimTime::from_nanos(10), 1);
        lp.queue.schedule_at(SimTime::from_nanos(500), 2);
        let report = run_epochs(
            vec![lp],
            la,
            SimTime::from_nanos(500),
            1,
            IsolationSpec::none(),
        );
        let lp = &report.lps[0];
        assert_eq!(lp.log, vec![(SimTime::from_nanos(10), 1)]);
        assert_eq!(lp.queue.next_time(), Some(SimTime::from_nanos(500)));
    }

    #[test]
    fn cross_shard_delivery_is_time_src_seq_ordered() {
        let envs = vec![
            Envelope {
                at: SimTime::from_nanos(5),
                src: 1,
                seq: 0,
                dst: 0,
                msg: "b",
            },
            Envelope {
                at: SimTime::from_nanos(5),
                src: 0,
                seq: 1,
                dst: 1,
                msg: "a1",
            },
            Envelope {
                at: SimTime::from_nanos(3),
                src: 2,
                seq: 0,
                dst: 0,
                msg: "c",
            },
            Envelope {
                at: SimTime::from_nanos(5),
                src: 0,
                seq: 0,
                dst: 1,
                msg: "a0",
            },
        ];
        let order: Vec<&str> = merge_order(envs).into_iter().map(|e| e.msg).collect();
        assert_eq!(order, vec!["c", "a0", "a1", "b"]);
    }

    #[test]
    fn single_core_hosts_always_run_inline() {
        // The fig4a_shards4 fix: `--shards 4` on a 1-core runner must
        // not spawn contending workers.
        assert_eq!(effective_shards(4, 16, 1), 1);
        assert_eq!(effective_shards(0, 16, 1), 1);
        // Multi-core hosts keep the requested count, clamped to the
        // task count.
        assert_eq!(effective_shards(4, 16, 8), 4);
        assert_eq!(effective_shards(8, 3, 8), 3);
        assert_eq!(effective_shards(0, 3, 8), 1);
        assert_eq!(effective_shards(2, 0, 8), 1);
    }

    #[test]
    fn run_isolated_returns_results_in_task_order() {
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16u64)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let out = run_isolated(tasks, 4, IsolationSpec::none());
        assert_eq!(out, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_isolated_single_shard_runs_inline() {
        // At shards <= 1 the caller's thread identity is preserved —
        // today's serial path, byte for byte.
        let caller = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() -> std::thread::ThreadId + Send>> = (0..3)
            .map(|_| {
                Box::new(|| std::thread::current().id())
                    as Box<dyn FnOnce() -> std::thread::ThreadId + Send>
            })
            .collect();
        let out = run_isolated(tasks, 1, IsolationSpec::none());
        assert!(out.iter().all(|&id| id == caller));
    }

    #[test]
    fn run_isolated_absorbs_traces_in_task_order() {
        // Caller runs with a recorder installed; the pool gives each
        // task its own and absorbs them back in task order.
        assert!(trace::install(TraceRecorder::new(1 << 10)).is_none());
        let spec = IsolationSpec {
            record: true,
            ring_capacity: 1 << 10,
            ..IsolationSpec::default()
        };
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..6u64)
            .map(|i| {
                Box::new(move || {
                    trace::span(
                        SimTime::from_micros(i),
                        SimDuration::from_micros(1),
                        "shard",
                        "task",
                        vec![("i", crate::trace::ArgValue::U64(i))],
                    );
                    trace::metrics(|m| m.counter_add("shard.tasks", 1));
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_isolated(tasks, 3, spec);
        let rec = trace::uninstall().expect("still installed");
        assert_eq!(rec.metrics().counter("shard.tasks"), 6);
        // Spans appear in task order after the ordered absorb.
        let starts: Vec<SimTime> = rec
            .spans()
            .filter_map(|r| match r {
                crate::trace::TraceRecord::Span { start, .. } => Some(*start),
                _ => None,
            })
            .collect();
        assert_eq!(
            starts,
            (0..6u64).map(SimTime::from_micros).collect::<Vec<_>>(),
            "absorb preserved task order"
        );
    }
}
