//! Bandwidth and byte-size units.
//!
//! [`Bandwidth`] converts between link rates and serialization delays;
//! [`ByteSize`] gives readable constructors for buffer/memory sizes.
//!
//! # Examples
//!
//! ```
//! use simcore::units::{Bandwidth, ByteSize};
//! use simcore::time::SimDuration;
//!
//! let link = Bandwidth::gbps(10);
//! // 1250 bytes at 10 Gb/s serialize in exactly 1 us.
//! assert_eq!(link.transfer_time(1250), SimDuration::from_micros(1));
//! assert_eq!(ByteSize::mib(4).bytes(), 4 * 1024 * 1024);
//! ```

use std::fmt;

use crate::time::SimDuration;

/// A data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate (a disabled link).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a rate from bits per second.
    #[must_use]
    pub const fn bps(bits_per_sec: u64) -> Self {
        Bandwidth(bits_per_sec)
    }

    /// Creates a rate from megabits per second.
    #[must_use]
    pub const fn mbps(megabits_per_sec: u64) -> Self {
        Bandwidth(megabits_per_sec * 1_000_000)
    }

    /// Creates a rate from gigabits per second.
    #[must_use]
    pub const fn gbps(gigabits_per_sec: u64) -> Self {
        Bandwidth(gigabits_per_sec * 1_000_000_000)
    }

    /// Creates a rate from megabytes per second.
    #[must_use]
    pub const fn mbytes_per_sec(mb: u64) -> Self {
        Bandwidth(mb * 8_000_000)
    }

    /// The rate in bits per second.
    #[must_use]
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// The rate in bytes per second.
    #[must_use]
    pub const fn bytes_per_sec(self) -> u64 {
        self.0 / 8
    }

    /// The rate in gigabits per second, as a float.
    #[must_use]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate, modelling a link that
    /// never completes a transfer.
    #[must_use]
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        // nanos = bytes * 8 * 1e9 / bits_per_sec, computed in u128 to
        // avoid overflow for large transfers.
        let nanos = (bytes as u128 * 8 * 1_000_000_000) / self.0 as u128;
        SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    /// Bytes transferable in `d` at this rate.
    #[must_use]
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        ((self.0 as u128 * d.as_nanos() as u128) / (8 * 1_000_000_000)) as u64
    }

    /// Halves the rate; used by the duplication prototype, which models a
    /// NIC whose PCIe throughput is split between the primary and
    /// secondary rings (§5).
    #[must_use]
    pub const fn halved(self) -> Bandwidth {
        Bandwidth(self.0 / 2)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gb/s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mb/s", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}b/s", self.0)
        }
    }
}

/// A size in bytes with binary-unit constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    #[must_use]
    pub const fn bytes_exact(n: u64) -> Self {
        ByteSize(n)
    }

    /// Creates a size of `n` KiB.
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a size of `n` MiB.
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Creates a size of `n` GiB.
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// The size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// The size in whole 4 KiB pages, rounding up.
    #[must_use]
    pub const fn pages(self) -> u64 {
        self.0.div_ceil(4096)
    }

    /// The size in MiB as a float.
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The size in GiB as a float.
    #[must_use]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GIB: u64 = 1024 * 1024 * 1024;
        const MIB: u64 = 1024 * 1024;
        const KIB: u64 = 1024;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_rate() {
        // 56 Gb/s InfiniBand: a 4096-byte MTU packet takes 585 ns.
        let ib = Bandwidth::gbps(56);
        assert_eq!(ib.transfer_time(4096), SimDuration::from_nanos(585));
        // 12 Gb/s prototype Ethernet: a 1500-byte frame takes 1000 ns.
        let eth = Bandwidth::gbps(12);
        assert_eq!(eth.transfer_time(1500), SimDuration::from_nanos(1000));
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert_eq!(Bandwidth::ZERO.transfer_time(1), SimDuration::MAX);
        assert_eq!(Bandwidth::ZERO.bytes_in(SimDuration::from_secs(1)), 0);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::gbps(40);
        let d = bw.transfer_time(1_000_000);
        let b = bw.bytes_in(d);
        assert!((b as i64 - 1_000_000).abs() <= 1, "round-trip lost {b}");
    }

    #[test]
    fn halved_models_duplication() {
        assert_eq!(Bandwidth::gbps(24).halved(), Bandwidth::gbps(12));
    }

    #[test]
    fn bytesize_units() {
        assert_eq!(ByteSize::kib(4).bytes(), 4096);
        assert_eq!(ByteSize::mib(1).pages(), 256);
        assert_eq!(ByteSize::bytes_exact(1).pages(), 1);
        assert_eq!(ByteSize::bytes_exact(4097).pages(), 2);
        assert_eq!(ByteSize::gib(3).as_gib_f64(), 3.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::gbps(56).to_string(), "56.00Gb/s");
        assert_eq!(Bandwidth::mbps(100).to_string(), "100.00Mb/s");
        assert_eq!(ByteSize::mib(4).to_string(), "4.00MiB");
        assert_eq!(ByteSize::bytes_exact(12).to_string(), "12B");
    }

    #[test]
    fn saturating_size_math() {
        let a = ByteSize::mib(1);
        let b = ByteSize::mib(3);
        assert_eq!(a.saturating_sub(b), ByteSize::ZERO);
        assert_eq!(a.saturating_add(b), ByteSize::mib(4));
    }
}
