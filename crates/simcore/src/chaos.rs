//! # simcore::chaos — seeded fault injection + global invariant checking
//!
//! Two halves, both threaded through the whole stack:
//!
//! 1. **Fault injection.** A [`ChaosEngine`] draws typed [`FaultPlan`]
//!    decisions from per-class [`SimRng`] streams forked from a single
//!    chaos seed, so the same seed replays the exact same fault
//!    schedule. Injection points: packet drop/corrupt/duplicate/reorder
//!    in `netsim::fabric`, lost and delayed interrupts in
//!    `nicsim::interrupt`, NPF resolution delay/transient-failure/retry
//!    in `core::npf`, memory-pressure bursts and eviction storms in
//!    `memsim::manager`, IOTLB shootdown races in `iommu::unit`.
//!
//! 2. **Invariant checking.** An [`InvariantChecker`] installed
//!    thread-locally (the same pattern as [`crate::trace`]) receives
//!    `note_*` observations from every crate and evaluates cross-crate
//!    predicates at event dispatch: exactly-once in-order delivery per
//!    RC QP, the backup ring never silently overflowing, no IOMMU PTE
//!    mapping a frame the memory manager has freed, sim-time
//!    monotonicity, and every raised NPF eventually resolved or
//!    aborted. On violation the checker dumps the trace ring for the
//!    failing seed.
//!
//! Both halves cost one thread-local branch per site when disabled, and
//! the chaos RNG is seeded independently of the simulation seed, so a
//! run with chaos disabled is bit-identical to a build without this
//! module at all (the zero-overhead disabled path the golden-trace
//! tests pin down).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::rng::SimRng;
use crate::stats::Counters;
use crate::time::{SimDuration, SimTime};
use crate::trace;

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Packet-level faults injected at the fabric (`netsim::fabric`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetChaos {
    /// Probability a packet is silently dropped.
    pub drop: f64,
    /// Probability a packet is corrupted in flight (delivered, then
    /// discarded by the receiver's CRC check — it still burns
    /// bandwidth).
    pub corrupt: f64,
    /// Probability a packet is duplicated (the copy arrives later).
    pub duplicate: f64,
    /// Probability a packet is delayed past its natural arrival,
    /// reordering it behind later traffic.
    pub reorder: f64,
    /// Maximum extra delay applied to duplicated/reordered copies.
    pub jitter: SimDuration,
}

impl NetChaos {
    /// No packet faults.
    pub const OFF: NetChaos = NetChaos {
        drop: 0.0,
        corrupt: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        jitter: SimDuration::ZERO,
    };

    /// `true` when any packet fault can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.drop > 0.0 || self.corrupt > 0.0 || self.duplicate > 0.0 || self.reorder > 0.0
    }
}

/// Interrupt faults injected at the moderator (`nicsim::interrupt`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptChaos {
    /// Probability a fired interrupt is lost. A lost interrupt is
    /// redelivered by the watchdog (as on real NICs) so the simulation
    /// stays live — the damage is the latency hole.
    pub lose: f64,
    /// Probability a fired interrupt is merely late.
    pub delay: f64,
    /// Maximum lateness for a delayed interrupt.
    pub max_delay: SimDuration,
    /// Redelivery timeout for a lost interrupt.
    pub watchdog: SimDuration,
}

impl InterruptChaos {
    /// No interrupt faults.
    pub const OFF: InterruptChaos = InterruptChaos {
        lose: 0.0,
        delay: 0.0,
        max_delay: SimDuration::ZERO,
        watchdog: SimDuration::ZERO,
    };

    /// `true` when any interrupt fault can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.lose > 0.0 || self.delay > 0.0
    }
}

/// NPF resolution faults injected in the driver path (`core::npf`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpfChaos {
    /// Probability a resolution is slower than the cost model says.
    pub delay: f64,
    /// Maximum extra resolution latency.
    pub max_extra: SimDuration,
    /// Probability the first resolution attempt fails transiently and
    /// is retried (each retry adds `retry_delay`).
    pub transient: f64,
    /// Maximum retry count for a transient failure.
    pub max_retries: u32,
    /// Latency added per retry.
    pub retry_delay: SimDuration,
}

impl NpfChaos {
    /// No NPF faults.
    pub const OFF: NpfChaos = NpfChaos {
        delay: 0.0,
        max_extra: SimDuration::ZERO,
        transient: 0.0,
        max_retries: 0,
        retry_delay: SimDuration::ZERO,
    };

    /// `true` when any NPF fault can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.delay > 0.0 || self.transient > 0.0
    }
}

/// Memory-pressure faults injected at the manager (`memsim::manager`).
/// Evaluated once per chaos tick (see [`ChaosConfig::tick`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemChaos {
    /// Probability of a pressure burst this tick.
    pub burst: f64,
    /// Pages reclaimed by a burst.
    pub burst_pages: u64,
    /// Probability of a full eviction storm this tick.
    pub storm: f64,
    /// Pages reclaimed by a storm.
    pub storm_pages: u64,
}

impl MemChaos {
    /// No memory faults.
    pub const OFF: MemChaos = MemChaos {
        burst: 0.0,
        burst_pages: 0,
        storm: 0.0,
        storm_pages: 0,
    };

    /// `true` when any memory fault can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.burst > 0.0 || self.storm > 0.0
    }
}

/// IOTLB shootdown races injected at the IOMMU (`iommu::unit`).
/// Evaluated once per chaos tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IommuChaos {
    /// Probability of a full IOTLB shootdown this tick, racing in-flight
    /// resolutions (correctness requires the next access to re-walk).
    pub shootdown: f64,
}

impl IommuChaos {
    /// No IOMMU faults.
    pub const OFF: IommuChaos = IommuChaos { shootdown: 0.0 };

    /// `true` when any IOMMU fault can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.shootdown > 0.0
    }
}

/// PFC pause storms injected at the fabric (`netsim::fabric`): a rogue
/// peer spraying 802.3x/PFC pause frames, stalling a victim's egress.
/// Evaluated once per chaos tick per node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauseChaos {
    /// Probability that a pause storm hits a given node this tick.
    pub storm: f64,
    /// Longest single pause a storm imposes (drawn uniformly in
    /// `(0, max_pause]`).
    pub max_pause: SimDuration,
}

impl PauseChaos {
    /// No pause storms.
    pub const OFF: PauseChaos = PauseChaos {
        storm: 0.0,
        max_pause: SimDuration::ZERO,
    };

    /// `true` when a pause storm can fire.
    #[must_use]
    pub fn active(&self) -> bool {
        self.storm > 0.0
    }
}

/// Full chaos configuration: one seed plus per-class fault rates.
///
/// The seed is *independent* of the simulation seed: a testbed with
/// chaos disabled draws nothing from any chaos stream, so its existing
/// RNG streams — and therefore its golden traces — are untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ChaosConfig {
    /// Seed of the chaos schedule (forked per fault class).
    pub seed: u64,
    /// Period of the testbed's chaos tick (memory and IOMMU classes).
    pub tick: SimDuration,
    /// Packet faults.
    pub net: NetChaos,
    /// Interrupt faults.
    pub interrupt: InterruptChaos,
    /// NPF resolution faults.
    pub npf: NpfChaos,
    /// Memory-pressure faults.
    pub memory: MemChaos,
    /// IOTLB shootdowns.
    pub iommu: IommuChaos,
    /// PFC pause storms.
    pub pause: PauseChaos,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::disabled()
    }
}

impl ChaosConfig {
    /// Chaos off: every class inert. The canonical default.
    #[must_use]
    pub const fn disabled() -> Self {
        ChaosConfig {
            seed: 0,
            tick: SimDuration::from_micros(50),
            net: NetChaos::OFF,
            interrupt: InterruptChaos::OFF,
            npf: NpfChaos::OFF,
            memory: MemChaos::OFF,
            iommu: IommuChaos::OFF,
            pause: PauseChaos::OFF,
        }
    }

    /// `true` when at least one fault class can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.net.active()
            || self.interrupt.active()
            || self.npf.active()
            || self.memory.active()
            || self.iommu.active()
            || self.pause.active()
    }

    /// Sets the chaos-schedule seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the chaos tick period.
    #[must_use]
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the packet-fault class.
    #[must_use]
    pub fn with_net(mut self, net: NetChaos) -> Self {
        self.net = net;
        self
    }

    /// Sets the interrupt-fault class.
    #[must_use]
    pub fn with_interrupt(mut self, interrupt: InterruptChaos) -> Self {
        self.interrupt = interrupt;
        self
    }

    /// Sets the NPF-resolution fault class.
    #[must_use]
    pub fn with_npf(mut self, npf: NpfChaos) -> Self {
        self.npf = npf;
        self
    }

    /// Sets the memory-pressure fault class.
    #[must_use]
    pub fn with_memory(mut self, memory: MemChaos) -> Self {
        self.memory = memory;
        self
    }

    /// Sets the IOTLB-shootdown fault class.
    #[must_use]
    pub fn with_iommu(mut self, iommu: IommuChaos) -> Self {
        self.iommu = iommu;
        self
    }

    /// Sets the PFC pause-storm fault class.
    #[must_use]
    pub fn with_pause(mut self, pause: PauseChaos) -> Self {
        self.pause = pause;
        self
    }

    /// The named profile armed with `seed`.
    #[must_use]
    pub fn profile(profile: ChaosProfile, seed: u64) -> Self {
        let mut cfg = ChaosConfig {
            seed,
            ..ChaosConfig::disabled()
        };
        match profile {
            ChaosProfile::Network => cfg.net = PROFILE_NET,
            ChaosProfile::Interrupts => cfg.interrupt = PROFILE_IRQ,
            ChaosProfile::Npf => cfg.npf = PROFILE_NPF,
            ChaosProfile::Memory => cfg.memory = PROFILE_MEM,
            ChaosProfile::Iommu => cfg.iommu = PROFILE_IOMMU,
            ChaosProfile::All => {
                cfg.net = PROFILE_NET;
                cfg.interrupt = PROFILE_IRQ;
                cfg.npf = PROFILE_NPF;
                cfg.memory = PROFILE_MEM;
                cfg.iommu = PROFILE_IOMMU;
            }
        }
        cfg
    }
}

const PROFILE_NET: NetChaos = NetChaos {
    drop: 0.02,
    corrupt: 0.01,
    duplicate: 0.02,
    reorder: 0.05,
    jitter: SimDuration::from_micros(30),
};

const PROFILE_IRQ: InterruptChaos = InterruptChaos {
    lose: 0.05,
    delay: 0.20,
    max_delay: SimDuration::from_micros(50),
    watchdog: SimDuration::from_micros(500),
};

const PROFILE_NPF: NpfChaos = NpfChaos {
    delay: 0.30,
    max_extra: SimDuration::from_micros(20),
    transient: 0.10,
    max_retries: 3,
    retry_delay: SimDuration::from_micros(10),
};

// Per 50 us tick: ~400 bursts and ~100 storms per simulated second.
// Hot enough that working-set pages get evicted mid-transfer, low
// enough that a fault resolution (even a swap-in) can win the race
// against the next eviction and the transport makes progress.
const PROFILE_MEM: MemChaos = MemChaos {
    burst: 0.02,
    burst_pages: 16,
    storm: 0.005,
    storm_pages: 64,
};

const PROFILE_IOMMU: IommuChaos = IommuChaos { shootdown: 0.20 };

/// Named per-class fault profiles, one per injection layer plus the
/// union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProfile {
    /// Packet drop/corrupt/duplicate/reorder.
    Network,
    /// Lost and delayed interrupts.
    Interrupts,
    /// NPF resolution delay / transient failure / retry.
    Npf,
    /// Memory-pressure bursts and eviction storms.
    Memory,
    /// IOTLB shootdown races.
    Iommu,
    /// All of the above at once.
    All,
}

impl ChaosProfile {
    /// Every profile, in a stable order (sweep tests iterate this).
    pub const ALL: [ChaosProfile; 6] = [
        ChaosProfile::Network,
        ChaosProfile::Interrupts,
        ChaosProfile::Npf,
        ChaosProfile::Memory,
        ChaosProfile::Iommu,
        ChaosProfile::All,
    ];

    /// Parses a profile name (as passed to `--chaos-profile`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<ChaosProfile> {
        match name {
            "network" | "net" => Some(ChaosProfile::Network),
            "interrupts" | "irq" => Some(ChaosProfile::Interrupts),
            "npf" => Some(ChaosProfile::Npf),
            "memory" | "mem" => Some(ChaosProfile::Memory),
            "iommu" => Some(ChaosProfile::Iommu),
            "all" => Some(ChaosProfile::All),
            _ => None,
        }
    }

    /// The canonical name of the profile.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosProfile::Network => "network",
            ChaosProfile::Interrupts => "interrupts",
            ChaosProfile::Npf => "npf",
            ChaosProfile::Memory => "memory",
            ChaosProfile::Iommu => "iommu",
            ChaosProfile::All => "all",
        }
    }
}

// ---------------------------------------------------------------------
// Fault plans (the typed per-class decisions)
// ---------------------------------------------------------------------

/// Fate of one packet crossing the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered but corrupted; the receiver's CRC check discards it.
    Corrupt,
    /// Delivered, plus a duplicate copy `extra` later.
    Duplicate {
        /// Lateness of the duplicate copy.
        extra: SimDuration,
    },
    /// Delivered `extra` late, reordering it behind later packets.
    Reorder {
        /// Added delay.
        extra: SimDuration,
    },
}

/// Fate of one fired interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptFate {
    /// Delivered on time.
    Deliver,
    /// Lost; the watchdog redelivers it `redeliver_after` later.
    Lose {
        /// Watchdog redelivery timeout.
        redeliver_after: SimDuration,
    },
    /// Delivered `extra` late.
    Delay {
        /// Added delay.
        extra: SimDuration,
    },
}

/// Fate of one NPF resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NpfFate {
    /// Resolved at the cost model's pace.
    Normal,
    /// Resolution runs `extra` slower.
    Delay {
        /// Added resolution latency.
        extra: SimDuration,
    },
    /// The first `retries` attempts fail transiently; each adds
    /// `retry_delay` before the resolution finally lands.
    Transient {
        /// Failed attempts before success.
        retries: u32,
        /// Latency added per failed attempt.
        retry_delay: SimDuration,
    },
}

/// Memory pressure applied at one chaos tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryFate {
    /// No pressure this tick.
    Calm,
    /// Reclaim `pages` pages (a cgroup neighbor ballooning).
    PressureBurst {
        /// Pages to reclaim.
        pages: u64,
    },
    /// Reclaim `pages` pages (kswapd panicking).
    EvictionStorm {
        /// Pages to reclaim.
        pages: u64,
    },
}

/// IOTLB perturbation applied at one chaos tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IommuFate {
    /// No shootdown this tick.
    None,
    /// Flush the whole IOTLB, racing in-flight resolutions.
    ShootdownAll,
}

/// PFC pause decision for one node at one chaos tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseFate {
    /// No pause storm this tick.
    Calm,
    /// Stall the node's egress for `pause` (a burst of pause frames).
    Storm {
        /// How long the egress stays paused.
        pause: SimDuration,
    },
}

/// A typed fault decision, one variant per injection class. Each is
/// derived from that class's private [`SimRng`] stream, so a seed
/// replays the exact same fault schedule regardless of how classes
/// interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Packet-level decision.
    Packet(PacketFate),
    /// Interrupt-level decision.
    Interrupt(InterruptFate),
    /// NPF-resolution decision.
    Npf(NpfFate),
    /// Memory-pressure decision.
    Memory(MemoryFate),
    /// IOTLB decision.
    Iommu(IommuFate),
    /// PFC pause decision.
    Pause(PauseFate),
}

// ---------------------------------------------------------------------
// The injector
// ---------------------------------------------------------------------

/// The seeded fault injector. One per testbed (forked per component
/// where a component draws concurrently — see [`ChaosEngine::fork`]).
#[derive(Debug)]
pub struct ChaosEngine {
    cfg: ChaosConfig,
    net_rng: SimRng,
    irq_rng: SimRng,
    npf_rng: SimRng,
    mem_rng: SimRng,
    iommu_rng: SimRng,
    pause_rng: SimRng,
    counters: Counters,
}

impl ChaosEngine {
    /// Builds an engine from `cfg`, forking one stream per fault class
    /// from `SimRng::new(cfg.seed)`.
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        let mut root = SimRng::new(cfg.seed);
        ChaosEngine {
            cfg,
            net_rng: root.fork(1),
            irq_rng: root.fork(2),
            npf_rng: root.fork(3),
            mem_rng: root.fork(4),
            iommu_rng: root.fork(5),
            pause_rng: root.fork(6),
            counters: Counters::new(),
        }
    }

    /// Derives an independent engine (same config, child streams) for a
    /// component that must not interleave draws with its parent.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> ChaosEngine {
        let mut cfg = self.cfg;
        cfg.seed = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label);
        ChaosEngine::new(cfg)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// `true` when at least one fault class can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Counts of injected faults per class: `net_drop`, `net_corrupt`,
    /// `net_duplicate`, `net_reorder`, `irq_lost`, `irq_delayed`,
    /// `npf_delay`, `npf_transient`, `mem_burst`, `mem_storm`,
    /// `iommu_shootdown`.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Total faults injected across all classes.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.counters.iter().map(|(_, v)| v).sum()
    }

    fn jitter(rng: &mut SimRng, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            return SimDuration::from_nanos(1);
        }
        SimDuration::from_nanos(1 + rng.below(max.as_nanos().max(1)))
    }

    /// Draws the fate of one packet.
    pub fn packet_fate(&mut self) -> PacketFate {
        let c = self.cfg.net;
        if !c.active() {
            return PacketFate::Deliver;
        }
        let r = self.net_rng.unit();
        let fate = if r < c.drop {
            self.counters.bump("net_drop");
            PacketFate::Drop
        } else if r < c.drop + c.corrupt {
            self.counters.bump("net_corrupt");
            PacketFate::Corrupt
        } else if r < c.drop + c.corrupt + c.duplicate {
            self.counters.bump("net_duplicate");
            PacketFate::Duplicate {
                extra: Self::jitter(&mut self.net_rng, c.jitter),
            }
        } else if r < c.drop + c.corrupt + c.duplicate + c.reorder {
            self.counters.bump("net_reorder");
            PacketFate::Reorder {
                extra: Self::jitter(&mut self.net_rng, c.jitter),
            }
        } else {
            return PacketFate::Deliver;
        };
        self.trace_injection("packet", &FaultPlan::Packet(fate));
        fate
    }

    /// Draws the fate of one fired interrupt.
    pub fn interrupt_fate(&mut self) -> InterruptFate {
        let c = self.cfg.interrupt;
        if !c.active() {
            return InterruptFate::Deliver;
        }
        let r = self.irq_rng.unit();
        let fate = if r < c.lose {
            self.counters.bump("irq_lost");
            InterruptFate::Lose {
                redeliver_after: c.watchdog.max(SimDuration::from_micros(1)),
            }
        } else if r < c.lose + c.delay {
            self.counters.bump("irq_delayed");
            InterruptFate::Delay {
                extra: Self::jitter(&mut self.irq_rng, c.max_delay),
            }
        } else {
            return InterruptFate::Deliver;
        };
        self.trace_injection("interrupt", &FaultPlan::Interrupt(fate));
        fate
    }

    /// Draws the fate of one NPF resolution.
    pub fn npf_fate(&mut self) -> NpfFate {
        let c = self.cfg.npf;
        if !c.active() {
            return NpfFate::Normal;
        }
        let r = self.npf_rng.unit();
        let fate = if r < c.transient {
            self.counters.bump("npf_transient");
            let retries = 1 + self.npf_rng.below(u64::from(c.max_retries.max(1))) as u32;
            NpfFate::Transient {
                retries,
                retry_delay: c.retry_delay.max(SimDuration::from_micros(1)),
            }
        } else if r < c.transient + c.delay {
            self.counters.bump("npf_delay");
            NpfFate::Delay {
                extra: Self::jitter(&mut self.npf_rng, c.max_extra),
            }
        } else {
            return NpfFate::Normal;
        };
        self.trace_injection("npf", &FaultPlan::Npf(fate));
        fate
    }

    /// Draws the memory-pressure decision for one chaos tick.
    pub fn memory_fate(&mut self) -> MemoryFate {
        let c = self.cfg.memory;
        if !c.active() {
            return MemoryFate::Calm;
        }
        let r = self.mem_rng.unit();
        let fate = if r < c.storm {
            self.counters.bump("mem_storm");
            MemoryFate::EvictionStorm {
                pages: c.storm_pages,
            }
        } else if r < c.storm + c.burst {
            self.counters.bump("mem_burst");
            MemoryFate::PressureBurst {
                pages: c.burst_pages,
            }
        } else {
            return MemoryFate::Calm;
        };
        self.trace_injection("memory", &FaultPlan::Memory(fate));
        fate
    }

    /// Draws the IOTLB decision for one chaos tick.
    pub fn iommu_fate(&mut self) -> IommuFate {
        let c = self.cfg.iommu;
        if !c.active() {
            return IommuFate::None;
        }
        if self.iommu_rng.chance(c.shootdown) {
            self.counters.bump("iommu_shootdown");
            let fate = IommuFate::ShootdownAll;
            self.trace_injection("iommu", &FaultPlan::Iommu(fate));
            return fate;
        }
        IommuFate::None
    }

    /// Draws the PFC pause decision for one node at one chaos tick.
    pub fn pause_fate(&mut self) -> PauseFate {
        let c = self.cfg.pause;
        if !c.active() {
            return PauseFate::Calm;
        }
        if self.pause_rng.chance(c.storm) {
            self.counters.bump("pause_storm");
            let fate = PauseFate::Storm {
                pause: Self::jitter(&mut self.pause_rng, c.max_pause),
            };
            self.trace_injection("pause", &FaultPlan::Pause(fate));
            return fate;
        }
        PauseFate::Calm
    }

    fn trace_injection(&self, class: &'static str, plan: &FaultPlan) {
        if trace::enabled() {
            trace::instant_now(
                "chaos",
                "inject",
                vec![
                    ("class", trace::ArgValue::Str(class.to_owned())),
                    ("plan", trace::ArgValue::Str(format!("{plan:?}"))),
                ],
            );
            trace::metrics(|m| m.counter_add("chaos.injected", 1));
        }
    }
}

// ---------------------------------------------------------------------
// The invariant checker
// ---------------------------------------------------------------------

/// One invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// Sim time of the last `note_event_time` before the violation.
    pub at: Option<SimTime>,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.at {
            Some(t) => write!(f, "[{t}] {}: {}", self.invariant, self.detail),
            None => write!(f, "{}: {}", self.invariant, self.detail),
        }
    }
}

/// Cross-crate invariant state, fed by `note_*` observations from every
/// layer and evaluated incrementally plus at each event-dispatch
/// [`InvariantChecker::checkpoint`].
#[derive(Debug, Default)]
pub struct InvariantChecker {
    seed: u64,
    last_time: Option<SimTime>,
    /// Outstanding NPFs: fault id → time raised.
    pending_faults: HashMap<u64, SimTime>,
    resolved_faults: u64,
    aborted_faults: u64,
    /// Next expected message sequence per RC stream key.
    qp_next_seq: HashMap<u64, u64>,
    /// Live IOMMU mappings: (domain, vpn) → frame.
    mapping: HashMap<(u64, u64), u64>,
    /// Live mapping count per frame.
    frame_mapcount: HashMap<u64, u64>,
    /// Frames currently free (freed and not yet re-allocated).
    free_frames: std::collections::HashSet<u64>,
    /// Frames freed since the last checkpoint (deferred sweep: the
    /// invalidation that unmaps them runs within the same dispatch).
    pending_freed: Vec<u64>,
    /// Backup ring capacity per ring key.
    backup_capacity: HashMap<u64, u64>,
    /// Backup ring depth per ring key.
    backup_depth: HashMap<u64, u64>,
    /// Backup packets accounted: stored + dropped must equal offered.
    backup_offered: u64,
    backup_accounted: u64,
    violations: Vec<Violation>,
    checks: u64,
    trace_dumped: bool,
}

impl InvariantChecker {
    /// A fresh checker reporting `seed` in violation messages.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        InvariantChecker {
            seed,
            ..InvariantChecker::default()
        }
    }

    /// The seed the checker reports on violation.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Observations processed (a liveness sanity check for tests).
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// NPFs raised and not yet resolved or aborted.
    #[must_use]
    pub fn outstanding_faults(&self) -> usize {
        self.pending_faults.len()
    }

    /// NPFs resolved so far.
    #[must_use]
    pub fn resolved_faults(&self) -> u64 {
        self.resolved_faults
    }

    /// Messages delivered across all RC streams.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.qp_next_seq.values().sum()
    }

    /// Folds another checker's end-of-run state into this one, in
    /// support of sharded execution: each shard LP runs under a private
    /// checker and the shard executor absorbs them in LP order. All keys
    /// (fault ids, stream keys, domains, frames, rings) are salted with
    /// a process-unique namespace at testbed construction, so the maps
    /// of two checkers never collide.
    pub fn absorb(&mut self, other: InvariantChecker) {
        self.pending_faults.extend(other.pending_faults);
        self.resolved_faults += other.resolved_faults;
        self.aborted_faults += other.aborted_faults;
        self.qp_next_seq.extend(other.qp_next_seq);
        self.mapping.extend(other.mapping);
        self.frame_mapcount.extend(other.frame_mapcount);
        self.free_frames.extend(other.free_frames);
        self.pending_freed.extend(other.pending_freed);
        self.backup_capacity.extend(other.backup_capacity);
        self.backup_depth.extend(other.backup_depth);
        self.backup_offered += other.backup_offered;
        self.backup_accounted += other.backup_accounted;
        self.violations.extend(other.violations);
        self.checks += other.checks;
        self.trace_dumped |= other.trace_dumped;
    }

    fn violate(&mut self, invariant: &'static str, detail: String) {
        let v = Violation {
            invariant,
            at: self.last_time,
            detail,
        };
        eprintln!("chaos invariant violated (seed {}): {v}", self.seed);
        self.dump_trace_ring(invariant);
        self.violations.push(v);
    }

    /// On the first violation, dump the trace ring (when a recorder is
    /// installed) so the failing seed can be diagnosed offline.
    fn dump_trace_ring(&mut self, invariant: &'static str) {
        if self.trace_dumped || !trace::enabled() {
            return;
        }
        self.trace_dumped = true;
        let seed = self.seed;
        trace::with(|rec| {
            let all: Vec<String> = rec.records().map(|r| format!("{r:?}")).collect();
            let tail: Vec<&String> = all.iter().rev().take(32).collect();
            eprintln!("--- trace ring tail (newest first, seed {seed}) ---");
            for line in &tail {
                eprintln!("  {line}");
            }
            let path = std::env::temp_dir()
                .join(format!("chaos-violation-seed{seed}-{invariant}.trace.json"));
            match std::fs::write(&path, rec.export_chrome_json()) {
                Ok(()) => eprintln!("full trace ring written to {}", path.display()),
                Err(e) => eprintln!("failed to write trace ring: {e}"),
            }
        });
    }

    // -- observations --------------------------------------------------

    /// A fresh simulation timeline begins (a testbed was constructed):
    /// its clock restarts at zero, so monotonicity must not compare
    /// against the previous testbed's final time. Experiment binaries
    /// build many testbeds under one process-global checker.
    pub fn note_timeline_reset(&mut self) {
        self.checks += 1;
        self.last_time = None;
    }

    /// Sim-time monotonicity: dispatch times never run backwards.
    pub fn note_event_time(&mut self, now: SimTime) {
        self.checks += 1;
        if let Some(last) = self.last_time {
            if now < last {
                self.violate(
                    "time-monotonicity",
                    format!("event dispatched at {now} after {last}"),
                );
            }
        }
        self.last_time = Some(now);
    }

    /// An NPF was raised.
    pub fn note_fault_begun(&mut self, id: u64, now: SimTime) {
        self.checks += 1;
        if self.pending_faults.insert(id, now).is_some() {
            self.violate("npf-unique-ids", format!("fault id {id} raised twice"));
        }
    }

    /// An NPF completed resolution.
    pub fn note_fault_resolved(&mut self, id: u64) {
        self.checks += 1;
        if self.pending_faults.remove(&id).is_none() {
            self.violate(
                "npf-resolution",
                format!("fault id {id} resolved but never raised"),
            );
        } else {
            self.resolved_faults += 1;
        }
    }

    /// An NPF was abandoned (channel teardown).
    pub fn note_fault_aborted(&mut self, id: u64) {
        self.checks += 1;
        if self.pending_faults.remove(&id).is_none() {
            self.violate(
                "npf-resolution",
                format!("fault id {id} aborted but never raised"),
            );
        } else {
            self.aborted_faults += 1;
        }
    }

    /// A full RC message was delivered to stream `stream` (a key unique
    /// per QP direction). `seq` is the transport's running message
    /// count *after* delivery, so exactly-once in-order delivery means
    /// each call observes `seq == previous + 1`.
    pub fn note_qp_message(&mut self, stream: u64, seq: u64) {
        self.checks += 1;
        let prev = self.qp_next_seq.get(&stream).copied().unwrap_or(0);
        if seq != prev + 1 {
            let expected = prev + 1;
            self.violate(
                "rc-exactly-once",
                format!("stream {stream:#x}: delivered message {seq}, expected {expected}"),
            );
        }
        self.qp_next_seq.insert(stream, seq.max(prev));
    }

    /// The frame allocator handed out `frame`.
    pub fn note_frame_allocated(&mut self, frame: u64) {
        self.checks += 1;
        self.free_frames.remove(&frame);
    }

    /// The frame allocator reclaimed `frame`.
    pub fn note_frame_freed(&mut self, frame: u64) {
        self.checks += 1;
        if !self.free_frames.insert(frame) {
            self.violate("frame-books", format!("frame {frame} freed twice"));
        }
        if self.frame_mapcount.get(&frame).copied().unwrap_or(0) > 0 {
            // The unmap runs later in the same dispatch (invalidation
            // flow); sweep at the next checkpoint.
            self.pending_freed.push(frame);
        }
    }

    /// The IOMMU installed a PTE.
    pub fn note_frame_mapped(&mut self, domain: u64, vpn: u64, frame: u64) {
        self.checks += 1;
        if self.free_frames.contains(&frame) {
            self.violate(
                "no-freed-frame-mapped",
                format!("domain {domain} vpn {vpn:#x} mapped to freed frame {frame}"),
            );
        }
        if let Some(old) = self.mapping.insert((domain, vpn), frame) {
            if let Some(c) = self.frame_mapcount.get_mut(&old) {
                *c = c.saturating_sub(1);
            }
        }
        *self.frame_mapcount.entry(frame).or_insert(0) += 1;
    }

    /// The IOMMU removed a PTE (no-op when the page was not mapped).
    pub fn note_frame_unmapped(&mut self, domain: u64, vpn: u64) {
        self.checks += 1;
        if let Some(frame) = self.mapping.remove(&(domain, vpn)) {
            if let Some(c) = self.frame_mapcount.get_mut(&frame) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// A whole IOMMU domain was destroyed.
    pub fn note_domain_destroyed(&mut self, domain: u64) {
        self.checks += 1;
        let victims: Vec<(u64, u64)> = self
            .mapping
            .keys()
            .filter(|(d, _)| *d == domain)
            .copied()
            .collect();
        for key in victims {
            if let Some(frame) = self.mapping.remove(&key) {
                if let Some(c) = self.frame_mapcount.get_mut(&frame) {
                    *c = c.saturating_sub(1);
                }
            }
        }
    }

    /// A backup ring of capacity `cap` exists under key `ring`.
    pub fn note_backup_capacity(&mut self, ring: u64, cap: u64) {
        self.checks += 1;
        self.backup_capacity.insert(ring, cap);
        self.backup_depth.entry(ring).or_insert(0);
    }

    /// A faulting packet was offered to the backup path (stored or
    /// dropped — never silently vanished).
    pub fn note_backup_offered(&mut self) {
        self.checks += 1;
        self.backup_offered += 1;
    }

    /// A packet was stored in the backup ring.
    pub fn note_backup_stored(&mut self, ring: u64) {
        self.checks += 1;
        self.backup_accounted += 1;
        let depth = self.backup_depth.entry(ring).or_insert(0);
        *depth += 1;
        if let Some(&cap) = self.backup_capacity.get(&ring) {
            if *depth > cap {
                let depth = *depth;
                self.violate(
                    "backup-no-silent-overflow",
                    format!("backup ring {ring} depth {depth} exceeds capacity {cap}"),
                );
            }
        }
    }

    /// A packet was drained from the backup ring.
    pub fn note_backup_drained(&mut self, ring: u64) {
        self.checks += 1;
        let depth = self.backup_depth.entry(ring).or_insert(0);
        if *depth == 0 {
            self.violate(
                "backup-no-silent-overflow",
                format!("backup ring {ring} drained while empty"),
            );
        } else {
            *depth -= 1;
        }
    }

    /// A faulting packet was dropped *with accounting* (overflow or
    /// budget exhaustion bumped a counter).
    pub fn note_backup_dropped(&mut self) {
        self.checks += 1;
        self.backup_accounted += 1;
    }

    /// Deferred predicates, evaluated at event-dispatch boundaries.
    pub fn checkpoint(&mut self, now: SimTime) {
        self.note_event_time(now);
        if !self.pending_freed.is_empty() {
            let pending = std::mem::take(&mut self.pending_freed);
            for frame in pending {
                // Re-allocated frames were legitimately recycled.
                if !self.free_frames.contains(&frame) {
                    continue;
                }
                if self.frame_mapcount.get(&frame).copied().unwrap_or(0) > 0 {
                    let stale: Vec<String> = self
                        .mapping
                        .iter()
                        .filter(|(_, &f)| f == frame)
                        .map(|((d, v), _)| format!("domain {d} vpn {v:#x}"))
                        .collect();
                    self.violate(
                        "no-freed-frame-mapped",
                        format!("freed frame {frame} still mapped by {}", stale.join(", ")),
                    );
                }
            }
        }
        if self.backup_accounted != self.backup_offered {
            let (offered, accounted) = (self.backup_offered, self.backup_accounted);
            self.violate(
                "backup-no-silent-overflow",
                format!("{offered} packets offered to backup path, {accounted} accounted"),
            );
            self.backup_accounted = self.backup_offered;
        }
    }

    /// End-of-run predicate: every raised NPF was resolved or aborted.
    /// Call after the testbed quiesces; returns all violations.
    pub fn finish(&mut self) -> &[Violation] {
        if !self.pending_faults.is_empty() {
            let mut ids: Vec<u64> = self.pending_faults.keys().copied().collect();
            ids.sort_unstable();
            self.violate(
                "npf-resolution",
                format!("{} NPFs never resolved or aborted: {ids:?}", ids.len()),
            );
            self.pending_faults.clear();
        }
        &self.violations
    }
}

// ---------------------------------------------------------------------
// Thread-local installation (same pattern as simcore::trace)
// ---------------------------------------------------------------------

thread_local! {
    static CHECKER: RefCell<Option<InvariantChecker>> = const { RefCell::new(None) };
    static CHECKING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Free-function observation API. Every call is one thread-local branch
/// when no checker is installed — cheap enough to leave always-on in
/// production code paths.
pub mod invariant {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::{InvariantChecker, SimTime, CHECKER, CHECKING};

    /// Source of unique namespaces for frame/domain note keys. Every
    /// independent resource pool (one per NPF engine: its frame
    /// allocator and its IOMMU) salts its identifiers with one of
    /// these so a multi-node simulation never aliases node 0's frame 0
    /// with node 1's frame 0 inside one checker.
    static NAMESPACES: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        /// When set, `fresh_namespace` draws from this thread-local
        /// counter instead of the process-global one — the sharded
        /// executor scopes each task to a deterministic base so the
        /// salted ids in violation reports don't depend on which
        /// worker constructed which testbed first.
        static NS_NEXT: std::cell::Cell<Option<u64>> =
            const { std::cell::Cell::new(None) };
    }

    /// Allocates a fresh note-key namespace: from the thread's scoped
    /// allocator inside [`with_namespace_base`], else from the
    /// process-global counter.
    #[must_use]
    pub fn fresh_namespace() -> u64 {
        if let Some(next) = NS_NEXT.with(std::cell::Cell::get) {
            NS_NEXT.with(|c| c.set(Some(next + 1)));
            return next;
        }
        NAMESPACES.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs `f` with namespaces allocated sequentially from `base`.
    ///
    /// The sharded executor calls this with a base derived from the
    /// task index, so namespace assignment — and with it every salted
    /// fault/frame/domain id a violation report can mention — is a
    /// function of the task, not of worker scheduling. Bases are
    /// spaced `1 << 20` apart, far above what one task can construct,
    /// and far above what the global counter reaches in practice, so
    /// scoped and global allocations never collide.
    pub fn with_namespace_base<R>(base: u64, f: impl FnOnce() -> R) -> R {
        let prev = NS_NEXT.with(|c| c.replace(Some(base)));
        let r = f();
        NS_NEXT.with(|c| c.set(prev));
        r
    }

    /// Installs `checker` for the current thread, returning the
    /// previous one.
    pub fn install(checker: InvariantChecker) -> Option<InvariantChecker> {
        CHECKING.with(|c| c.set(true));
        CHECKER.with(|slot| slot.borrow_mut().replace(checker))
    }

    /// Removes and returns the current thread's checker.
    pub fn uninstall() -> Option<InvariantChecker> {
        CHECKING.with(|c| c.set(false));
        CHECKER.with(|slot| slot.borrow_mut().take())
    }

    /// `true` when a checker is installed (the one branch paid per
    /// site when checking is off).
    #[inline]
    #[must_use]
    pub fn enabled() -> bool {
        CHECKING.with(std::cell::Cell::get)
    }

    /// Runs `f` against the installed checker, if any.
    pub fn with<R>(f: impl FnOnce(&mut InvariantChecker) -> R) -> Option<R> {
        if !enabled() {
            return None;
        }
        CHECKER.with(|slot| slot.borrow_mut().as_mut().map(f))
    }

    /// See [`InvariantChecker::note_timeline_reset`].
    #[inline]
    pub fn note_timeline_reset() {
        if enabled() {
            with(InvariantChecker::note_timeline_reset);
        }
    }

    /// See [`InvariantChecker::note_event_time`].
    #[inline]
    pub fn note_event_time(now: SimTime) {
        if enabled() {
            with(|c| c.note_event_time(now));
        }
    }

    /// See [`InvariantChecker::checkpoint`].
    #[inline]
    pub fn checkpoint(now: SimTime) {
        if enabled() {
            with(|c| c.checkpoint(now));
        }
    }

    /// See [`InvariantChecker::note_fault_begun`].
    #[inline]
    pub fn note_fault_begun(id: u64, now: SimTime) {
        if enabled() {
            with(|c| c.note_fault_begun(id, now));
        }
    }

    /// See [`InvariantChecker::note_fault_resolved`].
    #[inline]
    pub fn note_fault_resolved(id: u64) {
        if enabled() {
            with(|c| c.note_fault_resolved(id));
        }
    }

    /// See [`InvariantChecker::note_fault_aborted`].
    #[inline]
    pub fn note_fault_aborted(id: u64) {
        if enabled() {
            with(|c| c.note_fault_aborted(id));
        }
    }

    /// See [`InvariantChecker::note_qp_message`].
    #[inline]
    pub fn note_qp_message(stream: u64, seq: u64) {
        if enabled() {
            with(|c| c.note_qp_message(stream, seq));
        }
    }

    /// See [`InvariantChecker::note_frame_allocated`].
    #[inline]
    pub fn note_frame_allocated(frame: u64) {
        if enabled() {
            with(|c| c.note_frame_allocated(frame));
        }
    }

    /// See [`InvariantChecker::note_frame_freed`].
    #[inline]
    pub fn note_frame_freed(frame: u64) {
        if enabled() {
            with(|c| c.note_frame_freed(frame));
        }
    }

    /// See [`InvariantChecker::note_frame_mapped`].
    #[inline]
    pub fn note_frame_mapped(domain: u64, vpn: u64, frame: u64) {
        if enabled() {
            with(|c| c.note_frame_mapped(domain, vpn, frame));
        }
    }

    /// See [`InvariantChecker::note_frame_unmapped`].
    #[inline]
    pub fn note_frame_unmapped(domain: u64, vpn: u64) {
        if enabled() {
            with(|c| c.note_frame_unmapped(domain, vpn));
        }
    }

    /// See [`InvariantChecker::note_domain_destroyed`].
    #[inline]
    pub fn note_domain_destroyed(domain: u64) {
        if enabled() {
            with(|c| c.note_domain_destroyed(domain));
        }
    }

    /// See [`InvariantChecker::note_backup_capacity`].
    #[inline]
    pub fn note_backup_capacity(ring: u64, cap: u64) {
        if enabled() {
            with(|c| c.note_backup_capacity(ring, cap));
        }
    }

    /// See [`InvariantChecker::note_backup_offered`].
    #[inline]
    pub fn note_backup_offered() {
        if enabled() {
            with(|c| c.note_backup_offered());
        }
    }

    /// See [`InvariantChecker::note_backup_stored`].
    #[inline]
    pub fn note_backup_stored(ring: u64) {
        if enabled() {
            with(|c| c.note_backup_stored(ring));
        }
    }

    /// See [`InvariantChecker::note_backup_drained`].
    #[inline]
    pub fn note_backup_drained(ring: u64) {
        if enabled() {
            with(|c| c.note_backup_drained(ring));
        }
    }

    /// See [`InvariantChecker::note_backup_dropped`].
    #[inline]
    pub fn note_backup_dropped() {
        if enabled() {
            with(|c| c.note_backup_dropped());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scoped install/uninstall so a panicking test doesn't leak a
    /// checker into the thread's next test.
    struct Installed;

    impl Installed {
        fn new(seed: u64) -> Installed {
            invariant::install(InvariantChecker::new(seed));
            Installed
        }

        fn finish(self) -> InvariantChecker {
            let mut c = invariant::uninstall().expect("installed");
            c.finish();
            c
        }
    }

    impl Drop for Installed {
        fn drop(&mut self) {
            invariant::uninstall();
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let cfg = ChaosConfig::profile(ChaosProfile::All, 42);
        let mut a = ChaosEngine::new(cfg);
        let mut b = ChaosEngine::new(cfg);
        for _ in 0..500 {
            assert_eq!(a.packet_fate(), b.packet_fate());
            assert_eq!(a.interrupt_fate(), b.interrupt_fate());
            assert_eq!(a.npf_fate(), b.npf_fate());
            assert_eq!(a.memory_fate(), b.memory_fate());
            assert_eq!(a.iommu_fate(), b.iommu_fate());
        }
        assert!(a.total_injected() > 0, "profile must actually inject");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaosEngine::new(ChaosConfig::profile(ChaosProfile::Network, 1));
        let mut b = ChaosEngine::new(ChaosConfig::profile(ChaosProfile::Network, 2));
        let fa: Vec<PacketFate> = (0..200).map(|_| a.packet_fate()).collect();
        let fb: Vec<PacketFate> = (0..200).map(|_| b.packet_fate()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn disabled_config_never_injects() {
        let mut e = ChaosEngine::new(ChaosConfig::disabled());
        for _ in 0..100 {
            assert_eq!(e.packet_fate(), PacketFate::Deliver);
            assert_eq!(e.interrupt_fate(), InterruptFate::Deliver);
            assert_eq!(e.npf_fate(), NpfFate::Normal);
            assert_eq!(e.memory_fate(), MemoryFate::Calm);
            assert_eq!(e.iommu_fate(), IommuFate::None);
        }
        assert_eq!(e.total_injected(), 0);
        assert!(!e.enabled());
    }

    #[test]
    fn every_profile_covers_its_class() {
        for (profile, counter) in [
            (ChaosProfile::Network, "net_drop"),
            (ChaosProfile::Interrupts, "irq_delayed"),
            (ChaosProfile::Npf, "npf_delay"),
            (ChaosProfile::Memory, "mem_burst"),
            (ChaosProfile::Iommu, "iommu_shootdown"),
        ] {
            let mut e = ChaosEngine::new(ChaosConfig::profile(profile, 7));
            for _ in 0..2000 {
                e.packet_fate();
                e.interrupt_fate();
                e.npf_fate();
                e.memory_fate();
                e.iommu_fate();
            }
            assert!(
                e.counters().get(counter) > 0,
                "profile {} never fired {counter}",
                profile.name()
            );
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in ChaosProfile::ALL {
            assert_eq!(ChaosProfile::from_name(p.name()), Some(p));
        }
        assert_eq!(ChaosProfile::from_name("bogus"), None);
    }

    #[test]
    fn time_monotonicity_violation_detected() {
        let guard = Installed::new(9);
        invariant::note_event_time(SimTime::from_micros(10));
        invariant::note_event_time(SimTime::from_micros(5));
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "time-monotonicity");
    }

    #[test]
    fn timeline_reset_forgives_a_clock_restart() {
        // Experiment binaries build testbeds back to back; each new bed
        // restarts sim time at zero. A reset between them must not trip
        // the monotonicity predicate, but going backwards *within* a
        // timeline still must.
        let guard = Installed::new(9);
        invariant::note_event_time(SimTime::from_micros(400));
        invariant::note_timeline_reset();
        invariant::note_event_time(SimTime::from_micros(3));
        invariant::note_event_time(SimTime::from_micros(1));
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "time-monotonicity");
        assert!(c.violations()[0].detail.contains("1"));
    }

    #[test]
    fn unresolved_fault_reported_at_finish() {
        let guard = Installed::new(9);
        invariant::note_fault_begun(1, SimTime::from_micros(1));
        invariant::note_fault_begun(2, SimTime::from_micros(2));
        invariant::note_fault_resolved(1);
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "npf-resolution");
        assert!(c.violations()[0].detail.contains("[2]"));
    }

    #[test]
    fn out_of_order_delivery_detected() {
        let guard = Installed::new(9);
        invariant::note_qp_message(1, 1);
        invariant::note_qp_message(1, 2);
        invariant::note_qp_message(1, 2); // duplicate delivery
        invariant::note_qp_message(2, 1); // independent stream is fine
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "rc-exactly-once");
    }

    #[test]
    fn freed_frame_mapping_detected_at_checkpoint() {
        let guard = Installed::new(9);
        invariant::note_frame_allocated(7);
        invariant::note_frame_mapped(0, 0x10, 7);
        invariant::note_frame_freed(7);
        // The unmap never happens: next checkpoint must flag it.
        invariant::checkpoint(SimTime::from_micros(1));
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "no-freed-frame-mapped");
    }

    #[test]
    fn freed_then_unmapped_frame_is_clean() {
        let guard = Installed::new(9);
        invariant::note_frame_allocated(7);
        invariant::note_frame_mapped(0, 0x10, 7);
        invariant::note_frame_freed(7);
        invariant::note_frame_unmapped(0, 0x10); // invalidation flow ran
        invariant::checkpoint(SimTime::from_micros(1));
        let c = guard.finish();
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn mapping_a_free_frame_detected_immediately() {
        let guard = Installed::new(9);
        invariant::note_frame_allocated(3);
        invariant::note_frame_freed(3);
        invariant::note_frame_mapped(0, 0x20, 3);
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "no-freed-frame-mapped");
    }

    #[test]
    fn backup_depth_bounded_by_capacity() {
        let guard = Installed::new(9);
        invariant::note_backup_capacity(0, 2);
        invariant::note_backup_offered();
        invariant::note_backup_stored(0);
        invariant::note_backup_offered();
        invariant::note_backup_stored(0);
        invariant::note_backup_offered();
        invariant::note_backup_stored(0); // over capacity
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "backup-no-silent-overflow");
    }

    #[test]
    fn silent_backup_drop_detected() {
        let guard = Installed::new(9);
        invariant::note_backup_capacity(0, 8);
        invariant::note_backup_offered();
        // Neither stored nor dropped-with-accounting.
        invariant::checkpoint(SimTime::from_micros(1));
        let c = guard.finish();
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "backup-no-silent-overflow");
    }

    #[test]
    fn accounted_backup_flow_is_clean() {
        let guard = Installed::new(9);
        invariant::note_backup_capacity(0, 1);
        invariant::note_backup_offered();
        invariant::note_backup_stored(0);
        invariant::note_backup_offered();
        invariant::note_backup_dropped(); // overflow, but counted
        invariant::note_backup_drained(0);
        invariant::checkpoint(SimTime::from_micros(1));
        let c = guard.finish();
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn notes_are_noops_without_checker() {
        assert!(!invariant::enabled());
        invariant::note_event_time(SimTime::from_micros(1));
        invariant::note_qp_message(0, 99);
        invariant::note_frame_freed(1);
        invariant::checkpoint(SimTime::from_micros(2));
        assert!(invariant::uninstall().is_none());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = ChaosEngine::new(ChaosConfig::profile(ChaosProfile::Network, 3));
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let fa: Vec<PacketFate> = (0..100).map(|_| a.packet_fate()).collect();
        let fb: Vec<PacketFate> = (0..100).map(|_| b.packet_fate()).collect();
        assert_ne!(fa, fb);
    }
}
