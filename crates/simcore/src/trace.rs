//! simtrace: deterministic tracing + metrics for the whole DES.
//!
//! Every record is stamped with [`SimTime`], never wall-clock time, so a
//! given seed produces a byte-identical trace — traces are diffable
//! regression artifacts. The subsystem has three layers:
//!
//! 1. **Records** — completed spans (with parent links for nesting),
//!    instantaneous events, and counter samples, collected in a bounded
//!    ring buffer ([`TraceRecorder`]). On overflow the *oldest* records
//!    are dropped and counted, never the newest (the tail of a run is
//!    usually what you are debugging).
//! 2. **Metrics** — a [`MetricsRegistry`] of named counters, gauges,
//!    duration histograms, time series, and throughput meters, reusing
//!    the [`crate::stats`] types so experiments and tracing share one
//!    definition of "p99".
//! 3. **Exporters** — Chrome trace-event JSON (loadable in Perfetto or
//!    `chrome://tracing`) and flat JSON/CSV metric summaries, all with
//!    deterministic field ordering.
//!
//! Instrumented code calls the free functions ([`span`], [`instant`],
//! [`counter`], [`metrics`], ...). They are no-ops until a recorder is
//! installed for the current thread with [`install`]; the disabled path
//! is a single thread-local flag check, so always-on instrumentation
//! costs nothing measurable in the hot paths.
//!
//! # Examples
//!
//! ```
//! use simcore::trace::{self, TraceRecorder};
//! use simcore::time::{SimDuration, SimTime};
//!
//! trace::install(TraceRecorder::new(1024));
//! let parent = trace::begin(SimTime::ZERO, "npf", "npf");
//! trace::end(SimTime::from_micros(220));
//! let rec = trace::uninstall().expect("installed above");
//! assert_eq!(rec.spans().count(), 1);
//! assert!(parent.is_some());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use crate::stats::{DurationHistogram, ThroughputMeter, TimeSeries};
use crate::time::{SimDuration, SimTime};

/// Identifier of a span within one recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A typed argument value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Float (formatted with enough digits to round-trip deterministically).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

/// Named arguments on a record.
pub type Args = Vec<(&'static str, ArgValue)>;

/// One entry in the trace ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A completed span `[start, start + duration)`.
    Span {
        /// Span identity (unique within the recorder).
        id: SpanId,
        /// Enclosing span, for nesting.
        parent: Option<SpanId>,
        /// Start instant.
        start: SimTime,
        /// Length of the span.
        duration: SimDuration,
        /// Track (subsystem lane): `"npf"`, `"nicsim"`, `"iommu"`, ...
        track: &'static str,
        /// Span name within the track.
        name: &'static str,
        /// Attached arguments.
        args: Args,
    },
    /// An instantaneous event.
    Instant {
        /// When it happened.
        at: SimTime,
        /// Track (subsystem lane).
        track: &'static str,
        /// Event name.
        name: &'static str,
        /// Attached arguments.
        args: Args,
    },
    /// A sampled counter/gauge value (graphed by Perfetto).
    Counter {
        /// Sample instant.
        at: SimTime,
        /// Track (subsystem lane).
        track: &'static str,
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
}

impl TraceRecord {
    /// The record's timestamp (span start for spans).
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceRecord::Span { start, .. } => *start,
            TraceRecord::Instant { at, .. } | TraceRecord::Counter { at, .. } => *at,
        }
    }
}

/// Interned handle for one metric name inside a [`MetricsRegistry`].
///
/// Resolve once with [`MetricsRegistry::metric_id`] (or implicitly via
/// the string-keyed update methods), then update through the `*_id`
/// methods: those are plain array indexing — no hashing, no allocation
/// — which is what the event-dispatch hot paths use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(u32);

impl MetricId {
    /// The id's dense index (ids are handed out contiguously from 0).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The id→name table: one id space shared by every metric kind.
#[derive(Debug, Clone, Default)]
struct NameTable {
    lookup: HashMap<Box<str>, MetricId>,
    names: Vec<Box<str>>,
}

impl NameTable {
    fn intern(&mut self, name: &str) -> MetricId {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = MetricId(u32::try_from(self.names.len()).expect("metric names exceed u32"));
        self.names.push(name.into());
        self.lookup.insert(name.into(), id);
        id
    }

    fn get(&self, name: &str) -> Option<MetricId> {
        self.lookup.get(name).copied()
    }

    fn name(&self, id: MetricId) -> &str {
        &self.names[id.index()]
    }
}

/// Grows `storage` so `id` indexes into it, filling with `None`.
fn slot_mut<T>(storage: &mut Vec<Option<T>>, id: MetricId) -> &mut Option<T> {
    if storage.len() <= id.index() {
        storage.resize_with(id.index() + 1, || None);
    }
    &mut storage[id.index()]
}

fn slot<T>(storage: &[Option<T>], id: MetricId) -> Option<&T> {
    storage.get(id.index()).and_then(Option::as_ref)
}

/// Registry of named metrics, built on the [`crate::stats`] types so
/// workloads stop hand-threading histograms where a recorder is
/// available.
///
/// Names are interned into [`MetricId`]s resolved once; every update is
/// then an array index into dense per-kind storage. Exports iterate the
/// id→name table in name order, so the JSON/CSV output is byte-identical
/// to the historical `BTreeMap`-keyed layout.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    names: NameTable,
    counters: Vec<Option<u64>>,
    gauges: Vec<Option<f64>>,
    histograms: Vec<Option<DurationHistogram>>,
    series: Vec<Option<TimeSeries>>,
    throughput: Vec<Option<ThroughputMeter>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Interns `name`, returning its stable id. Idempotent: the same
    /// name always yields the same id within one registry.
    pub fn metric_id(&mut self, name: &str) -> MetricId {
        self.names.intern(name)
    }

    /// The name behind `id` (ids come from [`MetricsRegistry::metric_id`]).
    #[must_use]
    pub fn metric_name(&self, id: MetricId) -> &str {
        self.names.name(id)
    }

    /// Ids of every metric of one kind, sorted by name — the export
    /// order (and the historical `BTreeMap` iteration order).
    fn sorted_ids<T>(&self, storage: &[Option<T>]) -> Vec<MetricId> {
        let mut ids: Vec<MetricId> = (0..storage.len())
            .filter(|&i| storage[i].is_some())
            .map(|i| MetricId(i as u32))
            .collect();
        ids.sort_unstable_by(|&a, &b| self.names.name(a).cmp(self.names.name(b)));
        ids
    }

    /// Adds `n` to the monotonic counter `name`.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let id = self.names.intern(name);
        self.counter_add_id(id, n);
    }

    /// Adds `n` to the counter behind a pre-interned id: array-indexed,
    /// zero allocation.
    pub fn counter_add_id(&mut self, id: MetricId, n: u64) {
        *slot_mut(&mut self.counters, id).get_or_insert(0) += n;
    }

    /// Reads a monotonic counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.names
            .get(name)
            .and_then(|id| slot(&self.counters, id).copied())
            .unwrap_or(0)
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let id = self.names.intern(name);
        self.gauge_set_id(id, value);
    }

    /// Sets the gauge behind a pre-interned id.
    pub fn gauge_set_id(&mut self, id: MetricId, value: f64) {
        *slot_mut(&mut self.gauges, id) = Some(value);
    }

    /// Reads a gauge (its most recent value), if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.names
            .get(name)
            .and_then(|id| slot(&self.gauges, id).copied())
    }

    /// Records a duration sample into histogram `name`.
    pub fn duration_record(&mut self, name: &str, d: SimDuration) {
        let id = self.names.intern(name);
        self.duration_record_id(id, d);
    }

    /// Records a duration sample behind a pre-interned id.
    pub fn duration_record_id(&mut self, id: MetricId, d: SimDuration) {
        slot_mut(&mut self.histograms, id)
            .get_or_insert_with(DurationHistogram::new)
            .record(d);
    }

    /// The duration histogram `name`, creating it if absent.
    pub fn histogram_mut(&mut self, name: &str) -> &mut DurationHistogram {
        let id = self.names.intern(name);
        slot_mut(&mut self.histograms, id).get_or_insert_with(DurationHistogram::new)
    }

    /// Appends a `(time, value)` point to series `name`.
    pub fn series_push(&mut self, name: &str, at: SimTime, value: f64) {
        let id = self.names.intern(name);
        self.series_push_id(id, at, value);
    }

    /// Appends a series point behind a pre-interned id.
    pub fn series_push_id(&mut self, id: MetricId, at: SimTime, value: f64) {
        slot_mut(&mut self.series, id)
            .get_or_insert_with(TimeSeries::new)
            .push(at, value);
    }

    /// The time series `name`, if any points were pushed.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.names.get(name).and_then(|id| slot(&self.series, id))
    }

    /// Records `n` completed operations on throughput meter `name`.
    pub fn throughput_record(&mut self, name: &str, n: u64) {
        let id = self.names.intern(name);
        self.throughput_record_id(id, n);
    }

    /// Records completed operations behind a pre-interned id.
    pub fn throughput_record_id(&mut self, id: MetricId, n: u64) {
        slot_mut(&mut self.throughput, id)
            .get_or_insert_with(ThroughputMeter::new)
            .record(n);
    }

    /// Closes the sampling window of throughput meter `name` at `now`.
    pub fn throughput_sample(&mut self, name: &str, now: SimTime) {
        let id = self.names.intern(name);
        slot_mut(&mut self.throughput, id)
            .get_or_insert_with(ThroughputMeter::new)
            .sample(now);
    }

    /// The throughput meter `name`, if ever recorded.
    #[must_use]
    pub fn throughput(&self, name: &str) -> Option<&ThroughputMeter> {
        self.names
            .get(name)
            .and_then(|id| slot(&self.throughput, id))
    }

    /// Folds `other` into `self` (the parallel experiment runner merges
    /// per-task registries in deterministic task order): counters add,
    /// gauges take `other`'s latest value, histograms and series append,
    /// throughput totals add.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for id in other.sorted_ids(&other.counters) {
            let name = other.names.name(id);
            let n = slot(&other.counters, id).copied().unwrap_or(0);
            self.counter_add(name, n);
        }
        for id in other.sorted_ids(&other.gauges) {
            let name = other.names.name(id);
            if let Some(&v) = slot(&other.gauges, id) {
                self.gauge_set(name, v);
            }
        }
        for id in other.sorted_ids(&other.histograms) {
            let name = other.names.name(id);
            if let Some(h) = slot(&other.histograms, id) {
                self.histogram_mut(name).merge_from(h);
            }
        }
        for id in other.sorted_ids(&other.series) {
            let name = other.names.name(id);
            if let Some(s) = slot(&other.series, id) {
                let my = self.names.intern(name);
                slot_mut(&mut self.series, my)
                    .get_or_insert_with(TimeSeries::new)
                    .extend_from(s);
            }
        }
        for id in other.sorted_ids(&other.throughput) {
            let name = other.names.name(id);
            if let Some(t) = slot(&other.throughput, id) {
                let my = self.names.intern(name);
                slot_mut(&mut self.throughput, my)
                    .get_or_insert_with(ThroughputMeter::new)
                    .merge_from(t);
            }
        }
    }

    /// Flat JSON summary: counters, gauges, histogram percentiles,
    /// series lengths, throughput totals. Deterministic field order
    /// (name-sorted via the id→name table).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for id in self.sorted_ids(&self.counters) {
            let value = slot(&self.counters, id).copied().unwrap_or(0);
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {}",
                escape_json(self.names.name(id)),
                value
            );
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for id in self.sorted_ids(&self.gauges) {
            let Some(&value) = slot(&self.gauges, id) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {}",
                escape_json(self.names.name(id)),
                fmt_f64(value)
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for id in self.sorted_ids(&self.histograms) {
            let Some(hist) = slot(&self.histograms, id) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let mut h = hist.clone();
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
                escape_json(self.names.name(id)),
                h.count(),
                h.percentile(0.50).as_nanos(),
                h.percentile(0.95).as_nanos(),
                h.percentile(0.99).as_nanos(),
                h.percentile(0.999).as_nanos(),
                h.max().as_nanos(),
            );
        }
        out.push_str("\n  },\n  \"series\": {");
        first = true;
        for id in self.sorted_ids(&self.series) {
            let Some(series) = slot(&self.series, id) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"points\": {}}}",
                escape_json(self.names.name(id)),
                series.len()
            );
        }
        out.push_str("\n  },\n  \"throughput\": {");
        first = true;
        for id in self.sorted_ids(&self.throughput) {
            let Some(meter) = slot(&self.throughput, id) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"total\": {}}}",
                escape_json(self.names.name(id)),
                meter.total()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// CSV summary of the scalar metrics: `kind,name,value` rows in
    /// deterministic order.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for id in self.sorted_ids(&self.counters) {
            let name = self.names.name(id);
            let value = slot(&self.counters, id).copied().unwrap_or(0);
            let _ = writeln!(out, "counter,{name},{value}");
        }
        for id in self.sorted_ids(&self.gauges) {
            let name = self.names.name(id);
            if let Some(&value) = slot(&self.gauges, id) {
                let _ = writeln!(out, "gauge,{name},{}", fmt_f64(value));
            }
        }
        for id in self.sorted_ids(&self.histograms) {
            let name = self.names.name(id);
            let Some(hist) = slot(&self.histograms, id) else {
                continue;
            };
            let mut h = hist.clone();
            let _ = writeln!(
                out,
                "histogram_p50_ns,{name},{}",
                h.percentile(0.5).as_nanos()
            );
            let _ = writeln!(
                out,
                "histogram_p999_ns,{name},{}",
                h.percentile(0.999).as_nanos()
            );
            let _ = writeln!(out, "histogram_max_ns,{name},{}", h.max().as_nanos());
        }
        for id in self.sorted_ids(&self.throughput) {
            let name = self.names.name(id);
            if let Some(meter) = slot(&self.throughput, id) {
                let _ = writeln!(out, "throughput_total,{name},{}", meter.total());
            }
        }
        out
    }
}

/// The trace collector: a bounded ring of [`TraceRecord`]s plus the
/// metrics registry and the open-span stack.
#[derive(Debug)]
pub struct TraceRecorder {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    next_span: u64,
    open: Vec<(SpanId, SimTime, &'static str, &'static str, Args)>,
    clock: SimTime,
    metrics: MetricsRegistry,
    /// Interned `track.name` gauge ids for counter samples, so the
    /// hot-path mirror into the metrics registry never re-formats or
    /// re-hashes the joined name. Keyed by the `&'static str` pair —
    /// hashing the string contents, which is correct even if the same
    /// literal has several addresses across codegen units.
    counter_gauges: HashMap<(&'static str, &'static str), MetricId>,
}

impl TraceRecorder {
    /// Creates a recorder holding at most `capacity` records; the oldest
    /// records are dropped (and counted) past that.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            next_span: 0,
            open: Vec::new(),
            clock: SimTime::ZERO,
            metrics: MetricsRegistry::new(),
            counter_gauges: HashMap::new(),
        }
    }

    /// The records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring
            .iter()
            .filter(|r| matches!(r, TraceRecord::Span { .. }))
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded (or everything was dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records dropped to the overflow policy.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorder's logical clock: the latest timestamp it has seen.
    /// Instrumentation points without a `now` in scope stamp with this.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Advances the logical clock (monotone: earlier times are ignored).
    pub fn set_clock(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable metrics access.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Appends every record of `other` to this ring and folds its
    /// metrics in. Span ids (and parent links) are re-based onto this
    /// recorder's id space, so absorbing per-task recorders in task
    /// order yields the same ids a single serial recorder would have
    /// assigned. Used by the parallel experiment runner.
    pub fn absorb(&mut self, other: TraceRecorder) {
        let base = self.next_span;
        let rebase = |id: SpanId| SpanId(base + id.0);
        for record in other.ring {
            let record = match record {
                TraceRecord::Span {
                    id,
                    parent,
                    start,
                    duration,
                    track,
                    name,
                    args,
                } => TraceRecord::Span {
                    id: rebase(id),
                    parent: parent.map(rebase),
                    start,
                    duration,
                    track,
                    name,
                    args,
                },
                other => other,
            };
            self.push(record);
        }
        self.next_span = base + other.next_span;
        self.dropped += other.dropped;
        self.set_clock(other.clock);
        self.metrics.merge_from(&other.metrics);
    }

    fn push(&mut self, record: TraceRecord) {
        self.set_clock(record.at());
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }

    /// Records a completed span with an explicit parent. Returns its id.
    pub fn complete_span(
        &mut self,
        start: SimTime,
        duration: SimDuration,
        track: &'static str,
        name: &'static str,
        parent: Option<SpanId>,
        args: Args,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        // Spans emitted inside an open span nest under it by default.
        let parent = parent.or_else(|| self.open.last().map(|&(id, ..)| id));
        self.set_clock(start + duration);
        self.push(TraceRecord::Span {
            id,
            parent,
            start,
            duration,
            track,
            name,
            args,
        });
        id
    }

    /// Opens a span at `start`; close it with [`TraceRecorder::end_span`].
    /// Spans opened while another is open become its children.
    pub fn begin_span(
        &mut self,
        start: SimTime,
        track: &'static str,
        name: &'static str,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.set_clock(start);
        self.open.push((id, start, track, name, Vec::new()));
        id
    }

    /// Closes the innermost open span at `end`, recording it. Returns
    /// its id, or `None` when no span is open.
    pub fn end_span(&mut self, end: SimTime) -> Option<SpanId> {
        let (id, start, track, name, args) = self.open.pop()?;
        let parent = self.open.last().map(|&(pid, ..)| pid);
        self.push(TraceRecord::Span {
            id,
            parent,
            start,
            duration: end.saturating_since(start),
            track,
            name,
            args,
        });
        Some(id)
    }

    /// Number of spans currently open.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Records an instantaneous event.
    pub fn instant(&mut self, at: SimTime, track: &'static str, name: &'static str, args: Args) {
        self.push(TraceRecord::Instant {
            at,
            track,
            name,
            args,
        });
    }

    /// Records a counter/gauge sample (also mirrored into the metrics
    /// registry as a gauge under `track.name`). The joined gauge name is
    /// interned on first use; subsequent samples are array-indexed.
    pub fn counter(&mut self, at: SimTime, track: &'static str, name: &'static str, value: f64) {
        let id = match self.counter_gauges.get(&(track, name)) {
            Some(&id) => id,
            None => {
                let id = self.metrics.metric_id(&format!("{track}.{name}"));
                self.counter_gauges.insert((track, name), id);
                id
            }
        };
        self.metrics.gauge_set_id(id, value);
        self.push(TraceRecord::Counter {
            at,
            track,
            name,
            value,
        });
    }

    /// Exports the ring as Chrome trace-event JSON (the format Perfetto
    /// and `chrome://tracing` load). Spans map to complete (`"X"`)
    /// events, instants to `"i"`, counter samples to `"C"`; each track
    /// becomes one named thread. Output is deterministic: records appear
    /// in ring order, metadata in track-discovery order.
    #[must_use]
    pub fn export_chrome_json(&self) -> String {
        // Stable track -> tid assignment in order of first appearance.
        let mut tids: Vec<&'static str> = Vec::new();
        let tid_of = |tids: &mut Vec<&'static str>, track: &'static str| -> usize {
            if let Some(i) = tids.iter().position(|&t| t == track) {
                i + 1
            } else {
                tids.push(track);
                tids.len()
            }
        };
        // Drop-oldest eviction can orphan children: a parent span
        // recorded before its children may have been pushed out of the
        // ring while they survive. Emitting their dangling `parent`
        // references would point viewers at a span id that no longer
        // exists, so collect the retained ids and suppress the rest.
        let retained: crate::fxhash::FxHashSet<u64> = self
            .ring
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Span { id, .. } => Some(id.0),
                _ => None,
            })
            .collect();
        let mut body = String::new();
        for record in &self.ring {
            if !body.is_empty() {
                body.push_str(",\n");
            }
            match record {
                TraceRecord::Span {
                    id,
                    parent,
                    start,
                    duration,
                    track,
                    name,
                    args,
                } => {
                    let tid = tid_of(&mut tids, track);
                    let _ = write!(
                        body,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{}",
                        escape_json(name),
                        escape_json(track),
                        fmt_us(start.as_nanos()),
                        fmt_us(duration.as_nanos()),
                        tid,
                        id.0,
                    );
                    if let Some(p) = parent {
                        if retained.contains(&p.0) {
                            let _ = write!(body, ",\"parent\":{}", p.0);
                        }
                    }
                    write_args(&mut body, args);
                    body.push_str("}}");
                }
                TraceRecord::Instant {
                    at,
                    track,
                    name,
                    args,
                } => {
                    let tid = tid_of(&mut tids, track);
                    let _ = write!(
                        body,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{",
                        escape_json(name),
                        escape_json(track),
                        fmt_us(at.as_nanos()),
                        tid,
                    );
                    write_args_first(&mut body, args);
                    body.push_str("}}");
                }
                TraceRecord::Counter {
                    at,
                    track,
                    name,
                    value,
                } => {
                    let tid = tid_of(&mut tids, track);
                    let _ = write!(
                        body,
                        "{{\"name\":\"{}.{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                        escape_json(track),
                        escape_json(name),
                        fmt_us(at.as_nanos()),
                        tid,
                        fmt_f64(*value),
                    );
                }
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, track) in tids.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}},",
                i + 1,
                escape_json(track)
            );
        }
        out.push_str(&body);
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Writes `args` into an open JSON object, comma-prefixing every pair
/// (the caller has already written at least one field).
fn write_args(body: &mut String, args: &Args) {
    write_args_inner(body, args, true);
}

/// Writes `args` as the first fields of an open JSON object.
fn write_args_first(body: &mut String, args: &Args) {
    write_args_inner(body, args, false);
}

fn write_args_inner(body: &mut String, args: &Args, mut need_comma: bool) {
    for (key, value) in args {
        if need_comma {
            body.push(',');
        }
        need_comma = true;
        let _ = write!(body, "\"{}\":", escape_json(key));
        match value {
            ArgValue::U64(v) => {
                let _ = write!(body, "{v}");
            }
            ArgValue::F64(v) => {
                let _ = write!(body, "{}", fmt_f64(*v));
            }
            ArgValue::Bool(v) => {
                let _ = write!(body, "{v}");
            }
            ArgValue::Str(v) => {
                let _ = write!(body, "\"{}\"", escape_json(v));
            }
        }
    }
}

/// Formats nanoseconds as microseconds with exact thousandths, the
/// Chrome trace time unit.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Deterministic float formatting for JSON (finite values only; the
/// simulator never records NaN/inf — they would not be valid JSON).
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite metric value");
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<TraceRecorder>> = const { RefCell::new(None) };
}

/// Installs `recorder` as the current thread's sink, enabling the
/// instrumentation free functions. Replaces (and returns) any previous
/// recorder.
pub fn install(recorder: TraceRecorder) -> Option<TraceRecorder> {
    ENABLED.with(|e| e.set(true));
    RECORDER.with(|r| r.borrow_mut().replace(recorder))
}

/// Removes and returns the current thread's recorder, disabling tracing.
pub fn uninstall() -> Option<TraceRecorder> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// `true` when a recorder is installed on this thread.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Runs `f` against the installed recorder, if any. The no-recorder
/// path is a single thread-local flag check.
#[inline]
pub fn with<F: FnOnce(&mut TraceRecorder)>(f: F) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Records a completed span (explicit start + duration); returns its id
/// when tracing is enabled.
pub fn span(
    start: SimTime,
    duration: SimDuration,
    track: &'static str,
    name: &'static str,
    args: Args,
) -> Option<SpanId> {
    let mut out = None;
    with(|t| out = Some(t.complete_span(start, duration, track, name, None, args)));
    out
}

/// Records a completed span nested under `parent`.
pub fn child_span(
    start: SimTime,
    duration: SimDuration,
    track: &'static str,
    name: &'static str,
    parent: SpanId,
    args: Args,
) -> Option<SpanId> {
    let mut out = None;
    with(|t| out = Some(t.complete_span(start, duration, track, name, Some(parent), args)));
    out
}

/// Opens a span; close it with [`end`].
pub fn begin(start: SimTime, track: &'static str, name: &'static str) -> Option<SpanId> {
    let mut out = None;
    with(|t| out = Some(t.begin_span(start, track, name)));
    out
}

/// Closes the innermost open span.
pub fn end(at: SimTime) -> Option<SpanId> {
    let mut out = None;
    with(|t| out = t.end_span(at));
    out
}

/// Records an instantaneous event.
pub fn instant(at: SimTime, track: &'static str, name: &'static str, args: Args) {
    with(|t| t.instant(at, track, name, args));
}

/// Records an instantaneous event stamped with the recorder's logical
/// clock — for call sites with no `now` in scope.
pub fn instant_now(track: &'static str, name: &'static str, args: Args) {
    with(|t| {
        let at = t.clock();
        t.instant(at, track, name, args);
    });
}

/// Records a counter/gauge sample.
pub fn counter(at: SimTime, track: &'static str, name: &'static str, value: f64) {
    with(|t| t.counter(at, track, name, value));
}

/// Records a counter/gauge sample stamped with the logical clock.
pub fn counter_now(track: &'static str, name: &'static str, value: f64) {
    with(|t| {
        let at = t.clock();
        t.counter(at, track, name, value);
    });
}

/// Advances the installed recorder's logical clock.
pub fn set_clock(now: SimTime) {
    with(|t| t.set_clock(now));
}

/// Runs `f` against the installed recorder's metrics registry.
#[inline]
pub fn metrics<F: FnOnce(&mut MetricsRegistry)>(f: F) {
    with(|t| f(t.metrics_mut()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(capacity: usize) -> TraceRecorder {
        TraceRecorder::new(capacity)
    }

    #[test]
    fn complete_spans_record_in_order() {
        let mut t = fresh(16);
        let a = t.complete_span(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            "x",
            "a",
            None,
            Vec::new(),
        );
        let b = t.complete_span(
            SimTime::from_micros(10),
            SimDuration::from_micros(5),
            "x",
            "b",
            None,
            Vec::new(),
        );
        assert_ne!(a, b);
        let names: Vec<&str> = t
            .records()
            .map(|r| match r {
                TraceRecord::Span { name, .. } => *name,
                _ => panic!("span expected"),
            })
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(t.clock(), SimTime::from_micros(15));
    }

    #[test]
    fn open_spans_nest_and_attribute_parents() {
        let mut t = fresh(16);
        let outer = t.begin_span(SimTime::ZERO, "x", "outer");
        let inner = t.begin_span(SimTime::from_micros(2), "x", "inner");
        assert_eq!(t.open_spans(), 2);
        assert_eq!(t.end_span(SimTime::from_micros(8)), Some(inner));
        assert_eq!(t.end_span(SimTime::from_micros(10)), Some(outer));
        assert_eq!(t.end_span(SimTime::from_micros(11)), None);

        // The inner span closed first, so it appears first, with the
        // outer id as its parent.
        let spans: Vec<(&str, Option<SpanId>, SimDuration)> = t
            .records()
            .map(|r| match r {
                TraceRecord::Span {
                    name,
                    parent,
                    duration,
                    ..
                } => (*name, *parent, *duration),
                _ => panic!("span expected"),
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                ("inner", Some(outer), SimDuration::from_micros(6)),
                ("outer", None, SimDuration::from_micros(10)),
            ]
        );
    }

    #[test]
    fn complete_span_inside_open_span_nests() {
        let mut t = fresh(16);
        let outer = t.begin_span(SimTime::ZERO, "x", "outer");
        t.complete_span(
            SimTime::from_micros(1),
            SimDuration::from_micros(2),
            "x",
            "leaf",
            None,
            Vec::new(),
        );
        t.end_span(SimTime::from_micros(5));
        let TraceRecord::Span { parent, .. } = t.records().next().expect("leaf") else {
            panic!("span expected");
        };
        assert_eq!(*parent, Some(outer));
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let mut t = fresh(3);
        for i in 0..5u64 {
            t.instant(
                SimTime::from_nanos(i),
                "x",
                "e",
                vec![("i", ArgValue::U64(i))],
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.records().next().expect("nonempty");
        assert_eq!(first.at(), SimTime::from_nanos(2), "oldest two dropped");
    }

    #[test]
    fn counters_mirror_into_gauges() {
        let mut t = fresh(8);
        t.counter(SimTime::from_micros(1), "nic", "depth", 3.0);
        t.counter(SimTime::from_micros(2), "nic", "depth", 5.0);
        assert_eq!(t.metrics().gauge("nic.depth"), Some(5.0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clock_is_monotone() {
        let mut t = fresh(8);
        t.set_clock(SimTime::from_micros(10));
        t.set_clock(SimTime::from_micros(5));
        assert_eq!(t.clock(), SimTime::from_micros(10));
        t.instant(SimTime::from_micros(20), "x", "e", Vec::new());
        assert_eq!(t.clock(), SimTime::from_micros(20));
    }

    #[test]
    fn chrome_export_shape() {
        let mut t = fresh(8);
        let id = t.complete_span(
            SimTime::from_micros(1),
            SimDuration::from_micros(2),
            "npf",
            "fault",
            None,
            vec![("pages", ArgValue::U64(4))],
        );
        t.instant(SimTime::from_micros(3), "npf", "bang", Vec::new());
        t.counter(SimTime::from_micros(4), "nic", "depth", 1.5);
        let json = t.export_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains(&format!("\"span_id\":{}", id.0)));
        assert!(json.contains("\"pages\":4"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("\"nic.depth\""));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}\n"));
    }

    #[test]
    fn install_uninstall_roundtrip() {
        assert!(!enabled());
        assert!(install(fresh(4)).is_none());
        assert!(enabled());
        span(
            SimTime::ZERO,
            SimDuration::from_micros(1),
            "x",
            "s",
            Vec::new(),
        )
        .expect("recorder installed");
        let rec = uninstall().expect("was installed");
        assert!(!enabled());
        assert_eq!(rec.len(), 1);
        // Free functions are no-ops now.
        assert!(span(
            SimTime::ZERO,
            SimDuration::from_micros(1),
            "x",
            "s",
            Vec::new()
        )
        .is_none());
        instant(SimTime::ZERO, "x", "e", Vec::new());
        assert!(uninstall().is_none());
    }

    #[test]
    fn metrics_registry_wires_stats_types() {
        let mut m = MetricsRegistry::new();
        m.counter_add("faults", 3);
        m.gauge_set("depth", 2.5);
        m.duration_record("latency", SimDuration::from_micros(220));
        m.series_push("cwnd", SimTime::from_secs(1), 10.0);
        m.throughput_record("ops", 100);
        m.throughput_sample("ops", SimTime::from_secs(1));
        assert_eq!(m.counter("faults"), 3);
        assert_eq!(m.gauge("depth"), Some(2.5));
        assert_eq!(
            m.histogram_mut("latency").median(),
            SimDuration::from_micros(220)
        );
        assert_eq!(m.series("cwnd").map(TimeSeries::len), Some(1));
        assert_eq!(m.throughput("ops").map(ThroughputMeter::total), Some(100));
        let json = m.to_json();
        assert!(json.contains("\"faults\": 3"));
        assert!(json.contains("\"p50_ns\": 220000"));
        let csv = m.to_csv();
        assert!(csv.starts_with("kind,name,value\n"));
        assert!(csv.contains("counter,faults,3"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(fmt_us(1_234_567), "1234.567");
        assert_eq!(fmt_us(999), "0.999");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.25), "0.25");
    }

    #[test]
    fn ring_wrap_mid_span_suppresses_dangling_parent_refs() {
        // Capacity 2: the parent span is recorded first, then enough
        // children wrap the ring and evict it mid-hierarchy.
        let mut r = TraceRecorder::new(2);
        let parent = r.complete_span(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            "npf",
            "npf",
            None,
            Vec::new(),
        );
        for i in 0..3u64 {
            r.complete_span(
                SimTime::from_micros(i),
                SimDuration::from_micros(1),
                "npf",
                "child",
                Some(parent),
                Vec::new(),
            );
        }
        assert_eq!(r.dropped(), 2, "parent and first child evicted");
        let json = r.export_chrome_json();
        // The surviving children's parent reference would dangle; the
        // export must not emit it.
        assert!(
            !json.contains("\"parent\""),
            "dangling parent emitted: {json}"
        );
        assert_eq!(json.matches("\"child\"").count(), 2, "{json}");

        // A surviving parent keeps its children's references.
        let mut r = TraceRecorder::new(8);
        let parent = r.complete_span(
            SimTime::ZERO,
            SimDuration::from_micros(10),
            "npf",
            "npf",
            None,
            Vec::new(),
        );
        r.complete_span(
            SimTime::from_micros(1),
            SimDuration::from_micros(1),
            "npf",
            "child",
            Some(parent),
            Vec::new(),
        );
        assert!(r.export_chrome_json().contains("\"parent\""));
    }

    #[test]
    fn merge_from_histograms_commute_in_summaries() {
        // Exact-sample histograms append on merge, so the *samples*
        // depend on order but every summary statistic must not.
        let build = |first: &[u64], second: &[u64]| {
            let mut a = MetricsRegistry::new();
            for &ns in first {
                a.duration_record("npf.latency", SimDuration::from_nanos(ns));
            }
            let mut b = MetricsRegistry::new();
            for &ns in second {
                b.duration_record("npf.latency", SimDuration::from_nanos(ns));
            }
            a.merge_from(&b);
            a
        };
        let xs = [400u64, 100, 900, 250];
        let ys = [700u64, 50, 300];
        let ab = build(&xs, &ys);
        let ba = build(&ys, &xs);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.to_csv(), ba.to_csv());
        assert!(
            ab.to_json().contains("\"p999_ns\": 900"),
            "{}",
            ab.to_json()
        );
        assert!(ab.to_json().contains("\"max_ns\": 900"));
        assert!(ab.to_csv().contains("histogram_p999_ns,npf.latency,900"));
    }

    #[test]
    fn merge_from_series_and_throughput_are_deterministic_in_task_order() {
        let part = |base: u64| {
            let mut m = MetricsRegistry::new();
            m.series_push("cwnd", SimTime::from_nanos(base), base as f64);
            m.throughput_record("ops", base);
            m.counter_add("faults", base);
            m
        };
        // Task-order merge (what par_runner does) is reproducible:
        // merging the same parts in the same order twice is identical.
        let merge_all = |parts: &[u64]| {
            let mut m = MetricsRegistry::new();
            for &p in parts {
                m.merge_from(&part(p));
            }
            m
        };
        let once = merge_all(&[3, 1, 2]);
        let twice = merge_all(&[3, 1, 2]);
        assert_eq!(once.to_json(), twice.to_json());
        assert_eq!(once.to_csv(), twice.to_csv());
        // Counters and throughput totals are order-free; check both
        // orders agree on everything their exports show.
        let fwd = merge_all(&[1, 2, 3]);
        let rev = merge_all(&[3, 2, 1]);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert_eq!(
            fwd.throughput("ops").map(ThroughputMeter::total),
            Some(6u64)
        );
        assert_eq!(fwd.series("cwnd").map(TimeSeries::len), Some(3));
    }
}
