//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default `SipHash` is DoS-resistant but costs tens of cycles
//! per key — measurable on the per-packet fast paths (IOTLB index,
//! key-value store, per-connection timer maps). The simulator needs no
//! DoS resistance: keys are small integers or tuples of them, generated
//! by the simulation itself. This multiplicative hasher (the FxHash
//! construction used by rustc) is a few cycles per word and — unlike
//! `RandomState` — has **no per-process seed**, so map layout is
//! identical across runs and machines. Observable behaviour must still
//! never depend on map iteration order; determinism comes from the
//! discipline of iterating sorted or intrusive structures, the fixed
//! seed just removes one source of accidental run-to-run variation.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (FxHash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / golden ratio, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with the deterministic [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(h: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut hasher = FxHasher::default();
        h(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hash_of(|h| h.write_u64(0xdead_beef));
        let b = hash_of(|h| h.write_u64(0xdead_beef));
        assert_eq!(a, b);
        assert_ne!(a, hash_of(|h| h.write_u64(0xdead_bef0)));
    }

    #[test]
    fn byte_stream_tail_lengths_disambiguate() {
        // A trailing zero byte must hash differently from its absence
        // (the length tag in the tail word).
        let a = hash_of(|h| h.write(&[1, 2, 3]));
        let b = hash_of(|h| h.write(&[1, 2, 3, 0]));
        assert_ne!(a, b);
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<(u32, u64), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as u32 % 7, i), i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(3, 10)), Some(&30));
        assert_eq!(m.remove(&(3, 10)), Some(30));
        assert_eq!(m.get(&(3, 10)), None);
    }
}
