//! Deterministic event queue.
//!
//! Every testbed owns exactly one [`EventQueue`]; it is the only source of
//! time advancement in a simulation. Events scheduled for the same instant
//! are popped in FIFO order of scheduling (a monotone sequence number breaks
//! ties), which makes runs bit-for-bit reproducible.
//!
//! # Examples
//!
//! ```
//! use simcore::event::EventQueue;
//! use simcore::time::{SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_at(SimTime::from_micros(5), "b");
//! q.schedule_at(SimTime::from_micros(1), "a");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle identifying a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// A time-ordered queue of simulation events.
///
/// `E` is the testbed-specific event type. The queue tracks the current
/// simulated time: popping an event advances [`EventQueue::now`] to the
/// event's timestamp. Scheduling in the past is clamped to `now` (the
/// event fires "immediately", still in deterministic order).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    pending: std::collections::HashSet<u64>,
    cancelled: std::collections::HashSet<u64>,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped (delivered).
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Schedules `event` at absolute time `at`. Times in the past are
    /// clamped to `now`. Returns a token usable with [`EventQueue::cancel`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        let at = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending.insert(seq);
        let token = EventToken(seq);
        self.heap.push(Entry { at, seq, event });
        token
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Schedules `event` to fire at the current time, after any events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventToken {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending. Cancelling twice, or cancelling an event that
    /// already fired, returns `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.pending.remove(&token.0) {
            return false;
        }
        // Lazily mark; the entry is skipped at pop time.
        self.cancelled.insert(token.0);
        true
    }

    /// Removes and returns the next event along with its timestamp,
    /// advancing the simulated clock. Returns `None` when the queue is
    /// drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "time must be monotone");
            self.pending.remove(&entry.seq);
            self.now = entry.at;
            self.popped_total += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the next pending event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Discards all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), "late");
        q.pop();
        q.schedule_at(SimTime::from_micros(1), "clamped");
        let (t, e) = q.pop().expect("event");
        assert_eq!(e, "clamped");
        assert_eq!(t, SimTime::from_micros(10));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        q.schedule_at(SimTime::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // Cancelling now must not poison a future event that reuses state.
        assert!(!q.cancel(a), "cancelling a fired event reports false");
        q.schedule_at(SimTime::from_nanos(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(100), "first");
        q.pop();
        q.schedule_in(SimDuration::from_micros(50), "second");
        let (t, _) = q.pop().expect("event");
        assert_eq!(t, SimTime::from_micros(150));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        q.schedule_at(SimTime::from_nanos(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule_now(1);
        q.schedule_now(2);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
