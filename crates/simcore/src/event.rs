//! Deterministic event queue.
//!
//! Every testbed owns exactly one [`EventQueue`]; it is the only source of
//! time advancement in a simulation. Events scheduled for the same instant
//! are popped in FIFO order of scheduling (a monotone sequence number breaks
//! ties), which makes runs bit-for-bit reproducible.
//!
//! # Cancellation bookkeeping
//!
//! Cancellation is O(1) and hash-free: every scheduled event owns a slot in
//! a generation-tagged slab, and its heap entry carries the slot index.
//! [`EventQueue::cancel`] flips the slot to a tombstone; tombstoned entries
//! are dropped from the heap lazily, with a counter keeping [`EventQueue::len`]
//! exact. The queue maintains the invariant that the heap *top* is never a
//! tombstone (tombstones are drained whenever they surface), so
//! [`EventQueue::next_time`] is a non-mutating O(1) peek. Slot generations
//! make stale tokens — from events that already fired, were cancelled, or
//! were discarded by [`EventQueue::clear`] — harmless even after their slot
//! is reused.
//!
//! # Examples
//!
//! ```
//! use simcore::event::EventQueue;
//! use simcore::time::{SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_at(SimTime::from_micros(5), "b");
//! q.schedule_at(SimTime::from_micros(1), "a");
//! assert_eq!(q.next_time(), Some(SimTime::from_micros(1)));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
//! assert!(q.pop().is_none());
//! ```

use crate::time::{SimDuration, SimTime};

/// A heap entry: delivery key plus the slab slot holding the payload.
///
/// Payloads live in the slot slab, not the heap (a SoA split): sift
/// operations move 24-byte keys instead of whole event structs, so the
/// hot loop's swaps stay within a couple of cache lines even for large
/// event enums (a testbed event embedding a TCP segment is >100 bytes).
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    /// Total order of delivery: earliest time first, FIFO within an
    /// instant. `seq` is unique, so the order is total and the pop
    /// sequence is independent of heap shape.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A flat 4-ary min-heap ordered by [`Entry::key`].
///
/// Half the levels of a binary heap for the same population: pops touch
/// fewer cache lines, and the event queue is the single hottest
/// structure in every testbed. Four sibling keys share adjacent slots,
/// so the widest sift-down level is one or two cache lines.
#[derive(Debug)]
struct MinHeap {
    v: Vec<Entry>,
}

impl MinHeap {
    const ARITY: usize = 4;

    fn new() -> Self {
        MinHeap { v: Vec::new() }
    }

    fn len(&self) -> usize {
        self.v.len()
    }

    fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    fn peek(&self) -> Option<&Entry> {
        self.v.first()
    }

    fn clear(&mut self) {
        self.v.clear();
    }

    fn push(&mut self, entry: Entry) {
        self.v.push(entry);
        let mut i = self.v.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.v[parent].key() <= self.v[i].key() {
                break;
            }
            self.v.swap(parent, i);
            i = parent;
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        let last = self.v.len().checked_sub(1)?;
        self.v.swap(0, last);
        let top = self.v.pop();
        let len = self.v.len();
        let mut i = 0;
        loop {
            let first = i * Self::ARITY + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + Self::ARITY).min(len);
            for c in first + 1..end {
                if self.v[c].key() < self.v[min].key() {
                    min = c;
                }
            }
            if self.v[i].key() <= self.v[min].key() {
                break;
            }
            self.v.swap(i, min);
            i = min;
        }
        top
    }
}

/// Handle identifying a scheduled event so it can be cancelled.
///
/// Encodes a slab slot index plus the slot's generation at scheduling
/// time, so a token outlives its event harmlessly: cancelling after the
/// event fired (or after the slot was recycled) reports `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(slot: u32, gen: u32) -> Self {
        EventToken(u64::from(gen) << 32 | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Occupancy of one slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// The slot's event is scheduled and live.
    Pending,
    /// The slot's event was cancelled; its heap entry is a tombstone.
    Cancelled,
    /// No event owns the slot (it is on the free list).
    Free,
}

#[derive(Debug)]
struct Slot<E> {
    /// Bumped every time the slot is released, invalidating old tokens.
    gen: u32,
    state: SlotState,
    /// Next slot on the free list (valid only when `state == Free`).
    next_free: u32,
    /// The scheduled payload (present while `state == Pending`; dropped
    /// eagerly on cancel so tombstones hold no event data).
    event: Option<E>,
}

const NIL: u32 = u32::MAX;

/// A time-ordered queue of simulation events.
///
/// `E` is the testbed-specific event type. The queue tracks the current
/// simulated time: popping an event advances [`EventQueue::now`] to the
/// event's timestamp. Scheduling in the past is clamped to `now` (the
/// event fires "immediately", still in deterministic order).
///
/// # Accounting
///
/// The lifetime counters always satisfy
///
/// ```text
/// scheduled_total == popped_total + cancelled_total + discarded_total + len()
/// ```
///
/// where [`EventQueue::discarded_total`] counts events dropped by
/// [`EventQueue::clear`].
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: MinHeap,
    now: SimTime,
    next_seq: u64,
    slots: Vec<Slot<E>>,
    free_head: u32,
    /// Cancelled entries still sitting in the heap.
    tombstones: usize,
    scheduled_total: u64,
    popped_total: u64,
    cancelled_total: u64,
    discarded_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: MinHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            slots: Vec::new(),
            free_head: NIL,
            tombstones: 0,
            scheduled_total: 0,
            popped_total: 0,
            cancelled_total: 0,
            discarded_total: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstones
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // The heap top is never a tombstone, so a non-empty heap always
        // holds at least one pending event.
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped (delivered).
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Total number of events ever cancelled.
    #[must_use]
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Total number of pending events discarded by [`EventQueue::clear`].
    #[must_use]
    pub fn discarded_total(&self) -> u64 {
        self.discarded_total
    }

    /// Takes a slot off the free list (or grows the slab), marks it
    /// pending, and parks the payload there. Returns the slot index.
    fn alloc_slot(&mut self, event: E) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            self.free_head = slot.next_free;
            slot.state = SlotState::Pending;
            slot.event = Some(event);
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Pending,
                next_free: NIL,
                event: Some(event),
            });
            idx
        }
    }

    /// Releases a slot whose heap entry was just removed: bumps the
    /// generation (invalidating outstanding tokens), takes whatever
    /// payload is still parked, and pushes the slot onto the free list.
    fn free_slot(&mut self, idx: u32) -> Option<E> {
        let next_free = self.free_head;
        let slot = &mut self.slots[idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = SlotState::Free;
        slot.next_free = next_free;
        self.free_head = idx;
        slot.event.take()
    }

    /// Restores the invariant that the heap top is never a tombstone.
    fn drain_tombstones(&mut self) {
        while self.tombstones > 0 {
            let Some(top) = self.heap.peek() else { return };
            if self.slots[top.slot as usize].state != SlotState::Cancelled {
                return;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.free_slot(entry.slot);
            self.tombstones -= 1;
        }
    }

    /// Schedules `event` at absolute time `at`. Times in the past are
    /// clamped to `now`. Returns a token usable with [`EventQueue::cancel`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        let at = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let slot = self.alloc_slot(event);
        let token = EventToken::new(slot, self.slots[slot as usize].gen);
        self.heap.push(Entry { at, seq, slot });
        token
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Schedules `event` to fire at the current time, after any events
    /// already queued for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventToken {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending. Cancelling twice, cancelling an event that
    /// already fired, or cancelling across a [`EventQueue::clear`]
    /// returns `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let idx = token.slot();
        let Some(slot) = self.slots.get_mut(idx as usize) else {
            return false;
        };
        if slot.gen != token.gen() || slot.state != SlotState::Pending {
            return false;
        }
        slot.state = SlotState::Cancelled;
        slot.event = None; // drop eagerly: tombstones hold no payload
        self.tombstones += 1;
        self.cancelled_total += 1;
        // Keep the heap top tombstone-free so `next_time` stays a pure peek.
        self.drain_tombstones();
        true
    }

    /// Removes and returns the next event along with its timestamp,
    /// advancing the simulated clock. Returns `None` when the queue is
    /// drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The top is never a tombstone, so the first entry is live.
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time must be monotone");
        debug_assert_eq!(self.slots[entry.slot as usize].state, SlotState::Pending);
        let event = self
            .free_slot(entry.slot)
            .expect("pending slot holds payload");
        self.now = entry.at;
        self.popped_total += 1;
        self.drain_tombstones();
        Some((entry.at, event))
    }

    /// The timestamp of the next pending event without removing it.
    /// Non-mutating: tombstones are drained eagerly on `cancel`/`pop`,
    /// never surfacing here.
    #[must_use]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.at)
    }

    /// Discards all pending events without changing the clock or the
    /// lifetime counters.
    ///
    /// Reset semantics: pending events are counted in
    /// [`EventQueue::discarded_total`] (they were neither popped nor
    /// cancelled), tombstone accounting is drained, and every slab slot
    /// is released with a generation bump — so a token issued before
    /// `clear()` can never cancel an event scheduled after it. The
    /// accounting identity
    /// `scheduled == popped + cancelled + discarded + len` keeps holding
    /// across arbitrary clear/reuse cycles.
    pub fn clear(&mut self) {
        self.discarded_total += self.len() as u64;
        self.heap.clear();
        self.tombstones = 0;
        // Rebuild the free list, invalidating every outstanding token.
        self.free_head = NIL;
        for idx in (0..self.slots.len()).rev() {
            let next_free = self.free_head;
            let slot = &mut self.slots[idx];
            if slot.state != SlotState::Free {
                slot.gen = slot.gen.wrapping_add(1);
                slot.state = SlotState::Free;
                slot.event = None;
            }
            slot.next_free = next_free;
            self.free_head = u32::try_from(idx).expect("slab exceeds u32 slots");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), "late");
        q.pop();
        q.schedule_at(SimTime::from_micros(1), "clamped");
        let (t, e) = q.pop().expect("event");
        assert_eq!(e, "clamped");
        assert_eq!(t, SimTime::from_micros(10));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        q.schedule_at(SimTime::from_nanos(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // Cancelling now must not poison a future event that reuses state.
        assert!(!q.cancel(a), "cancelling a fired event reports false");
        q.schedule_at(SimTime::from_nanos(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn stale_token_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        q.pop();
        // "b" reuses the slab slot "a" occupied; the old token's
        // generation no longer matches.
        q.schedule_at(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(100), "first");
        q.pop();
        q.schedule_in(SimDuration::from_micros(50), "second");
        let (t, _) = q.pop().expect("event");
        assert_eq!(t, SimTime::from_micros(150));
    }

    #[test]
    fn next_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(1), "a");
        q.schedule_at(SimTime::from_nanos(5), "b");
        q.cancel(a);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_is_nonmutating_and_exact() {
        let mut q = EventQueue::new();
        let mut toks = Vec::new();
        for i in 0..10u64 {
            toks.push(q.schedule_at(SimTime::from_nanos(i), i));
        }
        // Cancel a prefix: tombstones at the top must be drained so the
        // immutable peek sees the first live event.
        for t in &toks[..4] {
            q.cancel(*t);
        }
        let q = &q; // immutable from here on
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(4)));
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn cancelling_everything_empties_the_queue() {
        let mut q = EventQueue::new();
        let toks: Vec<_> = (0..32u64)
            .map(|i| q.schedule_at(SimTime::from_nanos(i), i))
            .collect();
        for t in toks {
            assert!(q.cancel(t));
        }
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.next_time(), None);
        assert!(q.pop().is_none());
        assert_eq!(q.cancelled_total(), 32);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule_now(1);
        q.schedule_now(2);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_reset_semantics_stay_consistent() {
        // Regression test: `clear()` must leave the accounting identity
        // `scheduled == popped + cancelled + discarded + len` intact and
        // the tombstone/slab state reusable.
        let identity = |q: &EventQueue<u64>| {
            assert_eq!(
                q.scheduled_total(),
                q.popped_total() + q.cancelled_total() + q.discarded_total() + q.len() as u64
            );
        };
        let mut q = EventQueue::new();
        let mut toks = Vec::new();
        for i in 0..10u64 {
            toks.push(q.schedule_at(SimTime::from_nanos(i), i));
        }
        q.pop();
        q.cancel(toks[5]);
        identity(&q);
        let pre_clear_token = toks[7];
        q.clear();
        identity(&q);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10);
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.discarded_total(), 8);

        // Reuse after clear: fresh events schedule, cancel, and pop
        // normally; stale tokens from before the clear are inert.
        let b = q.schedule_at(SimTime::from_micros(1), 100);
        assert!(!q.cancel(pre_clear_token), "stale token must not cancel");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
        identity(&q);
        q.schedule_at(SimTime::from_micros(2), 101);
        assert_eq!(q.pop().map(|(_, e)| e), Some(101));
        identity(&q);
        // The clock survived the clear (clear is not a time reset).
        assert_eq!(q.now(), SimTime::from_micros(2));
    }

    #[test]
    fn clear_drains_tombstone_accounting() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_nanos(5), 1);
        q.schedule_at(SimTime::from_nanos(1), 2);
        q.cancel(a); // tombstone buried below the live top
        q.clear();
        assert_eq!(q.len(), 0);
        // Tombstones from before the clear never resurface.
        for i in 0..4u64 {
            q.schedule_at(SimTime::from_nanos(10 + i), i);
        }
        assert_eq!(q.len(), 4);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn determinism_with_interleaved_cancels() {
        // The tombstone scheme must preserve bit-for-bit FIFO-tie order
        // against the reference behaviour: same (time, seq) order, with
        // cancelled events elided.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            let mut toks = Vec::new();
            for i in 0..200u64 {
                toks.push(q.schedule_at(SimTime::from_nanos(i % 17), i));
            }
            for (i, t) in toks.iter().enumerate() {
                if i % 3 == 0 {
                    q.cancel(*t);
                }
            }
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if e % 7 == 0 {
                    q.schedule_in(SimDuration::from_nanos(e % 5), 1000 + e);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
