//! Simulated time.
//!
//! All simulation components share a single notion of time expressed in
//! nanoseconds since the start of the run. [`SimTime`] is an absolute
//! instant and [`SimDuration`] is a span between instants; both are thin
//! wrappers over `u64` so they are `Copy` and cheap to pass around.
//!
//! # Examples
//!
//! ```
//! use simcore::time::{SimTime, SimDuration};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_micros(250);
//! assert_eq!(later.as_nanos(), 250_000);
//! assert_eq!(later - start, SimDuration::from_micros(250));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in nanoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far
    /// in the future" sentinel for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the simulation start (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the simulation start (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the simulation start, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] when
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest nanosecond and saturating on overflow or negative input.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// The span in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in microseconds, as a float.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a float factor, saturating on overflow and
    /// clamping negative results to zero.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Subtracts, saturating at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Adds, saturating at [`SimDuration::MAX`].
    #[must_use]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Doubles the span, saturating at [`SimDuration::MAX`]. Used by
    /// exponential-backoff timers.
    #[must_use]
    pub fn doubled(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a.saturating_add(b))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(7)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.doubled(), SimDuration::MAX);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
        assert!((SimDuration::from_micros(250).as_secs_f64() - 0.00025).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(220).to_string(), "220.000us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d * 3, SimDuration::from_micros(300));
        assert_eq!(d / 4, SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
