//! Measurement plumbing: histograms, percentiles, time series, and
//! throughput meters.
//!
//! Every experiment in the benchmark harness reports through these types so
//! that table/figure regeneration shares one definition of "95th
//! percentile" or "throughput".
//!
//! # Examples
//!
//! ```
//! use simcore::stats::DurationHistogram;
//! use simcore::time::SimDuration;
//!
//! let mut h = DurationHistogram::new();
//! for us in [1u64, 2, 3, 4, 100] {
//!     h.record(SimDuration::from_micros(us));
//! }
//! assert_eq!(h.percentile(0.50), SimDuration::from_micros(3));
//! assert_eq!(h.max(), SimDuration::from_micros(100));
//! ```

use crate::time::{SimDuration, SimTime};

/// Running mean/variance over f64 samples (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation, or 0.0 with fewer than two samples.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample, or 0.0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// An exact-percentile histogram of durations.
///
/// Stores every sample (simulation runs record at most a few million), so
/// percentiles are exact rather than bucketed — important for reproducing
/// Table 4's tail latencies faithfully.
#[derive(Debug, Clone, Default)]
pub struct DurationHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl DurationHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        DurationHistogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0.0–1.0) using the nearest-rank method, or zero
    /// when empty.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        SimDuration::from_nanos(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> SimDuration {
        self.percentile(0.50)
    }

    /// Largest sample, or zero when empty.
    #[must_use]
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample, or zero when empty.
    #[must_use]
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Arithmetic mean, or zero when empty.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }

    /// Appends every sample of `other` (used when merging per-worker
    /// registries back together).
    pub fn merge_from(&mut self, other: &DurationHistogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A `(time, value)` series, e.g. throughput over time for Figure 4(a).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point. Points should be pushed in time order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// The recorded points in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values over a time window `[from, to)`.
    #[must_use]
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The first time at which `value >= threshold` held for a point, if
    /// any. Used to detect "recovered from the cold ring" instants.
    #[must_use]
    pub fn first_reaching(&self, threshold: f64) -> Option<SimTime> {
        self.points
            .iter()
            .find(|&&(_, v)| v >= threshold)
            .map(|&(t, _)| t)
    }

    /// Appends every point of `other` in its insertion order.
    pub fn extend_from(&mut self, other: &TimeSeries) {
        self.points.extend_from_slice(&other.points);
    }
}

/// Counts discrete completions and converts windows into rates.
///
/// A workload calls [`ThroughputMeter::record`] once per completed
/// operation; periodic sampling converts counts into operations/second
/// series.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    total: u64,
    window: u64,
    series: TimeSeries,
    last_sample: SimTime,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    #[must_use]
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Records `n` completed operations.
    pub fn record(&mut self, n: u64) {
        self.total += n;
        self.window += n;
    }

    /// Total operations recorded since creation.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Closes the current window at `now`, appending an ops/second point
    /// to the series, and starts a new window.
    pub fn sample(&mut self, now: SimTime) {
        let span = now.saturating_since(self.last_sample);
        let rate = if span.is_zero() {
            0.0
        } else {
            self.window as f64 / span.as_secs_f64()
        };
        self.series.push(now, rate);
        self.window = 0;
        self.last_sample = now;
    }

    /// The ops/second series accumulated by [`ThroughputMeter::sample`].
    #[must_use]
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Overall average rate between time zero and `now`.
    #[must_use]
    pub fn overall_rate(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.total as f64 / now.as_secs_f64()
        }
    }

    /// Folds `other` into `self`: totals add, sampled series append.
    pub fn merge_from(&mut self, other: &ThroughputMeter) {
        self.total += other.total;
        self.window += other.window;
        self.series.extend_from(&other.series);
        self.last_sample = self.last_sample.max(other.last_sample);
    }
}

/// Simple named counters for component statistics (faults, drops,
/// retransmissions, ...).
///
/// Hash-keyed so the hot path (`add`/`bump` on an existing counter)
/// allocates nothing; [`Counters::iter`] sorts by name so exports stay
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: std::collections::HashMap<Box<str>, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(v) = self.entries.get_mut(name) {
            *v += n;
        } else {
            self.entries.insert(name.into(), n);
        }
    }

    /// Increments counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (zero if never touched).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.entries.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut pairs: Vec<(&str, u64)> = self.entries.iter().map(|(k, &v)| (&**k, v)).collect();
        pairs.sort_unstable_by_key(|&(name, _)| name);
        pairs.into_iter()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge_from(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_std() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = DurationHistogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.percentile(0.50), SimDuration::from_micros(50));
        assert_eq!(h.percentile(0.95), SimDuration::from_micros(95));
        assert_eq!(h.percentile(0.99), SimDuration::from_micros(99));
        assert_eq!(h.percentile(1.0), SimDuration::from_micros(100));
        assert_eq!(h.percentile(0.0), SimDuration::from_micros(1));
        assert_eq!(h.max(), SimDuration::from_micros(100));
        assert_eq!(h.min(), SimDuration::from_micros(1));
        assert_eq!(h.mean(), SimDuration::from_nanos(50_500));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let mut h = DurationHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_interleaves_record_and_query() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_micros(5));
        assert_eq!(h.median(), SimDuration::from_micros(5));
        h.record(SimDuration::from_micros(1));
        assert_eq!(h.percentile(0.0), SimDuration::from_micros(1));
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn time_series_window_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 20.0);
        ts.push(SimTime::from_secs(3), 30.0);
        assert_eq!(
            ts.window_mean(SimTime::from_secs(1), SimTime::from_secs(3)),
            15.0
        );
        assert_eq!(
            ts.window_mean(SimTime::from_secs(10), SimTime::from_secs(20)),
            0.0
        );
        assert_eq!(ts.first_reaching(25.0), Some(SimTime::from_secs(3)));
        assert_eq!(ts.first_reaching(99.0), None);
    }

    #[test]
    fn throughput_meter_rates() {
        let mut m = ThroughputMeter::new();
        m.record(500);
        m.sample(SimTime::from_secs(1));
        m.record(1500);
        m.sample(SimTime::from_secs(2));
        let pts = m.series().points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 500.0).abs() < 1e-9);
        assert!((pts[1].1 - 1500.0).abs() < 1e-9);
        assert_eq!(m.total(), 2000);
        assert!((m.overall_rate(SimTime::from_secs(2)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.bump("rnpf");
        c.add("rnpf", 2);
        c.bump("drops");
        assert_eq!(c.get("rnpf"), 3);
        assert_eq!(c.get("drops"), 1);
        assert_eq!(c.get("missing"), 0);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["drops", "rnpf"]);
    }
}
