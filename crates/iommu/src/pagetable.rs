//! I/O page tables.
//!
//! Each direct-I/O channel (IOchannel) gets a translation **domain** with
//! its own I/O page table mapping I/O virtual addresses (IOVAs — in this
//! reproduction, the IOuser's virtual page numbers) to physical frames.
//!
//! The paper's key hardware change (§4) is allowing **non-present** PTEs:
//! the baseline Connect-IB required every PTE to be valid, which forces
//! pinning; the modified firmware tolerates invalid entries and reports
//! faults instead. [`TableMode`] captures both behaviours.

use memsim::dense::{PageMap, LEAF_LEN};
use memsim::types::{FrameId, PageRange, Vpn};

/// Pages covered by one huge (2 MiB) PTE.
pub const HUGE_PAGES: u64 = LEAF_LEN as u64;

const HUGE_MASK: u64 = HUGE_PAGES - 1;

/// Identifier of a translation domain (one per IOchannel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u32);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Whether the table tolerates non-present entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMode {
    /// Baseline hardware: every registered page must be mapped (pinned)
    /// before DMA; a miss is a fatal programming error surfaced as
    /// [`Translation::Error`].
    PinnedOnly,
    /// Paper's modified firmware: entries may be invalid; a miss is a
    /// recoverable page fault ([`Translation::Fault`]).
    PageFaultCapable,
}

/// One I/O page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPte {
    /// Backing frame.
    pub frame: FrameId,
    /// Whether DMA writes are permitted.
    pub writable: bool,
}

/// Result of a table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Present and permitted.
    Ok(FrameId),
    /// Not present: recoverable in [`TableMode::PageFaultCapable`] mode.
    Fault,
    /// Not present in [`TableMode::PinnedOnly`] mode, or a write through
    /// a read-only mapping — a programming error, not a page fault.
    Error,
}

impl Translation {
    /// The frame, if the walk succeeded.
    #[must_use]
    pub fn frame(self) -> Option<FrameId> {
        match self {
            Translation::Ok(f) => Some(f),
            _ => None,
        }
    }
}

/// An I/O page table for one domain.
///
/// Entries live in a dense, direct-indexed [`PageMap`]: a walk is two
/// array indexes in the common case, and [`IoPageTable::walk_range`]
/// resolves each leaf chunk once for a whole scatter-gather range.
#[derive(Debug, Clone)]
pub struct IoPageTable {
    domain: DomainId,
    mode: TableMode,
    entries: PageMap<IoPte>,
    /// When set, 512 present 4 KiB siblings with contiguous frames and
    /// uniform permissions fold into one 2 MiB PTE (and split back on
    /// any partial unmap). Translations are byte-for-byte identical to
    /// the 4 KiB-only table; only the PTE *shape* (and hence IOTLB
    /// reach) changes.
    huge_enabled: bool,
    walks: u64,
    faults: u64,
    promotions: u64,
    demotions: u64,
}

impl IoPageTable {
    /// Creates an empty table for `domain`.
    #[must_use]
    pub fn new(domain: DomainId, mode: TableMode) -> Self {
        IoPageTable {
            domain,
            mode,
            entries: PageMap::new(),
            huge_enabled: false,
            walks: 0,
            faults: 0,
            promotions: 0,
            demotions: 0,
        }
    }

    /// The owning domain.
    #[must_use]
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// The table's fault tolerance mode.
    #[must_use]
    pub fn mode(&self) -> TableMode {
        self.mode
    }

    /// Number of present entries (huge PTEs count all 512 pages).
    #[must_use]
    pub fn present_pages(&self) -> usize {
        self.entries.len() + self.entries.huge_len() * LEAF_LEN
    }

    /// Enables (or disables) 2 MiB PTE folding. Disabling splits every
    /// existing huge PTE back to 4 KiB entries.
    pub fn set_huge_pages(&mut self, enabled: bool) {
        self.huge_enabled = enabled;
        if !enabled {
            let bases: Vec<Vpn> = self.entries.iter_huge().map(|(v, _)| v).collect();
            for base in bases {
                self.split_huge(base);
            }
        }
    }

    /// Whether 2 MiB folding is enabled.
    #[must_use]
    pub fn huge_pages_enabled(&self) -> bool {
        self.huge_enabled
    }

    /// Number of huge PTEs currently installed.
    #[must_use]
    pub fn huge_ptes(&self) -> usize {
        self.entries.huge_len()
    }

    /// Folds performed (512 siblings → one huge PTE).
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Splits performed (huge PTE → 512 siblings).
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// `true` when `vpn` is covered by a huge PTE.
    #[must_use]
    pub fn is_huge(&self, vpn: Vpn) -> bool {
        self.entries.is_huge(vpn)
    }

    /// The per-page PTE synthesized from a huge PTE covering `vpn`.
    fn synth_huge(huge: &IoPte, vpn: Vpn) -> IoPte {
        IoPte {
            frame: FrameId(huge.frame.0 + (vpn.0 & HUGE_MASK)),
            writable: huge.writable,
        }
    }

    /// Folds `vpn`'s chunk into a huge PTE when eligible: all 512
    /// siblings present, frames contiguous from the aligned base, and
    /// uniform writability. Returns `true` on promotion.
    pub fn try_promote(&mut self, vpn: Vpn) -> bool {
        if !self.huge_enabled
            || self.entries.is_huge(vpn)
            || self.entries.chunk_population(vpn) != LEAF_LEN
        {
            return false;
        }
        let base = PageMap::<IoPte>::chunk_base(vpn);
        let mut eligible = true;
        let mut anchor: Option<IoPte> = None;
        self.entries
            .scan_range(PageRange::new(base, HUGE_PAGES), |v, pte| {
                let Some(pte) = pte else {
                    eligible = false;
                    return;
                };
                match anchor {
                    None => anchor = Some(*pte),
                    Some(a) => {
                        eligible = eligible
                            && pte.writable == a.writable
                            && pte.frame.0 == a.frame.0 + (v.0 - base.0);
                    }
                }
            });
        let Some(anchor) = anchor else { return false };
        if !eligible {
            return false;
        }
        self.entries.take_chunk(base);
        self.entries.insert_huge(base, anchor);
        self.promotions += 1;
        true
    }

    /// Splits the huge PTE covering `vpn` back into 512 4 KiB entries.
    /// Returns `true` when a huge PTE was present.
    pub fn split_huge(&mut self, vpn: Vpn) -> bool {
        let Some(huge) = self.entries.remove_huge(vpn) else {
            return false;
        };
        let base = PageMap::<IoPte>::chunk_base(vpn);
        for i in 0..HUGE_PAGES {
            let v = Vpn(base.0 + i);
            self.entries.insert(v, Self::synth_huge(&huge, v));
        }
        self.demotions += 1;
        true
    }

    /// Total walks performed.
    #[must_use]
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Walks that found no present entry.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Installs (or updates) the entry for `vpn`. With huge pages
    /// enabled, a map that completes an eligible chunk folds it; a map
    /// that contradicts a covering huge PTE splits it first.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId, writable: bool) {
        if let Some(huge) = self.entries.huge(vpn) {
            if Self::synth_huge(huge, vpn) == (IoPte { frame, writable }) {
                return; // re-map of an identical translation: keep the fold
            }
            self.split_huge(vpn);
        }
        self.entries.insert(vpn, IoPte { frame, writable });
        self.try_promote(vpn);
    }

    /// Removes the entry for `vpn`. Returns `true` when it was present —
    /// the paper notes invalidations of never-mapped pages cost nothing
    /// extra (§4, Figure 3b). A partial unmap of a huge PTE demotes it
    /// (split back to 4 KiB) first.
    pub fn unmap(&mut self, vpn: Vpn) -> bool {
        if self.entries.is_huge(vpn) {
            self.split_huge(vpn);
        }
        self.entries.remove(vpn).is_some()
    }

    /// Removes every entry in `range`, returning how many were present.
    pub fn unmap_range(&mut self, range: PageRange) -> u64 {
        range.iter().filter(|&vpn| self.unmap(vpn)).count() as u64
    }

    /// Whether `vpn` is currently mapped.
    #[must_use]
    pub fn is_mapped(&self, vpn: Vpn) -> bool {
        self.entries.contains(vpn) || self.entries.is_huge(vpn)
    }

    /// The PTE for `vpn`, if present (synthesized per-page from a huge
    /// PTE when the chunk is folded).
    #[must_use]
    pub fn pte(&self, vpn: Vpn) -> Option<IoPte> {
        self.entries
            .get(vpn)
            .copied()
            .or_else(|| self.entries.huge(vpn).map(|h| Self::synth_huge(h, vpn)))
    }

    /// Walks the table for a DMA access.
    pub fn translate(&mut self, vpn: Vpn, write: bool) -> Translation {
        self.walks += 1;
        match self.pte(vpn) {
            Some(pte) if write && !pte.writable => Translation::Error,
            Some(pte) => Translation::Ok(pte.frame),
            None => {
                self.faults += 1;
                match self.mode {
                    TableMode::PageFaultCapable => Translation::Fault,
                    TableMode::PinnedOnly => Translation::Error,
                }
            }
        }
    }

    /// Batched walk over a contiguous range (§4.3's scatter-gather
    /// resolution): *one* walk is charged for the whole range, each leaf
    /// chunk is resolved once, and `f` receives every page's raw PTE in
    /// ascending order (`None` = non-present, counted as a fault).
    pub fn walk_range<F: FnMut(Vpn, Option<IoPte>)>(&mut self, range: PageRange, mut f: F) {
        self.walks += 1;
        let mut faults = 0u64;
        let entries = &self.entries;
        entries.scan_range(range, |vpn, pte| {
            let pte = pte
                .copied()
                .or_else(|| entries.huge(vpn).map(|h| Self::synth_huge(h, vpn)));
            if pte.is_none() {
                faults += 1;
            }
            f(vpn, pte);
        });
        self.faults += faults;
    }

    /// Like [`IoPageTable::translate`] for a whole range in one walk:
    /// `f` receives each page's [`Translation`] in ascending order.
    pub fn translate_range<F: FnMut(Vpn, Translation)>(
        &mut self,
        range: PageRange,
        write: bool,
        mut f: F,
    ) {
        let mode = self.mode;
        self.walk_range(range, |vpn, pte| {
            let t = match pte {
                Some(p) if write && !p.writable => Translation::Error,
                Some(p) => Translation::Ok(p.frame),
                None => match mode {
                    TableMode::PageFaultCapable => Translation::Fault,
                    TableMode::PinnedOnly => Translation::Error,
                },
            };
            f(vpn, t);
        });
    }

    /// Whether every page of `range` is present (and writable, when
    /// `write`), without touching the walk statistics — the side-effect
    /// free probe behind `is_descriptor_present` checks.
    #[must_use]
    pub fn probe_range(&self, range: PageRange, write: bool) -> bool {
        let mut ok = true;
        let entries = &self.entries;
        entries.scan_range(range, |vpn, pte| {
            let writable = match pte {
                Some(p) => Some(p.writable),
                None => entries.huge(vpn).map(|h| h.writable),
            };
            ok = ok
                && match writable {
                    Some(w) => !write || w,
                    None => false,
                };
        });
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(mode: TableMode) -> IoPageTable {
        IoPageTable::new(DomainId(1), mode)
    }

    #[test]
    fn present_entries_translate() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(5), FrameId(42), true);
        assert_eq!(t.translate(Vpn(5), true), Translation::Ok(FrameId(42)));
        assert_eq!(t.translate(Vpn(5), false), Translation::Ok(FrameId(42)));
        assert_eq!(t.present_pages(), 1);
    }

    #[test]
    fn missing_entry_faults_in_odp_mode() {
        let mut t = table(TableMode::PageFaultCapable);
        assert_eq!(t.translate(Vpn(5), false), Translation::Fault);
        assert_eq!(t.faults(), 1);
    }

    #[test]
    fn missing_entry_errors_in_pinned_mode() {
        let mut t = table(TableMode::PinnedOnly);
        assert_eq!(t.translate(Vpn(5), false), Translation::Error);
    }

    #[test]
    fn write_through_readonly_errors() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), false);
        assert_eq!(t.translate(Vpn(1), true), Translation::Error);
        assert_eq!(t.translate(Vpn(1), false), Translation::Ok(FrameId(1)));
    }

    #[test]
    fn unmap_reports_presence() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), true);
        assert!(t.unmap(Vpn(1)));
        assert!(!t.unmap(Vpn(1)), "second unmap finds nothing");
        assert_eq!(t.translate(Vpn(1), false), Translation::Fault);
    }

    #[test]
    fn walk_range_charges_one_walk() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), true);
        t.map(Vpn(2), FrameId(2), true);
        let mut seen = Vec::new();
        t.translate_range(PageRange::new(Vpn(0), 4), false, |vpn, tr| {
            seen.push((vpn.0, tr));
        });
        assert_eq!(t.walks(), 1, "a batched walk costs one walk");
        assert_eq!(t.faults(), 2, "faults still count per page");
        assert_eq!(
            seen,
            vec![
                (0, Translation::Fault),
                (1, Translation::Ok(FrameId(1))),
                (2, Translation::Ok(FrameId(2))),
                (3, Translation::Fault),
            ]
        );
    }

    #[test]
    fn translate_range_reports_permission_errors() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(0), FrameId(0), true);
        t.map(Vpn(1), FrameId(1), false);
        let mut seen = Vec::new();
        t.translate_range(PageRange::new(Vpn(0), 2), true, |_, tr| seen.push(tr));
        assert_eq!(seen, vec![Translation::Ok(FrameId(0)), Translation::Error]);
    }

    #[test]
    fn probe_range_is_side_effect_free() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(0), FrameId(0), true);
        t.map(Vpn(1), FrameId(1), false);
        assert!(t.probe_range(PageRange::new(Vpn(0), 2), false));
        assert!(!t.probe_range(PageRange::new(Vpn(0), 2), true), "read-only");
        assert!(!t.probe_range(PageRange::new(Vpn(0), 3), false), "hole");
        assert_eq!(t.walks(), 0);
        assert_eq!(t.faults(), 0);
    }

    fn fill_chunk(t: &mut IoPageTable, base: u64, frame0: u64) {
        for i in 0..HUGE_PAGES {
            t.map(Vpn(base + i), FrameId(frame0 + i), true);
        }
    }

    #[test]
    fn contiguous_full_chunk_promotes() {
        let mut t = table(TableMode::PageFaultCapable);
        t.set_huge_pages(true);
        fill_chunk(&mut t, 512, 7000);
        assert_eq!(t.huge_ptes(), 1);
        assert_eq!(t.promotions(), 1);
        assert!(t.is_huge(Vpn(700)));
        assert_eq!(t.present_pages(), HUGE_PAGES as usize);
        // Translations agree with the 4 KiB model.
        assert_eq!(t.translate(Vpn(700), true), Translation::Ok(FrameId(7188)));
        assert_eq!(t.pte(Vpn(1023)).expect("mapped").frame, FrameId(7511));
    }

    #[test]
    fn non_contiguous_chunk_stays_small() {
        let mut t = table(TableMode::PageFaultCapable);
        t.set_huge_pages(true);
        for i in 0..HUGE_PAGES {
            // One discontinuity in the middle of the frame run.
            let f = if i < 100 { 7000 + i } else { 9000 + i };
            t.map(Vpn(512 + i), FrameId(f), true);
        }
        assert_eq!(t.huge_ptes(), 0);
        assert_eq!(t.promotions(), 0);
    }

    #[test]
    fn partial_unmap_demotes() {
        let mut t = table(TableMode::PageFaultCapable);
        t.set_huge_pages(true);
        fill_chunk(&mut t, 512, 7000);
        assert_eq!(t.huge_ptes(), 1);
        assert!(t.unmap(Vpn(600)));
        assert_eq!(t.huge_ptes(), 0);
        assert_eq!(t.demotions(), 1);
        assert_eq!(t.translate(Vpn(600), false), Translation::Fault);
        assert_eq!(t.translate(Vpn(601), false), Translation::Ok(FrameId(7089)));
        assert_eq!(t.present_pages(), HUGE_PAGES as usize - 1);
    }

    #[test]
    fn identical_remap_keeps_fold_and_conflicting_remap_splits() {
        let mut t = table(TableMode::PageFaultCapable);
        t.set_huge_pages(true);
        fill_chunk(&mut t, 512, 7000);
        t.map(Vpn(700), FrameId(7188), true); // identical: stays folded
        assert_eq!(t.huge_ptes(), 1);
        t.map(Vpn(700), FrameId(1), true); // conflicting: splits
        assert_eq!(t.huge_ptes(), 0);
        assert_eq!(t.demotions(), 1);
        assert_eq!(t.translate(Vpn(700), false), Translation::Ok(FrameId(1)));
    }

    #[test]
    fn disabling_huge_pages_splits_existing_folds() {
        let mut t = table(TableMode::PageFaultCapable);
        t.set_huge_pages(true);
        fill_chunk(&mut t, 512, 7000);
        assert_eq!(t.huge_ptes(), 1);
        t.set_huge_pages(false);
        assert_eq!(t.huge_ptes(), 0);
        assert_eq!(t.present_pages(), HUGE_PAGES as usize);
        assert_eq!(t.translate(Vpn(900), false), Translation::Ok(FrameId(7388)));
    }

    #[test]
    fn huge_walk_range_and_probe_agree_with_small_pages() {
        let mut small = table(TableMode::PageFaultCapable);
        let mut huge = table(TableMode::PageFaultCapable);
        huge.set_huge_pages(true);
        for i in 0..HUGE_PAGES {
            small.map(Vpn(512 + i), FrameId(7000 + i), true);
            huge.map(Vpn(512 + i), FrameId(7000 + i), true);
        }
        assert_eq!(huge.huge_ptes(), 1);
        let range = PageRange::new(Vpn(500), 540);
        let mut a = Vec::new();
        let mut b = Vec::new();
        small.walk_range(range, |v, p| a.push((v, p)));
        huge.walk_range(range, |v, p| b.push((v, p)));
        assert_eq!(a, b, "huge walk is byte-identical to the 4 KiB walk");
        assert!(huge.probe_range(PageRange::new(Vpn(512), HUGE_PAGES), true));
        assert!(!huge.probe_range(PageRange::new(Vpn(511), 2), false));
    }

    #[test]
    fn unmap_range_counts_present() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), true);
        t.map(Vpn(3), FrameId(3), true);
        let n = t.unmap_range(PageRange::new(Vpn(0), 8));
        assert_eq!(n, 2);
        assert_eq!(t.present_pages(), 0);
    }
}
