//! I/O page tables.
//!
//! Each direct-I/O channel (IOchannel) gets a translation **domain** with
//! its own I/O page table mapping I/O virtual addresses (IOVAs — in this
//! reproduction, the IOuser's virtual page numbers) to physical frames.
//!
//! The paper's key hardware change (§4) is allowing **non-present** PTEs:
//! the baseline Connect-IB required every PTE to be valid, which forces
//! pinning; the modified firmware tolerates invalid entries and reports
//! faults instead. [`TableMode`] captures both behaviours.

use memsim::dense::PageMap;
use memsim::types::{FrameId, PageRange, Vpn};

/// Identifier of a translation domain (one per IOchannel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u32);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Whether the table tolerates non-present entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMode {
    /// Baseline hardware: every registered page must be mapped (pinned)
    /// before DMA; a miss is a fatal programming error surfaced as
    /// [`Translation::Error`].
    PinnedOnly,
    /// Paper's modified firmware: entries may be invalid; a miss is a
    /// recoverable page fault ([`Translation::Fault`]).
    PageFaultCapable,
}

/// One I/O page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPte {
    /// Backing frame.
    pub frame: FrameId,
    /// Whether DMA writes are permitted.
    pub writable: bool,
}

/// Result of a table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Present and permitted.
    Ok(FrameId),
    /// Not present: recoverable in [`TableMode::PageFaultCapable`] mode.
    Fault,
    /// Not present in [`TableMode::PinnedOnly`] mode, or a write through
    /// a read-only mapping — a programming error, not a page fault.
    Error,
}

impl Translation {
    /// The frame, if the walk succeeded.
    #[must_use]
    pub fn frame(self) -> Option<FrameId> {
        match self {
            Translation::Ok(f) => Some(f),
            _ => None,
        }
    }
}

/// An I/O page table for one domain.
///
/// Entries live in a dense, direct-indexed [`PageMap`]: a walk is two
/// array indexes in the common case, and [`IoPageTable::walk_range`]
/// resolves each leaf chunk once for a whole scatter-gather range.
#[derive(Debug, Clone)]
pub struct IoPageTable {
    domain: DomainId,
    mode: TableMode,
    entries: PageMap<IoPte>,
    walks: u64,
    faults: u64,
}

impl IoPageTable {
    /// Creates an empty table for `domain`.
    #[must_use]
    pub fn new(domain: DomainId, mode: TableMode) -> Self {
        IoPageTable {
            domain,
            mode,
            entries: PageMap::new(),
            walks: 0,
            faults: 0,
        }
    }

    /// The owning domain.
    #[must_use]
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// The table's fault tolerance mode.
    #[must_use]
    pub fn mode(&self) -> TableMode {
        self.mode
    }

    /// Number of present entries.
    #[must_use]
    pub fn present_pages(&self) -> usize {
        self.entries.len()
    }

    /// Total walks performed.
    #[must_use]
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Walks that found no present entry.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Installs (or updates) the entry for `vpn`.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId, writable: bool) {
        self.entries.insert(vpn, IoPte { frame, writable });
    }

    /// Removes the entry for `vpn`. Returns `true` when it was present —
    /// the paper notes invalidations of never-mapped pages cost nothing
    /// extra (§4, Figure 3b).
    pub fn unmap(&mut self, vpn: Vpn) -> bool {
        self.entries.remove(vpn).is_some()
    }

    /// Removes every entry in `range`, returning how many were present.
    pub fn unmap_range(&mut self, range: PageRange) -> u64 {
        range.iter().filter(|&vpn| self.unmap(vpn)).count() as u64
    }

    /// Whether `vpn` is currently mapped.
    #[must_use]
    pub fn is_mapped(&self, vpn: Vpn) -> bool {
        self.entries.contains(vpn)
    }

    /// The PTE for `vpn`, if present.
    #[must_use]
    pub fn pte(&self, vpn: Vpn) -> Option<IoPte> {
        self.entries.get(vpn).copied()
    }

    /// Walks the table for a DMA access.
    pub fn translate(&mut self, vpn: Vpn, write: bool) -> Translation {
        self.walks += 1;
        match self.entries.get(vpn) {
            Some(pte) if write && !pte.writable => Translation::Error,
            Some(pte) => Translation::Ok(pte.frame),
            None => {
                self.faults += 1;
                match self.mode {
                    TableMode::PageFaultCapable => Translation::Fault,
                    TableMode::PinnedOnly => Translation::Error,
                }
            }
        }
    }

    /// Batched walk over a contiguous range (§4.3's scatter-gather
    /// resolution): *one* walk is charged for the whole range, each leaf
    /// chunk is resolved once, and `f` receives every page's raw PTE in
    /// ascending order (`None` = non-present, counted as a fault).
    pub fn walk_range<F: FnMut(Vpn, Option<IoPte>)>(&mut self, range: PageRange, mut f: F) {
        self.walks += 1;
        let mut faults = 0u64;
        self.entries.scan_range(range, |vpn, pte| {
            if pte.is_none() {
                faults += 1;
            }
            f(vpn, pte.copied());
        });
        self.faults += faults;
    }

    /// Like [`IoPageTable::translate`] for a whole range in one walk:
    /// `f` receives each page's [`Translation`] in ascending order.
    pub fn translate_range<F: FnMut(Vpn, Translation)>(
        &mut self,
        range: PageRange,
        write: bool,
        mut f: F,
    ) {
        let mode = self.mode;
        self.walk_range(range, |vpn, pte| {
            let t = match pte {
                Some(p) if write && !p.writable => Translation::Error,
                Some(p) => Translation::Ok(p.frame),
                None => match mode {
                    TableMode::PageFaultCapable => Translation::Fault,
                    TableMode::PinnedOnly => Translation::Error,
                },
            };
            f(vpn, t);
        });
    }

    /// Whether every page of `range` is present (and writable, when
    /// `write`), without touching the walk statistics — the side-effect
    /// free probe behind `is_descriptor_present` checks.
    #[must_use]
    pub fn probe_range(&self, range: PageRange, write: bool) -> bool {
        let mut ok = true;
        self.entries.scan_range(range, |_, pte| {
            ok = ok
                && match pte {
                    Some(p) => !write || p.writable,
                    None => false,
                };
        });
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(mode: TableMode) -> IoPageTable {
        IoPageTable::new(DomainId(1), mode)
    }

    #[test]
    fn present_entries_translate() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(5), FrameId(42), true);
        assert_eq!(t.translate(Vpn(5), true), Translation::Ok(FrameId(42)));
        assert_eq!(t.translate(Vpn(5), false), Translation::Ok(FrameId(42)));
        assert_eq!(t.present_pages(), 1);
    }

    #[test]
    fn missing_entry_faults_in_odp_mode() {
        let mut t = table(TableMode::PageFaultCapable);
        assert_eq!(t.translate(Vpn(5), false), Translation::Fault);
        assert_eq!(t.faults(), 1);
    }

    #[test]
    fn missing_entry_errors_in_pinned_mode() {
        let mut t = table(TableMode::PinnedOnly);
        assert_eq!(t.translate(Vpn(5), false), Translation::Error);
    }

    #[test]
    fn write_through_readonly_errors() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), false);
        assert_eq!(t.translate(Vpn(1), true), Translation::Error);
        assert_eq!(t.translate(Vpn(1), false), Translation::Ok(FrameId(1)));
    }

    #[test]
    fn unmap_reports_presence() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), true);
        assert!(t.unmap(Vpn(1)));
        assert!(!t.unmap(Vpn(1)), "second unmap finds nothing");
        assert_eq!(t.translate(Vpn(1), false), Translation::Fault);
    }

    #[test]
    fn walk_range_charges_one_walk() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), true);
        t.map(Vpn(2), FrameId(2), true);
        let mut seen = Vec::new();
        t.translate_range(PageRange::new(Vpn(0), 4), false, |vpn, tr| {
            seen.push((vpn.0, tr));
        });
        assert_eq!(t.walks(), 1, "a batched walk costs one walk");
        assert_eq!(t.faults(), 2, "faults still count per page");
        assert_eq!(
            seen,
            vec![
                (0, Translation::Fault),
                (1, Translation::Ok(FrameId(1))),
                (2, Translation::Ok(FrameId(2))),
                (3, Translation::Fault),
            ]
        );
    }

    #[test]
    fn translate_range_reports_permission_errors() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(0), FrameId(0), true);
        t.map(Vpn(1), FrameId(1), false);
        let mut seen = Vec::new();
        t.translate_range(PageRange::new(Vpn(0), 2), true, |_, tr| seen.push(tr));
        assert_eq!(seen, vec![Translation::Ok(FrameId(0)), Translation::Error]);
    }

    #[test]
    fn probe_range_is_side_effect_free() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(0), FrameId(0), true);
        t.map(Vpn(1), FrameId(1), false);
        assert!(t.probe_range(PageRange::new(Vpn(0), 2), false));
        assert!(!t.probe_range(PageRange::new(Vpn(0), 2), true), "read-only");
        assert!(!t.probe_range(PageRange::new(Vpn(0), 3), false), "hole");
        assert_eq!(t.walks(), 0);
        assert_eq!(t.faults(), 0);
    }

    #[test]
    fn unmap_range_counts_present() {
        let mut t = table(TableMode::PageFaultCapable);
        t.map(Vpn(1), FrameId(1), true);
        t.map(Vpn(3), FrameId(3), true);
        let n = t.unmap_range(PageRange::new(Vpn(0), 8));
        assert_eq!(n, 2);
        assert_eq!(t.present_pages(), 0);
    }
}
