//! The IOTLB: a translation cache in front of the I/O page tables.
//!
//! Because the device caches translations, the IOprovider must
//! *invalidate* them when mappings change (Figure 2, steps a–d); stale
//! entries would let the device DMA into reused frames. The cache is a
//! capacity-bounded LRU keyed by `(domain, vpn)`.

use std::collections::HashMap;

use memsim::types::{FrameId, PageRange, Vpn};

use crate::pagetable::DomainId;

/// A bounded LRU translation cache.
#[derive(Debug)]
pub struct IoTlb {
    capacity: usize,
    map: HashMap<(DomainId, Vpn), (FrameId, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl IoTlb {
    /// Creates a cache holding up to `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs at least one entry");
        IoTlb {
            capacity,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries invalidated so far.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Current number of cached translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether a translation is currently cached, without promoting it
    /// or touching the hit/miss counters — a probe for eviction-order
    /// assertions and debugging, not a substitute for [`lookup`].
    ///
    /// [`lookup`]: IoTlb::lookup
    #[must_use]
    pub fn pte_cached(&self, domain: DomainId, vpn: Vpn) -> bool {
        self.map.contains_key(&(domain, vpn))
    }

    /// Looks up a translation, promoting it on a hit.
    pub fn lookup(&mut self, domain: DomainId, vpn: Vpn) -> Option<FrameId> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&(domain, vpn)) {
            Some((frame, t)) => {
                *t = tick;
                self.hits += 1;
                Some(*frame)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation after a successful walk, evicting the LRU
    /// entry if full.
    pub fn insert(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&(domain, vpn)) {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, &(_, t))| t) {
                self.map.remove(&victim);
            }
        }
        self.map.insert((domain, vpn), (frame, self.tick));
    }

    /// Invalidates one translation. Returns `true` when an entry was
    /// dropped.
    pub fn invalidate(&mut self, domain: DomainId, vpn: Vpn) -> bool {
        let hit = self.map.remove(&(domain, vpn)).is_some();
        if hit {
            self.invalidations += 1;
        }
        hit
    }

    /// Invalidates every cached translation of a range.
    pub fn invalidate_range(&mut self, domain: DomainId, range: PageRange) -> u64 {
        range
            .iter()
            .filter(|&vpn| self.invalidate(domain, vpn))
            .count() as u64
    }

    /// Flushes the whole cache (a chaos-injected shootdown racing
    /// in-flight resolutions, or a global invalidation command).
    /// Returns the number of entries dropped. Purely a performance
    /// event: the next access re-walks the page tables.
    pub fn flush(&mut self) -> u64 {
        let n = self.map.len() as u64;
        self.map.clear();
        self.invalidations += n;
        n
    }

    /// Invalidates everything belonging to a domain (channel teardown).
    pub fn invalidate_domain(&mut self, domain: DomainId) -> u64 {
        let victims: Vec<(DomainId, Vpn)> = self
            .map
            .keys()
            .filter(|(d, _)| *d == domain)
            .copied()
            .collect();
        let n = victims.len() as u64;
        for v in victims {
            self.map.remove(&v);
        }
        self.invalidations += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId(0);
    const D1: DomainId = DomainId(1);

    #[test]
    fn hit_after_insert() {
        let mut tlb = IoTlb::new(4);
        assert_eq!(tlb.lookup(D0, Vpn(1)), None);
        tlb.insert(D0, Vpn(1), FrameId(9));
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(9)));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn domains_are_isolated() {
        let mut tlb = IoTlb::new(4);
        tlb.insert(D0, Vpn(1), FrameId(1));
        assert_eq!(tlb.lookup(D1, Vpn(1)), None);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut tlb = IoTlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.lookup(D0, Vpn(1)); // promote 1
        tlb.insert(D0, Vpn(3), FrameId(3)); // evicts 2
        assert_eq!(tlb.lookup(D0, Vpn(2)), None);
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(1)));
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut tlb = IoTlb::new(4);
        tlb.insert(D0, Vpn(1), FrameId(1));
        assert!(tlb.invalidate(D0, Vpn(1)));
        assert!(!tlb.invalidate(D0, Vpn(1)));
        assert_eq!(tlb.lookup(D0, Vpn(1)), None);
        assert_eq!(tlb.invalidations(), 1);
    }

    #[test]
    fn invalidate_domain_sweeps() {
        let mut tlb = IoTlb::new(8);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.insert(D1, Vpn(1), FrameId(3));
        assert_eq!(tlb.invalidate_domain(D0), 2);
        assert_eq!(tlb.lookup(D1, Vpn(1)), Some(FrameId(3)));
    }

    #[test]
    fn eviction_follows_insertion_order_without_lookups() {
        // With no intervening hits, the recency stamp is the insertion
        // tick, so victims fall in strict FIFO order.
        let mut tlb = IoTlb::new(3);
        for i in 1..=3 {
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        for i in 4..=6 {
            tlb.insert(D0, Vpn(i), FrameId(i));
            // Vpn(i-3) was the oldest surviving entry; it must be the
            // one displaced, and nothing newer may go with it.
            assert_eq!(tlb.len(), 3);
            for j in 1..=6 {
                let cached = tlb.pte_cached(D0, Vpn(j));
                assert_eq!(cached, j > i - 3 && j <= i, "entry {j} after insert {i}");
            }
        }
    }

    #[test]
    fn reinsert_promotes_like_a_hit() {
        // Remapping an already-cached page refreshes its recency: the
        // update must not evict anything, and the refreshed entry must
        // outlive entries that were younger before the update.
        let mut tlb = IoTlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.insert(D0, Vpn(1), FrameId(10)); // update in place
        assert_eq!(tlb.len(), 2, "in-place update must not evict");
        tlb.insert(D0, Vpn(3), FrameId(3)); // evicts 2, not the promoted 1
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(10)));
        assert_eq!(tlb.lookup(D0, Vpn(2)), None);
        assert_eq!(tlb.lookup(D0, Vpn(3)), Some(FrameId(3)));
    }

    #[test]
    fn lookup_promotion_protects_across_many_evictions() {
        let mut tlb = IoTlb::new(4);
        for i in 1..=4 {
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        // Keep touching entry 1 while streaming new entries through:
        // the hot entry must survive every round of eviction.
        for i in 5..=20 {
            assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(1)), "round {i}");
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(1)));
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Recency ticks are unique, so `min_by_key` never tie-breaks on
        // hash-map iteration order: replaying a sequence must strand the
        // exact same survivors.
        let survivors = || {
            let mut tlb = IoTlb::new(5);
            for i in 0..64u64 {
                let vpn = Vpn(i * 7 % 23);
                tlb.insert(D0, vpn, FrameId(i));
                tlb.lookup(D0, Vpn(i * 3 % 23));
            }
            (0..23u64)
                .filter(|&v| tlb.pte_cached(D0, Vpn(v)))
                .collect::<Vec<_>>()
        };
        assert_eq!(survivors(), survivors());
    }

    #[test]
    fn flush_drops_everything_and_counts() {
        let mut tlb = IoTlb::new(8);
        for i in 0..5 {
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        assert_eq!(tlb.flush(), 5);
        assert!(tlb.is_empty());
        assert_eq!(tlb.invalidations(), 5);
        assert_eq!(tlb.lookup(D0, Vpn(0)), None, "flushed entries re-walk");
        assert_eq!(tlb.flush(), 0, "empty flush is free");
    }

    #[test]
    fn invalidate_range_counts() {
        let mut tlb = IoTlb::new(8);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(5), FrameId(5));
        assert_eq!(tlb.invalidate_range(D0, PageRange::new(Vpn(0), 4)), 1);
    }
}
