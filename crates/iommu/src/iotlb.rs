//! The IOTLB: a two-level translation cache in front of the I/O page
//! tables.
//!
//! **Level 0** is a per-domain *contiguity run*: the most recent maximal
//! run of translations inserted back-to-back onto consecutive frames. A
//! lookup inside the run resolves with two compares and an add — no
//! hashing — which is the common case for scatter-gather DMA over
//! contiguous buffers (and degenerates to a last-translation cache for
//! single pages). **Level 1** is the associative cache proper: a
//! capacity-bounded LRU over `(domain, vpn)` whose entries live in a
//! slab of intrusively linked nodes, so lookup, insert, and eviction are
//! all O(1) — the previous implementation scanned every entry to pick
//! the LRU victim on each miss.
//!
//! Entries cache the permission bit alongside the frame, so a hit does
//! not re-walk the page table for permissions. Because the device
//! caches translations, the IOprovider must *invalidate* them when
//! mappings change (Figure 2, steps a–d); every path that removes or
//! changes a translation also drops any level-0 run it overlaps, so the
//! fast path can never serve a stale translation.

use simcore::fxhash::FxHashMap;

use memsim::types::{FrameId, PageRange, Vpn};

use crate::pagetable::{DomainId, HUGE_PAGES};

const NIL: u32 = u32::MAX;

const HUGE_MASK: u64 = HUGE_PAGES - 1;

const HUGE_BITS: u32 = HUGE_PAGES.trailing_zeros();

#[inline]
fn chunk_of(vpn: Vpn) -> u64 {
    vpn.0 >> HUGE_BITS
}

/// A cached translation: the frame plus the permission bit observed at
/// walk time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Backing frame.
    pub frame: FrameId,
    /// Whether DMA writes are permitted.
    pub writable: bool,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    domain: DomainId,
    vpn: Vpn,
    entry: TlbEntry,
    /// Intrusive LRU list links (head = oldest, tail = newest).
    prev: u32,
    next: u32,
}

/// Level-0 state for one domain. An empty `slots` means no run.
#[derive(Debug)]
struct RunCache {
    /// First page of the run.
    vpn0: Vpn,
    /// Frame backing the first page; page `vpn0 + i` maps to
    /// `frame0 + i`.
    frame0: FrameId,
    /// Uniform permission of the whole run.
    writable: bool,
    /// Node slots of the run's pages in ascending-vpn order, so a level-0
    /// hit can promote its LRU node without consulting the hash index.
    slots: Vec<u32>,
    /// Level-0 superpage: the most recently used 2 MiB entry of this
    /// domain, keyed by chunk id. A hit is one shift-and-compare plus an
    /// add — the fast path once a chunk has been folded.
    huge: Option<(u64, TlbEntry)>,
}

impl RunCache {
    fn empty() -> Self {
        RunCache {
            vpn0: Vpn(0),
            frame0: FrameId(0),
            writable: false,
            slots: Vec::new(),
            huge: None,
        }
    }

    fn covers(&self, vpn: Vpn) -> bool {
        !self.slots.is_empty()
            && vpn.0 >= self.vpn0.0
            && vpn.0 - self.vpn0.0 < self.slots.len() as u64
    }
}

/// A bounded two-level LRU translation cache.
#[derive(Debug)]
pub struct IoTlb {
    capacity: usize,
    /// Level 1 index: key → node slot.
    index: FxHashMap<(DomainId, Vpn), u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    /// Level 0, indexed by `DomainId.0` (domains are allotted densely).
    runs: Vec<RunCache>,
    /// Level 1 superpage entries: one per folded 2 MiB chunk, keyed by
    /// `(domain, chunk id)`, evicted FIFO at `super_capacity` (they are
    /// few and enormous-reach, so recency tracking buys nothing).
    supers: FxHashMap<(DomainId, u64), TlbEntry>,
    super_order: Vec<(DomainId, u64)>,
    super_capacity: usize,
    hits: u64,
    super_hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl IoTlb {
    /// Creates a cache holding up to `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs at least one entry");
        IoTlb {
            capacity,
            index: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            runs: Vec::new(),
            supers: FxHashMap::default(),
            super_order: Vec::new(),
            super_capacity: (capacity / 8).max(8),
            hits: 0,
            super_hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        }
    }

    /// Cache hits so far (either level).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hits served by a superpage (2 MiB) entry, a subset of
    /// [`IoTlb::hits`].
    #[must_use]
    pub fn super_hits(&self) -> u64 {
        self.super_hits
    }

    /// Superpage entries currently cached.
    #[must_use]
    pub fn super_len(&self) -> usize {
        self.supers.len()
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries invalidated so far.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Entries displaced by capacity pressure so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current number of cached translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether a translation is currently cached, without promoting it
    /// or touching the hit/miss counters — a probe for eviction-order
    /// assertions and debugging, not a substitute for [`lookup`].
    ///
    /// [`lookup`]: IoTlb::lookup
    #[must_use]
    pub fn pte_cached(&self, domain: DomainId, vpn: Vpn) -> bool {
        self.index.contains_key(&(domain, vpn))
    }

    /// Whether a superpage entry covering `vpn` is cached, without
    /// promoting or counting.
    #[must_use]
    pub fn super_cached(&self, domain: DomainId, vpn: Vpn) -> bool {
        self.supers.contains_key(&(domain, chunk_of(vpn)))
    }

    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_tail(&mut self, slot: u32) {
        let old_tail = self.tail;
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = old_tail;
            n.next = NIL;
        }
        if old_tail != NIL {
            self.nodes[old_tail as usize].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
    }

    fn promote(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        self.unlink(slot);
        self.push_tail(slot);
    }

    fn drop_run(&mut self, domain: DomainId) {
        if let Some(r) = self.runs.get_mut(domain.0 as usize) {
            r.slots.clear();
        }
    }

    /// Folds a fresh translation into the domain's level-0 run: extends
    /// it when this page is the contiguous successor, otherwise restarts
    /// the run at this page.
    fn note_insert_in_run(
        &mut self,
        domain: DomainId,
        vpn: Vpn,
        frame: FrameId,
        writable: bool,
        slot: u32,
    ) {
        let idx = domain.0 as usize;
        if self.runs.len() <= idx {
            self.runs.resize_with(idx + 1, RunCache::empty);
        }
        let run = &mut self.runs[idx];
        let len = run.slots.len() as u64;
        if len > 0
            && vpn.0 == run.vpn0.0 + len
            && frame.0 == run.frame0.0 + len
            && writable == run.writable
        {
            run.slots.push(slot);
        } else {
            run.vpn0 = vpn;
            run.frame0 = frame;
            run.writable = writable;
            run.slots.clear();
            run.slots.push(slot);
        }
    }

    /// Looks up a translation, promoting it on a hit.
    pub fn lookup(&mut self, domain: DomainId, vpn: Vpn) -> Option<FrameId> {
        self.lookup_entry(domain, vpn).map(|e| e.frame)
    }

    /// Looks up a translation with its cached permission bit, promoting
    /// it on a hit. Hits inside the level-0 run skip the hash index
    /// entirely.
    pub fn lookup_entry(&mut self, domain: DomainId, vpn: Vpn) -> Option<TlbEntry> {
        let l0 = self.runs.get(domain.0 as usize).and_then(|run| {
            if run.slots.is_empty() || vpn.0 < run.vpn0.0 {
                return None;
            }
            let delta = vpn.0 - run.vpn0.0;
            (delta < run.slots.len() as u64).then(|| {
                (
                    run.slots[delta as usize],
                    TlbEntry {
                        frame: FrameId(run.frame0.0 + delta),
                        writable: run.writable,
                    },
                )
            })
        });
        if let Some((slot, entry)) = l0 {
            debug_assert_eq!(self.nodes[slot as usize].vpn, vpn);
            self.promote(slot);
            self.hits += 1;
            return Some(entry);
        }
        // Level-0 superpage: one compare against the domain's most
        // recently used 2 MiB entry.
        if let Some(run) = self.runs.get(domain.0 as usize) {
            if let Some((chunk, base)) = run.huge {
                if chunk == chunk_of(vpn) {
                    self.hits += 1;
                    self.super_hits += 1;
                    return Some(Self::synth_super(base, vpn));
                }
            }
        }
        match self.index.get(&(domain, vpn)) {
            Some(&slot) => {
                self.promote(slot);
                self.hits += 1;
                Some(self.nodes[slot as usize].entry)
            }
            None => {
                // Level-1 superpage store.
                if let Some(&base) = self.supers.get(&(domain, chunk_of(vpn))) {
                    self.set_l0_super(domain, chunk_of(vpn), base);
                    self.hits += 1;
                    self.super_hits += 1;
                    return Some(Self::synth_super(base, vpn));
                }
                self.misses += 1;
                None
            }
        }
    }

    /// The per-page translation a superpage base entry implies for `vpn`.
    #[inline]
    fn synth_super(base: TlbEntry, vpn: Vpn) -> TlbEntry {
        TlbEntry {
            frame: FrameId(base.frame.0 + (vpn.0 & HUGE_MASK)),
            writable: base.writable,
        }
    }

    fn set_l0_super(&mut self, domain: DomainId, chunk: u64, base: TlbEntry) {
        let idx = domain.0 as usize;
        if self.runs.len() <= idx {
            self.runs.resize_with(idx + 1, RunCache::empty);
        }
        self.runs[idx].huge = Some((chunk, base));
    }

    fn drop_l0_super_covering(&mut self, domain: DomainId, chunk: u64) {
        if let Some(run) = self.runs.get_mut(domain.0 as usize) {
            if run.huge.is_some_and(|(c, _)| c == chunk) {
                run.huge = None;
            }
        }
    }

    /// Inserts a superpage (2 MiB) entry covering `base_vpn`'s chunk:
    /// `base_vpn + i` maps to `frame0 + i` for all 512 pages. Evicts the
    /// oldest superpage at capacity and drops any now-shadowed 4 KiB
    /// entries of the chunk (they would alias the fold).
    pub fn insert_super(
        &mut self,
        domain: DomainId,
        base_vpn: Vpn,
        frame0: FrameId,
        writable: bool,
    ) {
        let chunk = chunk_of(base_vpn);
        let base = TlbEntry {
            frame: frame0,
            writable,
        };
        let key = (domain, chunk);
        if self.supers.insert(key, base).is_none() {
            if self.supers.len() > self.super_capacity {
                let victim = self.super_order.remove(0);
                self.supers.remove(&victim);
                self.drop_l0_super_covering(victim.0, victim.1);
                self.evictions += 1;
            }
            self.super_order.push(key);
        }
        // Shadowed 4 KiB entries of the folded chunk are dropped without
        // counting invalidations: the translation they held stays
        // servable (identically) through the superpage.
        let first = Vpn(chunk << HUGE_BITS);
        for i in 0..HUGE_PAGES {
            let v = Vpn(first.0 + i);
            if let Some(slot) = self.index.remove(&(domain, v)) {
                self.unlink(slot);
                self.free.push(slot);
                if self
                    .runs
                    .get(domain.0 as usize)
                    .is_some_and(|r| r.covers(v))
                {
                    self.drop_run(domain);
                }
            }
        }
        self.set_l0_super(domain, chunk, base);
    }

    /// Inserts a writable translation after a successful walk, evicting
    /// the LRU entry if full.
    pub fn insert(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId) {
        self.insert_pte(domain, vpn, frame, true);
    }

    /// Inserts a translation with its permission bit, evicting the LRU
    /// entry if full. Re-inserting a cached page updates it in place and
    /// promotes it like a hit.
    pub fn insert_pte(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId, writable: bool) {
        let key = (domain, vpn);
        if let Some(&slot) = self.index.get(&key) {
            self.nodes[slot as usize].entry = TlbEntry { frame, writable };
            self.promote(slot);
            self.note_insert_in_run(domain, vpn, frame, writable, slot);
            return;
        }
        if self.index.len() >= self.capacity {
            self.evict_oldest();
        }
        let entry = TlbEntry { frame, writable };
        let slot = match self.free.pop() {
            Some(s) => {
                let n = &mut self.nodes[s as usize];
                n.domain = domain;
                n.vpn = vpn;
                n.entry = entry;
                s
            }
            None => {
                self.nodes.push(Node {
                    domain,
                    vpn,
                    entry,
                    prev: NIL,
                    next: NIL,
                });
                u32::try_from(self.nodes.len() - 1).expect("IOTLB slab fits in u32")
            }
        };
        self.push_tail(slot);
        self.index.insert(key, slot);
        self.note_insert_in_run(domain, vpn, frame, writable, slot);
    }

    /// Refreshes a cached translation in place after a re-map, without
    /// touching recency or counters; no-op when the page is not cached.
    /// This keeps the cache coherent with the table, so hits never need
    /// a table re-check.
    pub fn refresh(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId, writable: bool) {
        let Some(&slot) = self.index.get(&(domain, vpn)) else {
            return;
        };
        self.nodes[slot as usize].entry = TlbEntry { frame, writable };
        // The run's arithmetic may now be stale for this page.
        let stale = self.runs.get(domain.0 as usize).is_some_and(|run| {
            run.covers(vpn)
                && (FrameId(run.frame0.0 + (vpn.0 - run.vpn0.0)) != frame
                    || run.writable != writable)
        });
        if stale {
            self.drop_run(domain);
        }
    }

    fn evict_oldest(&mut self) {
        let slot = self.head;
        debug_assert_ne!(slot, NIL, "evicting from an empty IOTLB");
        let n = self.nodes[slot as usize];
        self.unlink(slot);
        self.index.remove(&(n.domain, n.vpn));
        if self
            .runs
            .get(n.domain.0 as usize)
            .is_some_and(|r| r.covers(n.vpn))
        {
            self.drop_run(n.domain);
        }
        self.free.push(slot);
        self.evictions += 1;
    }

    /// Invalidates one translation. Returns `true` when an entry was
    /// dropped. Invalidating *any* page covered by a superpage entry
    /// drops the whole superpage (the fold can no longer be trusted).
    pub fn invalidate(&mut self, domain: DomainId, vpn: Vpn) -> bool {
        let mut dropped = false;
        let chunk = chunk_of(vpn);
        if self.supers.remove(&(domain, chunk)).is_some() {
            self.super_order.retain(|&k| k != (domain, chunk));
            self.drop_l0_super_covering(domain, chunk);
            self.invalidations += 1;
            dropped = true;
        }
        let Some(slot) = self.index.remove(&(domain, vpn)) else {
            return dropped;
        };
        self.unlink(slot);
        self.free.push(slot);
        if self
            .runs
            .get(domain.0 as usize)
            .is_some_and(|r| r.covers(vpn))
        {
            self.drop_run(domain);
        }
        self.invalidations += 1;
        true
    }

    /// Invalidates every cached translation of a range.
    pub fn invalidate_range(&mut self, domain: DomainId, range: PageRange) -> u64 {
        range
            .iter()
            .filter(|&vpn| self.invalidate(domain, vpn))
            .count() as u64
    }

    /// Flushes the whole cache (a chaos-injected shootdown racing
    /// in-flight resolutions, or a global invalidation command).
    /// Returns the number of entries dropped. Purely a performance
    /// event: the next access re-walks the page tables.
    pub fn flush(&mut self) -> u64 {
        let n = (self.index.len() + self.supers.len()) as u64;
        self.index.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.supers.clear();
        self.super_order.clear();
        for r in &mut self.runs {
            r.slots.clear();
            r.huge = None;
        }
        self.invalidations += n;
        n
    }

    /// Invalidates everything belonging to a domain (channel teardown).
    pub fn invalidate_domain(&mut self, domain: DomainId) -> u64 {
        // Walk the LRU list (a deterministic order) collecting victims.
        let mut victims = Vec::new();
        let mut s = self.head;
        while s != NIL {
            let n = &self.nodes[s as usize];
            if n.domain == domain {
                victims.push(s);
            }
            s = n.next;
        }
        let mut n = victims.len() as u64;
        for slot in victims {
            let node = self.nodes[slot as usize];
            self.index.remove(&(node.domain, node.vpn));
            self.unlink(slot);
            self.free.push(slot);
        }
        let before = self.supers.len();
        self.supers.retain(|&(d, _), _| d != domain);
        self.super_order.retain(|&(d, _)| d != domain);
        n += (before - self.supers.len()) as u64;
        if let Some(run) = self.runs.get_mut(domain.0 as usize) {
            run.huge = None;
        }
        self.drop_run(domain);
        self.invalidations += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId(0);
    const D1: DomainId = DomainId(1);

    #[test]
    fn hit_after_insert() {
        let mut tlb = IoTlb::new(4);
        assert_eq!(tlb.lookup(D0, Vpn(1)), None);
        tlb.insert(D0, Vpn(1), FrameId(9));
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(9)));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn domains_are_isolated() {
        let mut tlb = IoTlb::new(4);
        tlb.insert(D0, Vpn(1), FrameId(1));
        assert_eq!(tlb.lookup(D1, Vpn(1)), None);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut tlb = IoTlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.lookup(D0, Vpn(1)); // promote 1
        tlb.insert(D0, Vpn(3), FrameId(3)); // evicts 2
        assert_eq!(tlb.lookup(D0, Vpn(2)), None);
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(1)));
        assert_eq!(tlb.len(), 2);
        assert_eq!(tlb.evictions(), 1);
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut tlb = IoTlb::new(4);
        tlb.insert(D0, Vpn(1), FrameId(1));
        assert!(tlb.invalidate(D0, Vpn(1)));
        assert!(!tlb.invalidate(D0, Vpn(1)));
        assert_eq!(tlb.lookup(D0, Vpn(1)), None);
        assert_eq!(tlb.invalidations(), 1);
    }

    #[test]
    fn invalidate_domain_sweeps() {
        let mut tlb = IoTlb::new(8);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.insert(D1, Vpn(1), FrameId(3));
        assert_eq!(tlb.invalidate_domain(D0), 2);
        assert_eq!(tlb.lookup(D1, Vpn(1)), Some(FrameId(3)));
    }

    #[test]
    fn eviction_follows_insertion_order_without_lookups() {
        // With no intervening hits, list order is insertion order, so
        // victims fall in strict FIFO order.
        let mut tlb = IoTlb::new(3);
        for i in 1..=3 {
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        for i in 4..=6 {
            tlb.insert(D0, Vpn(i), FrameId(i));
            // Vpn(i-3) was the oldest surviving entry; it must be the
            // one displaced, and nothing newer may go with it.
            assert_eq!(tlb.len(), 3);
            for j in 1..=6 {
                let cached = tlb.pte_cached(D0, Vpn(j));
                assert_eq!(cached, j > i - 3 && j <= i, "entry {j} after insert {i}");
            }
        }
    }

    #[test]
    fn reinsert_promotes_like_a_hit() {
        // Remapping an already-cached page refreshes its recency: the
        // update must not evict anything, and the refreshed entry must
        // outlive entries that were younger before the update.
        let mut tlb = IoTlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.insert(D0, Vpn(1), FrameId(10)); // update in place
        assert_eq!(tlb.len(), 2, "in-place update must not evict");
        tlb.insert(D0, Vpn(3), FrameId(3)); // evicts 2, not the promoted 1
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(10)));
        assert_eq!(tlb.lookup(D0, Vpn(2)), None);
        assert_eq!(tlb.lookup(D0, Vpn(3)), Some(FrameId(3)));
    }

    #[test]
    fn lookup_promotion_protects_across_many_evictions() {
        let mut tlb = IoTlb::new(4);
        for i in 1..=4 {
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        // Keep touching entry 1 while streaming new entries through:
        // the hot entry must survive every round of eviction.
        for i in 5..=20 {
            assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(1)), "round {i}");
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(1)));
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // Both levels are deterministic structures (an intrusive list
        // and a dense run), so replaying a sequence must strand the
        // exact same survivors.
        let survivors = || {
            let mut tlb = IoTlb::new(5);
            for i in 0..64u64 {
                let vpn = Vpn(i * 7 % 23);
                tlb.insert(D0, vpn, FrameId(i));
                tlb.lookup(D0, Vpn(i * 3 % 23));
            }
            (0..23u64)
                .filter(|&v| tlb.pte_cached(D0, Vpn(v)))
                .collect::<Vec<_>>()
        };
        assert_eq!(survivors(), survivors());
    }

    #[test]
    fn flush_drops_everything_and_counts() {
        let mut tlb = IoTlb::new(8);
        for i in 0..5 {
            tlb.insert(D0, Vpn(i), FrameId(i));
        }
        assert_eq!(tlb.flush(), 5);
        assert!(tlb.is_empty());
        assert_eq!(tlb.invalidations(), 5);
        assert_eq!(tlb.lookup(D0, Vpn(0)), None, "flushed entries re-walk");
        assert_eq!(tlb.flush(), 0, "empty flush is free");
    }

    #[test]
    fn invalidate_range_counts() {
        let mut tlb = IoTlb::new(8);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(5), FrameId(5));
        assert_eq!(tlb.invalidate_range(D0, PageRange::new(Vpn(0), 4)), 1);
    }

    #[test]
    fn contiguous_inserts_hit_through_the_run() {
        // A scatter-gather fill: consecutive pages onto consecutive
        // frames. Every page of the run must hit, with the right frame.
        let mut tlb = IoTlb::new(16);
        for i in 0..8u64 {
            tlb.insert(D0, Vpn(100 + i), FrameId(500 + i));
        }
        for i in 0..8u64 {
            assert_eq!(tlb.lookup(D0, Vpn(100 + i)), Some(FrameId(500 + i)));
        }
        assert_eq!(tlb.hits(), 8);
    }

    #[test]
    fn permission_bit_is_cached() {
        let mut tlb = IoTlb::new(4);
        tlb.insert_pte(D0, Vpn(1), FrameId(1), false);
        let e = tlb.lookup_entry(D0, Vpn(1)).expect("hit");
        assert!(!e.writable);
        tlb.insert_pte(D0, Vpn(1), FrameId(1), true);
        assert!(tlb.lookup_entry(D0, Vpn(1)).expect("hit").writable);
    }

    #[test]
    fn refresh_updates_without_promoting() {
        let mut tlb = IoTlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1));
        tlb.insert(D0, Vpn(2), FrameId(2));
        tlb.refresh(D0, Vpn(1), FrameId(99), true);
        // The refreshed frame is visible, but 1 is still the LRU victim.
        tlb.insert(D0, Vpn(3), FrameId(3));
        assert_eq!(tlb.lookup(D0, Vpn(1)), None, "refresh must not promote");
        assert_eq!(tlb.lookup(D0, Vpn(2)), Some(FrameId(2)));
        // A refresh of an uncached page is a no-op.
        tlb.refresh(D1, Vpn(1), FrameId(1), true);
        assert!(!tlb.pte_cached(D1, Vpn(1)));
    }

    #[test]
    fn superpage_covers_the_whole_chunk() {
        let mut tlb = IoTlb::new(16);
        tlb.insert_super(D0, Vpn(512), FrameId(7000), true);
        assert_eq!(tlb.super_len(), 1);
        for i in [0u64, 17, 511] {
            let e = tlb.lookup_entry(D0, Vpn(512 + i)).expect("super hit");
            assert_eq!(e.frame, FrameId(7000 + i));
            assert!(e.writable);
        }
        assert_eq!(tlb.super_hits(), 3);
        assert_eq!(tlb.misses(), 0);
        assert_eq!(tlb.lookup(D0, Vpn(1024)), None, "next chunk misses");
        assert_eq!(tlb.lookup(D1, Vpn(600)), None, "domains isolated");
    }

    #[test]
    fn superpage_insert_drops_shadowed_small_entries() {
        let mut tlb = IoTlb::new(1024);
        for i in 0..HUGE_PAGES {
            tlb.insert(D0, Vpn(512 + i), FrameId(7000 + i));
        }
        assert_eq!(tlb.len(), HUGE_PAGES as usize);
        tlb.insert_super(D0, Vpn(512), FrameId(7000), true);
        assert_eq!(tlb.len(), 0, "4 KiB entries are shadowed by the fold");
        assert_eq!(tlb.invalidations(), 0, "shadowing is not an invalidation");
        assert_eq!(tlb.lookup(D0, Vpn(700)), Some(FrameId(7188)));
    }

    #[test]
    fn invalidating_any_covered_page_drops_the_superpage() {
        let mut tlb = IoTlb::new(16);
        tlb.insert_super(D0, Vpn(512), FrameId(7000), true);
        assert!(tlb.invalidate(D0, Vpn(777)));
        assert_eq!(tlb.super_len(), 0);
        assert_eq!(tlb.lookup(D0, Vpn(512)), None);
        assert_eq!(tlb.invalidations(), 1);
        // Flush and domain teardown also purge superpages.
        tlb.insert_super(D0, Vpn(512), FrameId(7000), true);
        assert_eq!(tlb.invalidate_domain(D0), 1);
        assert_eq!(tlb.super_len(), 0);
        tlb.insert_super(D0, Vpn(512), FrameId(7000), true);
        assert_eq!(tlb.flush(), 1);
        assert_eq!(tlb.super_len(), 0);
        assert_eq!(tlb.lookup(D0, Vpn(600)), None);
    }

    #[test]
    fn superpages_evict_fifo_at_capacity() {
        let mut tlb = IoTlb::new(64); // super capacity = 8
        for c in 0..9u64 {
            tlb.insert_super(D0, Vpn(c * 512), FrameId(c * 1000), true);
        }
        assert_eq!(tlb.super_len(), 8);
        assert!(!tlb.super_cached(D0, Vpn(0)), "oldest superpage evicted");
        assert!(tlb.super_cached(D0, Vpn(8 * 512)));
        assert_eq!(tlb.evictions(), 1);
    }

    #[test]
    fn remap_inside_a_run_never_serves_stale_frames() {
        let mut tlb = IoTlb::new(16);
        for i in 0..4u64 {
            tlb.insert(D0, Vpn(i), FrameId(10 + i));
        }
        // Remap the middle of the run to a non-contiguous frame.
        tlb.insert(D0, Vpn(2), FrameId(77));
        assert_eq!(tlb.lookup(D0, Vpn(2)), Some(FrameId(77)));
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some(FrameId(11)));
        tlb.refresh(D0, Vpn(3), FrameId(88), true);
        assert_eq!(tlb.lookup(D0, Vpn(3)), Some(FrameId(88)));
    }
}
