//! Two-dimensional (nested) IOMMU translation.
//!
//! §2.4 of the paper: recent hardware supports separate guest and host
//! I/O page tables — the guest table translates guest-virtual to
//! guest-physical pages (the IOuser can use it for *strict protection*
//! against errant devices), and the host table translates guest-physical
//! to host-physical frames (the IOprovider needs page faults here for the
//! canonical memory optimizations). The hardware concatenates the two.
//!
//! This module models that concatenation so the protection property and
//! the NPF property can be exercised independently.

use memsim::types::{FrameId, Vpn};

use crate::pagetable::{IoPageTable, Translation};

/// A guest-physical page number (the intermediate address of the 2D
/// walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpn(pub u64);

/// Result of a nested walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedTranslation {
    /// Both stages translated.
    Ok(FrameId),
    /// The *guest* stage rejected the access: a protection event the
    /// IOuser configured deliberately; not recoverable by the host.
    GuestDenied,
    /// The *host* stage missed: a normal NPF the IOprovider resolves.
    HostFault(Gpn),
    /// The host stage rejected the access outright (pinned-only mode or
    /// permission violation).
    HostError,
}

/// A two-stage translation pipeline.
///
/// The guest stage maps IOuser virtual pages to guest-physical pages;
/// the host stage maps guest-physical pages to host frames. The guest
/// table reuses [`IoPageTable`] with `FrameId` standing in for `Gpn`
/// (both are raw page numbers).
#[derive(Debug)]
pub struct NestedWalk<'a> {
    /// Guest stage (gVA -> gPA), owned by the IOuser.
    pub guest: &'a mut IoPageTable,
    /// Host stage (gPA -> hPA), owned by the IOprovider.
    pub host: &'a mut IoPageTable,
}

impl NestedWalk<'_> {
    /// Performs the concatenated walk for one access.
    pub fn translate(&mut self, vpn: Vpn, write: bool) -> NestedTranslation {
        let gpn = match self.guest.translate(vpn, write) {
            Translation::Ok(f) => Gpn(f.0),
            // A guest-stage miss or permission failure is the IOuser's
            // protection policy firing, regardless of the table mode.
            Translation::Fault | Translation::Error => return NestedTranslation::GuestDenied,
        };
        match self.host.translate(Vpn(gpn.0), write) {
            Translation::Ok(frame) => NestedTranslation::Ok(frame),
            Translation::Fault => NestedTranslation::HostFault(gpn),
            Translation::Error => NestedTranslation::HostError,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::{DomainId, TableMode};

    fn tables() -> (IoPageTable, IoPageTable) {
        (
            IoPageTable::new(DomainId(0), TableMode::PinnedOnly),
            IoPageTable::new(DomainId(1), TableMode::PageFaultCapable),
        )
    }

    #[test]
    fn both_stages_present_translates() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true); // gVA 5 -> gPA 100
        host.map(Vpn(100), FrameId(7), true); // gPA 100 -> hPA 7
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        assert_eq!(w.translate(Vpn(5), true), NestedTranslation::Ok(FrameId(7)));
    }

    #[test]
    fn guest_stage_protects() {
        let (mut guest, mut host) = tables();
        host.map(Vpn(100), FrameId(7), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        // The IOuser never granted the device access to gVA 5.
        assert_eq!(w.translate(Vpn(5), false), NestedTranslation::GuestDenied);
    }

    #[test]
    fn host_stage_faults_for_npf() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        // The guest allowed the access, but the IOprovider has paged the
        // guest-physical page out: a recoverable NPF.
        assert_eq!(
            w.translate(Vpn(5), false),
            NestedTranslation::HostFault(Gpn(100))
        );
    }

    #[test]
    fn host_resolution_makes_walk_succeed() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        {
            let mut w = NestedWalk {
                guest: &mut guest,
                host: &mut host,
            };
            assert!(matches!(
                w.translate(Vpn(5), false),
                NestedTranslation::HostFault(_)
            ));
        }
        host.map(Vpn(100), FrameId(3), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        assert_eq!(
            w.translate(Vpn(5), false),
            NestedTranslation::Ok(FrameId(3))
        );
    }
}
