//! Two-dimensional (nested) IOMMU translation.
//!
//! §2.4 of the paper: recent hardware supports separate guest and host
//! I/O page tables — the guest table translates guest-virtual to
//! guest-physical pages (the IOuser can use it for *strict protection*
//! against errant devices), and the host table translates guest-physical
//! to host-physical frames (the IOprovider needs page faults here for the
//! canonical memory optimizations). The hardware concatenates the two.
//!
//! This module models that concatenation so the protection property and
//! the NPF property can be exercised independently.

use memsim::types::{FrameId, Vpn};

use crate::pagetable::{IoPageTable, Translation};

/// A guest-physical page number (the intermediate address of the 2D
/// walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpn(pub u64);

/// Result of a nested walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedTranslation {
    /// Both stages translated.
    Ok(FrameId),
    /// The *guest* stage rejected the access: a protection event the
    /// IOuser configured deliberately; not recoverable by the host.
    GuestDenied,
    /// The *host* stage missed: a normal NPF the IOprovider resolves.
    HostFault(Gpn),
    /// The host stage rejected the access outright (pinned-only mode or
    /// permission violation).
    HostError,
}

/// Memory-reference accounting for two-dimensional walks.
///
/// The simulated tables are flat maps, but real nested walks are radix
/// walks: with `G` guest levels and `H` host levels, each of the `G`
/// guest PTE pointers is a guest-physical address that itself takes an
/// `H`-step host walk to follow, and the final gPA takes one more. A
/// full 2D walk therefore loads `G*(H+1) + H` PTEs — 24 for the
/// classic `G = H = 4` case, which is why the IOTLB earns its keep
/// under virtualization. This struct charges that model per walk so
/// experiments can report walk-memory traffic, not just walk counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStats {
    guest_levels: u64,
    host_levels: u64,
    walks: u64,
    pte_loads: u64,
    huge_host_walks: u64,
}

impl WalkStats {
    /// Accounting for `guest_levels`-deep guest and `host_levels`-deep
    /// host radix tables.
    ///
    /// # Panics
    ///
    /// Panics when either depth is zero.
    #[must_use]
    pub fn new(guest_levels: u64, host_levels: u64) -> Self {
        assert!(
            guest_levels > 0 && host_levels > 0,
            "radix walks need at least one level per stage"
        );
        WalkStats {
            guest_levels,
            host_levels,
            walks: 0,
            pte_loads: 0,
            huge_host_walks: 0,
        }
    }

    /// PTE loads of one complete two-dimensional walk:
    /// `G*(H+1) + H`.
    #[must_use]
    pub fn full_walk_loads(&self) -> u64 {
        self.guest_levels * (self.host_levels + 1) + self.host_levels
    }

    /// Walks accounted so far.
    #[must_use]
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total PTE loads accounted so far.
    #[must_use]
    pub fn pte_loads(&self) -> u64 {
        self.pte_loads
    }

    /// Mean PTE loads per walk (0.0 before any walk).
    #[must_use]
    pub fn mean_walk_loads(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.pte_loads as f64 / self.walks as f64
        }
    }

    /// Final host walks that terminated at a 2 MiB leaf (one radix
    /// level early).
    #[must_use]
    pub fn huge_host_walks(&self) -> u64 {
        self.huge_host_walks
    }

    /// Charges one walk with the given `outcome`. A denied guest stage
    /// still performed its full `G*(H+1)` nested reads to discover the
    /// missing leaf; only walks that produced a gPA pay the final
    /// host walk — `H` steps, or `H - 1` when the host leaf is a
    /// folded 2 MiB entry (`host_leaf_huge`, the walk stops at the
    /// penultimate level).
    fn charge(&mut self, outcome: NestedTranslation, host_leaf_huge: bool) {
        self.walks += 1;
        self.pte_loads += self.guest_levels * (self.host_levels + 1);
        if outcome != NestedTranslation::GuestDenied {
            if host_leaf_huge {
                self.pte_loads += self.host_levels.saturating_sub(1);
                self.huge_host_walks += 1;
            } else {
                self.pte_loads += self.host_levels;
            }
        }
    }
}

/// A two-stage translation pipeline.
///
/// The guest stage maps IOuser virtual pages to guest-physical pages;
/// the host stage maps guest-physical pages to host frames. The guest
/// table reuses [`IoPageTable`] with `FrameId` standing in for `Gpn`
/// (both are raw page numbers).
#[derive(Debug)]
pub struct NestedWalk<'a> {
    /// Guest stage (gVA -> gPA), owned by the IOuser.
    pub guest: &'a mut IoPageTable,
    /// Host stage (gPA -> hPA), owned by the IOprovider.
    pub host: &'a mut IoPageTable,
}

impl NestedWalk<'_> {
    /// Performs the concatenated walk for one access.
    pub fn translate(&mut self, vpn: Vpn, write: bool) -> NestedTranslation {
        let gpn = match self.guest.translate(vpn, write) {
            Translation::Ok(f) => Gpn(f.0),
            // A guest-stage miss or permission failure is the IOuser's
            // protection policy firing, regardless of the table mode.
            Translation::Fault | Translation::Error => return NestedTranslation::GuestDenied,
        };
        match self.host.translate(Vpn(gpn.0), write) {
            Translation::Ok(frame) => NestedTranslation::Ok(frame),
            Translation::Fault => NestedTranslation::HostFault(gpn),
            Translation::Error => NestedTranslation::HostError,
        }
    }

    /// Performs the concatenated walk and charges its memory-reference
    /// cost to `stats`. A host stage that resolved through a folded
    /// 2 MiB leaf pays one fewer host-level load.
    pub fn translate_counted(
        &mut self,
        vpn: Vpn,
        write: bool,
        stats: &mut WalkStats,
    ) -> NestedTranslation {
        let outcome = self.translate(vpn, write);
        let host_leaf_huge = match outcome {
            // Only a *successful* host leaf can be a folded one; faults
            // and errors mean the leaf was absent or rejected.
            NestedTranslation::Ok(_) => self
                .guest
                .pte(vpn)
                .is_some_and(|g| self.host.is_huge(Vpn(g.frame.0))),
            _ => false,
        };
        stats.charge(outcome, host_leaf_huge);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::{DomainId, TableMode};

    fn tables() -> (IoPageTable, IoPageTable) {
        (
            IoPageTable::new(DomainId(0), TableMode::PinnedOnly),
            IoPageTable::new(DomainId(1), TableMode::PageFaultCapable),
        )
    }

    #[test]
    fn both_stages_present_translates() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true); // gVA 5 -> gPA 100
        host.map(Vpn(100), FrameId(7), true); // gPA 100 -> hPA 7
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        assert_eq!(w.translate(Vpn(5), true), NestedTranslation::Ok(FrameId(7)));
    }

    #[test]
    fn guest_stage_protects() {
        let (mut guest, mut host) = tables();
        host.map(Vpn(100), FrameId(7), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        // The IOuser never granted the device access to gVA 5.
        assert_eq!(w.translate(Vpn(5), false), NestedTranslation::GuestDenied);
    }

    #[test]
    fn host_stage_faults_for_npf() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        // The guest allowed the access, but the IOprovider has paged the
        // guest-physical page out: a recoverable NPF.
        assert_eq!(
            w.translate(Vpn(5), false),
            NestedTranslation::HostFault(Gpn(100))
        );
    }

    #[test]
    fn host_resolution_makes_walk_succeed() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        {
            let mut w = NestedWalk {
                guest: &mut guest,
                host: &mut host,
            };
            assert!(matches!(
                w.translate(Vpn(5), false),
                NestedTranslation::HostFault(_)
            ));
        }
        host.map(Vpn(100), FrameId(3), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        assert_eq!(
            w.translate(Vpn(5), false),
            NestedTranslation::Ok(FrameId(3))
        );
    }

    #[test]
    fn full_walk_costs_g_times_h_plus_one_plus_h() {
        // The canonical 4x4 case: 4*(4+1) + 4 = 24 PTE loads.
        assert_eq!(WalkStats::new(4, 4).full_walk_loads(), 24);
        assert_eq!(WalkStats::new(1, 1).full_walk_loads(), 3);
        assert_eq!(WalkStats::new(4, 5).full_walk_loads(), 29);
    }

    #[test]
    fn complete_walk_charges_full_cost() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        host.map(Vpn(100), FrameId(7), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        let mut stats = WalkStats::new(4, 4);
        assert_eq!(
            w.translate_counted(Vpn(5), true, &mut stats),
            NestedTranslation::Ok(FrameId(7))
        );
        assert_eq!(stats.walks(), 1);
        assert_eq!(stats.pte_loads(), 24);
        assert!((stats.mean_walk_loads() - 24.0).abs() < f64::EPSILON);
    }

    #[test]
    fn host_fault_still_pays_the_full_walk() {
        // An NPF is only *discovered* at the end of the host walk, so
        // its memory cost equals a successful translation's.
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        let mut stats = WalkStats::new(4, 4);
        assert_eq!(
            w.translate_counted(Vpn(5), false, &mut stats),
            NestedTranslation::HostFault(Gpn(100))
        );
        assert_eq!(stats.pte_loads(), stats.full_walk_loads());
    }

    #[test]
    fn guest_denial_skips_the_final_host_walk() {
        let (mut guest, mut host) = tables();
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        let mut stats = WalkStats::new(4, 4);
        assert_eq!(
            w.translate_counted(Vpn(5), false, &mut stats),
            NestedTranslation::GuestDenied
        );
        // 4*(4+1) nested loads but no final host walk.
        assert_eq!(stats.pte_loads(), 20);
    }

    #[test]
    fn accounting_accumulates_across_walks() {
        let (mut guest, mut host) = tables();
        guest.map(Vpn(5), FrameId(100), true);
        host.map(Vpn(100), FrameId(7), true);
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        let mut stats = WalkStats::new(4, 4);
        w.translate_counted(Vpn(5), false, &mut stats); // 24: Ok
        w.translate_counted(Vpn(9), false, &mut stats); // 20: GuestDenied
        w.translate_counted(Vpn(5), false, &mut stats); // 24: Ok
        assert_eq!(stats.walks(), 3);
        assert_eq!(stats.pte_loads(), 68);
        assert!((stats.mean_walk_loads() - 68.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_depth_tables_are_rejected() {
        let _ = WalkStats::new(0, 4);
    }

    #[test]
    fn folded_host_leaf_shortens_the_final_walk() {
        use crate::pagetable::HUGE_PAGES;
        let (mut guest, mut host) = tables();
        host.set_huge_pages(true);
        // Guest maps a full 2 MiB run of gVAs onto a gPA chunk; the host
        // backs that chunk with contiguous frames so it folds.
        for i in 0..HUGE_PAGES {
            guest.map(Vpn(i), FrameId(HUGE_PAGES + i), true);
            host.map(Vpn(HUGE_PAGES + i), FrameId(4096 + i), true);
        }
        assert_eq!(host.huge_ptes(), 1, "host chunk folded");
        let mut w = NestedWalk {
            guest: &mut guest,
            host: &mut host,
        };
        let mut stats = WalkStats::new(4, 4);
        // Translation result is identical to the 4 KiB model...
        assert_eq!(
            w.translate_counted(Vpn(37), true, &mut stats),
            NestedTranslation::Ok(FrameId(4096 + 37))
        );
        // ...but the final host walk stopped one level early:
        // 4*(4+1) + 3 = 23 instead of 24.
        assert_eq!(stats.pte_loads(), 23);
        assert_eq!(stats.huge_host_walks(), 1);
    }

    #[test]
    fn folded_and_flat_host_stages_translate_identically() {
        use crate::pagetable::HUGE_PAGES;
        let run = |huge: bool| {
            let (mut guest, mut host) = tables();
            host.set_huge_pages(huge);
            for i in 0..HUGE_PAGES {
                guest.map(Vpn(i), FrameId(HUGE_PAGES + i), true);
                host.map(Vpn(HUGE_PAGES + i), FrameId(4096 + i), i % 2 == 0 || huge);
            }
            // Odd-writability runs never fold; force both variants
            // through the same probe sequence regardless.
            let mut w = NestedWalk {
                guest: &mut guest,
                host: &mut host,
            };
            let mut out = Vec::new();
            for vpn in [0u64, 37, 511, 512] {
                out.push(w.translate(Vpn(vpn), false));
            }
            out
        };
        // Read-only probes agree whether or not the host stage folded.
        assert_eq!(run(false), run(true));
    }
}
