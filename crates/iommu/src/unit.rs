//! The IOMMU proper: domains + IOTLB + PRI-style fault reporting.
//!
//! This is the functional equivalent of the Connect-IB's on-NIC IOMMU
//! (the paper uses it in place of ATS/PRI, §4 "Basic NPF Support"), and
//! also stands in for a platform IOMMU for the Ethernet prototype.

use std::collections::HashMap;

use memsim::types::{FrameId, PageRange, Vpn};
use simcore::chaos::invariant;
use simcore::trace::{self, ArgValue};

use crate::iotlb::IoTlb;
use crate::pagetable::{DomainId, IoPageTable, TableMode, Translation};

/// An outstanding page request (the PRI analogue). The NIC hands the
/// driver as much context as it can — the paper's third optimization
/// exploits this to batch page-table updates instead of the
/// one-page-per-PRI-request discipline ATS/PRI mandates (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRequest {
    /// Unique request id.
    pub id: u64,
    /// Faulting domain.
    pub domain: DomainId,
    /// Faulting page.
    pub vpn: Vpn,
    /// Whether the access was a write.
    pub write: bool,
}

/// Outcome of an IOMMU access check for one DMA page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaCheck {
    /// Translation succeeded.
    Ok(FrameId),
    /// Page fault; a [`PageRequest`] was queued for the driver.
    Fault(PageRequest),
    /// Fatal translation error (pinned-only table miss or permission
    /// violation).
    Error,
}

/// The I/O memory management unit.
#[derive(Debug)]
pub struct Iommu {
    tables: HashMap<DomainId, IoPageTable>,
    tlb: IoTlb,
    pending: Vec<PageRequest>,
    next_request: u64,
    next_domain: u32,
    /// Invariant-note namespace: distinguishes this unit's domain and
    /// frame ids from other nodes' units inside one global checker.
    chaos_ns: u64,
}

impl Iommu {
    /// Creates an IOMMU with an IOTLB of `tlb_entries` translations.
    #[must_use]
    pub fn new(tlb_entries: usize) -> Self {
        Iommu {
            tables: HashMap::new(),
            tlb: IoTlb::new(tlb_entries),
            pending: Vec::new(),
            next_request: 0,
            next_domain: 0,
            chaos_ns: 0,
        }
    }

    /// Sets the invariant-note namespace (see `invariant::fresh_namespace`).
    pub fn set_chaos_namespace(&mut self, ns: u64) {
        self.chaos_ns = ns;
    }

    /// Creates a new translation domain.
    pub fn create_domain(&mut self, mode: TableMode) -> DomainId {
        let id = DomainId(self.next_domain);
        self.next_domain += 1;
        self.tables.insert(id, IoPageTable::new(id, mode));
        id
    }

    /// The page table of `domain`.
    ///
    /// # Panics
    ///
    /// Panics for unknown domains (a wiring bug, not a runtime error).
    #[must_use]
    pub fn table(&self, domain: DomainId) -> &IoPageTable {
        self.tables.get(&domain).expect("unknown IOMMU domain")
    }

    /// IOTLB statistics.
    #[must_use]
    pub fn tlb(&self) -> &IoTlb {
        &self.tlb
    }

    /// Page requests raised but not yet drained by the driver.
    #[must_use]
    pub fn pending_requests(&self) -> &[PageRequest] {
        &self.pending
    }

    /// Drains the pending page requests (the NPF interrupt handler path).
    pub fn drain_requests(&mut self) -> Vec<PageRequest> {
        let drained = std::mem::take(&mut self.pending);
        if trace::enabled() && !drained.is_empty() {
            trace::counter_now("iommu", "pri_queue_depth", 0.0);
        }
        drained
    }

    /// Checks one DMA page access, consulting the IOTLB then walking the
    /// table; queues a [`PageRequest`] on a recoverable fault.
    pub fn check_dma(&mut self, domain: DomainId, vpn: Vpn, write: bool) -> DmaCheck {
        if let Some(frame) = self.tlb.lookup(domain, vpn) {
            // Permission re-check on the cached entry.
            let table = self.tables.get_mut(&domain).expect("unknown IOMMU domain");
            if let Some(pte) = table.pte(vpn) {
                if write && !pte.writable {
                    return DmaCheck::Error;
                }
                if trace::enabled() {
                    trace::metrics(|m| m.counter_add("iommu.iotlb_hits", 1));
                }
                return DmaCheck::Ok(frame);
            }
            // Stale TLB entry for an unmapped page would be a correctness
            // bug in the invalidation protocol.
            debug_assert!(false, "stale IOTLB entry for {domain}/{vpn}");
        }
        let table = self.tables.get_mut(&domain).expect("unknown IOMMU domain");
        match table.translate(vpn, write) {
            Translation::Ok(frame) => {
                self.tlb.insert(domain, vpn, frame);
                if trace::enabled() {
                    trace::metrics(|m| m.counter_add("iommu.iotlb_misses", 1));
                }
                DmaCheck::Ok(frame)
            }
            Translation::Fault => {
                let req = PageRequest {
                    id: self.next_request,
                    domain,
                    vpn,
                    write,
                };
                self.next_request += 1;
                self.pending.push(req);
                if trace::enabled() {
                    trace::instant_now(
                        "iommu",
                        "page_request",
                        vec![
                            ("request_id", ArgValue::U64(req.id)),
                            ("vpn", ArgValue::U64(vpn.0)),
                            ("write", ArgValue::Bool(write)),
                        ],
                    );
                    trace::counter_now("iommu", "pri_queue_depth", self.pending.len() as f64);
                    trace::metrics(|m| m.counter_add("iommu.page_requests", 1));
                }
                DmaCheck::Fault(req)
            }
            Translation::Error => DmaCheck::Error,
        }
    }

    /// Probes whether a DMA would succeed, *without* raising a page
    /// request or touching statistics. The NIC's backup-ring logic uses
    /// this for `is_descriptor_present` checks (Figure 6).
    #[must_use]
    pub fn probe(&self, domain: DomainId, vpn: Vpn, write: bool) -> bool {
        match self.tables.get(&domain).and_then(|t| t.pte(vpn)) {
            Some(pte) => !write || pte.writable,
            None => false,
        }
    }

    /// Probes an entire range.
    #[must_use]
    pub fn probe_range(&self, domain: DomainId, range: PageRange, write: bool) -> bool {
        range.iter().all(|vpn| self.probe(domain, vpn, write))
    }

    /// Installs a mapping (driver resolving a fault, Figure 2 step 4).
    pub fn map(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId, writable: bool) {
        invariant::note_frame_mapped(
            (self.chaos_ns << 32) | u64::from(domain.0),
            vpn.0,
            (self.chaos_ns << 40) | frame.0,
        );
        self.tables
            .get_mut(&domain)
            .expect("unknown IOMMU domain")
            .map(vpn, frame, writable);
    }

    /// Installs a run of mappings with consecutive frames. Used by the
    /// batched resolution path.
    pub fn map_batch(&mut self, domain: DomainId, mappings: &[(Vpn, FrameId)], writable: bool) {
        let table = self.tables.get_mut(&domain).expect("unknown IOMMU domain");
        for &(vpn, frame) in mappings {
            invariant::note_frame_mapped(
                (self.chaos_ns << 32) | u64::from(domain.0),
                vpn.0,
                (self.chaos_ns << 40) | frame.0,
            );
            table.map(vpn, frame, writable);
        }
    }

    /// Invalidates one page: removes the PTE and purges the IOTLB.
    /// Returns `true` when the page was mapped (the paper's invalidation
    /// flow short-circuits when it was not, Figure 3b).
    pub fn invalidate(&mut self, domain: DomainId, vpn: Vpn) -> bool {
        invariant::note_frame_unmapped((self.chaos_ns << 32) | u64::from(domain.0), vpn.0);
        self.tlb.invalidate(domain, vpn);
        let was_mapped = self
            .tables
            .get_mut(&domain)
            .expect("unknown IOMMU domain")
            .unmap(vpn);
        if trace::enabled() {
            trace::metrics(|m| {
                m.counter_add("iommu.invalidations", 1);
                if was_mapped {
                    m.counter_add("iommu.invalidations_mapped", 1);
                }
            });
        }
        was_mapped
    }

    /// Invalidates a range, returning how many pages were actually
    /// mapped.
    pub fn invalidate_range(&mut self, domain: DomainId, range: PageRange) -> u64 {
        if invariant::enabled() {
            for vpn in range.iter() {
                invariant::note_frame_unmapped((self.chaos_ns << 32) | u64::from(domain.0), vpn.0);
            }
        }
        self.tlb.invalidate_range(domain, range);
        let mapped = self
            .tables
            .get_mut(&domain)
            .expect("unknown IOMMU domain")
            .unmap_range(range);
        if trace::enabled() {
            trace::metrics(|m| {
                m.counter_add("iommu.invalidations", range.pages);
                m.counter_add("iommu.invalidations_mapped", mapped);
            });
        }
        mapped
    }

    /// Tears down a domain entirely.
    pub fn destroy_domain(&mut self, domain: DomainId) {
        invariant::note_domain_destroyed((self.chaos_ns << 32) | u64::from(domain.0));
        self.tlb.invalidate_domain(domain);
        self.tables.remove(&domain);
    }

    /// Flushes the whole IOTLB — the chaos injection point for
    /// shootdown races. Translations are re-walked on the next access;
    /// page tables are untouched, so this is always safe (the property
    /// the chaos sweep verifies).
    pub fn shootdown_all(&mut self) -> u64 {
        let flushed = self.tlb.flush();
        if trace::enabled() && flushed > 0 {
            trace::instant_now(
                "iommu",
                "chaos_shootdown",
                vec![("flushed", ArgValue::U64(flushed))],
            );
            trace::metrics(|m| m.counter_add("iommu.chaos_shootdowns", 1));
        }
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn odp_iommu() -> (Iommu, DomainId) {
        let mut mmu = Iommu::new(64);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        (mmu, d)
    }

    #[test]
    fn mapped_dma_succeeds() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(10), true);
        assert_eq!(mmu.check_dma(d, Vpn(1), true), DmaCheck::Ok(FrameId(10)));
        // Second access hits the IOTLB.
        assert_eq!(mmu.check_dma(d, Vpn(1), true), DmaCheck::Ok(FrameId(10)));
        assert_eq!(mmu.tlb().hits(), 1);
    }

    #[test]
    fn unmapped_dma_raises_page_request() {
        let (mut mmu, d) = odp_iommu();
        let check = mmu.check_dma(d, Vpn(3), true);
        let DmaCheck::Fault(req) = check else {
            panic!("expected fault, got {check:?}");
        };
        assert_eq!(req.domain, d);
        assert_eq!(req.vpn, Vpn(3));
        assert!(req.write);
        assert_eq!(mmu.pending_requests().len(), 1);
        let drained = mmu.drain_requests();
        assert_eq!(drained, vec![req]);
        assert!(mmu.pending_requests().is_empty());
    }

    #[test]
    fn request_ids_are_unique() {
        let (mut mmu, d) = odp_iommu();
        let DmaCheck::Fault(a) = mmu.check_dma(d, Vpn(1), false) else {
            panic!("fault")
        };
        let DmaCheck::Fault(b) = mmu.check_dma(d, Vpn(2), false) else {
            panic!("fault")
        };
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn pinned_only_domain_errors_instead_of_faulting() {
        let mut mmu = Iommu::new(16);
        let d = mmu.create_domain(TableMode::PinnedOnly);
        assert_eq!(mmu.check_dma(d, Vpn(1), false), DmaCheck::Error);
        assert!(mmu.pending_requests().is_empty());
    }

    #[test]
    fn invalidate_purges_tlb_and_table() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(10), true);
        mmu.check_dma(d, Vpn(1), false); // warm the TLB
        assert!(mmu.invalidate(d, Vpn(1)));
        // After invalidation the access faults instead of using a stale
        // translation.
        assert!(matches!(
            mmu.check_dma(d, Vpn(1), false),
            DmaCheck::Fault(_)
        ));
    }

    #[test]
    fn invalidate_unmapped_is_cheap_noop() {
        let (mut mmu, d) = odp_iommu();
        assert!(!mmu.invalidate(d, Vpn(77)));
    }

    #[test]
    fn probe_does_not_fault() {
        let (mut mmu, d) = odp_iommu();
        assert!(!mmu.probe(d, Vpn(1), false));
        assert!(mmu.pending_requests().is_empty());
        mmu.map(d, Vpn(1), FrameId(1), false);
        assert!(mmu.probe(d, Vpn(1), false));
        assert!(!mmu.probe(d, Vpn(1), true), "read-only blocks writes");
        assert!(!mmu.probe_range(d, PageRange::new(Vpn(0), 2), false));
    }

    #[test]
    fn map_batch_installs_all() {
        let (mut mmu, d) = odp_iommu();
        let mappings: Vec<(Vpn, FrameId)> = (0..8).map(|i| (Vpn(i), FrameId(100 + i))).collect();
        mmu.map_batch(d, &mappings, true);
        assert!(mmu.probe_range(d, PageRange::new(Vpn(0), 8), true));
    }

    #[test]
    fn domains_translate_independently() {
        let mut mmu = Iommu::new(16);
        let d0 = mmu.create_domain(TableMode::PageFaultCapable);
        let d1 = mmu.create_domain(TableMode::PageFaultCapable);
        mmu.map(d0, Vpn(1), FrameId(1), true);
        assert!(matches!(
            mmu.check_dma(d1, Vpn(1), false),
            DmaCheck::Fault(_)
        ));
        mmu.destroy_domain(d0);
        assert!(!mmu.probe(d0, Vpn(1), false));
    }
}

#[cfg(test)]
mod teardown_tests {
    use super::*;

    #[test]
    fn destroy_domain_with_pending_requests() {
        let mut mmu = Iommu::new(16);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        mmu.map(d, Vpn(1), FrameId(1), true);
        mmu.check_dma(d, Vpn(1), false); // warm TLB
        mmu.check_dma(d, Vpn(9), true); // pending request
        mmu.destroy_domain(d);
        // Pending requests for dead domains are the driver's to discard;
        // the domain's TLB entries must be gone.
        let stale: Vec<_> = mmu
            .drain_requests()
            .into_iter()
            .filter(|r| r.domain == d)
            .collect();
        assert_eq!(stale.len(), 1, "driver sees and discards it");
        assert!(!mmu.probe(d, Vpn(1), false), "mappings are gone");
    }

    #[test]
    fn tlb_entries_scale_with_use() {
        let mut mmu = Iommu::new(8);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        for i in 0..32 {
            mmu.map(d, Vpn(i), FrameId(i), true);
            mmu.check_dma(d, Vpn(i), false);
        }
        assert!(mmu.tlb().len() <= 8, "capacity bound holds");
        assert!(mmu.tlb().misses() >= 24, "old entries were evicted");
    }
}
