//! The IOMMU proper: domains + IOTLB + PRI-style fault reporting.
//!
//! This is the functional equivalent of the Connect-IB's on-NIC IOMMU
//! (the paper uses it in place of ATS/PRI, §4 "Basic NPF Support"), and
//! also stands in for a platform IOMMU for the Ethernet prototype.
//!
//! The unit keeps the IOTLB *coherent* with the page tables: `map` and
//! `map_batch` refresh any cached entry in place and every invalidation
//! purges the cache, so a TLB hit never needs to re-walk the table for
//! permissions. [`Iommu::check_dma_range`] is the batched fast path: the
//! cached prefix of a scatter-gather range is served from the TLB and
//! the rest is resolved with a single table walk.

use memsim::types::{FrameId, PageRange, Vpn};
use simcore::chaos::invariant;
use simcore::journal;
use simcore::trace::{self, ArgValue, MetricId};

use crate::iotlb::IoTlb;
use crate::pagetable::{DomainId, IoPageTable, TableMode, Translation, HUGE_PAGES};

/// An outstanding page request (the PRI analogue). The NIC hands the
/// driver as much context as it can — the paper's third optimization
/// exploits this to batch page-table updates instead of the
/// one-page-per-PRI-request discipline ATS/PRI mandates (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRequest {
    /// Unique request id.
    pub id: u64,
    /// Faulting domain.
    pub domain: DomainId,
    /// Faulting page.
    pub vpn: Vpn,
    /// Whether the access was a write.
    pub write: bool,
}

/// Outcome of an IOMMU access check for one DMA page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaCheck {
    /// Translation succeeded.
    Ok(FrameId),
    /// Page fault; a [`PageRequest`] was queued for the driver.
    Fault(PageRequest),
    /// Fatal translation error (pinned-only table miss or permission
    /// violation).
    Error,
}

/// Outcome of an IOMMU access check for a whole DMA range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeCheck {
    /// Every page translated; the DMA may proceed.
    Ok,
    /// One or more pages faulted; the page requests were queued and are
    /// repeated here (ascending vpn) for the driver's batched
    /// resolution.
    Fault(Vec<PageRequest>),
    /// Fatal translation error. Requests queued for pages before the
    /// erroring one remain queued.
    Error,
}

/// Interned metric ids for the unit's hot-path counters (resolved once
/// per recorder instead of hashing the metric name per DMA page).
#[derive(Debug, Clone, Copy)]
struct MetricIds {
    iotlb_hits: MetricId,
    iotlb_misses: MetricId,
    iotlb_evictions: MetricId,
    page_requests: MetricId,
    invalidations: MetricId,
    invalidations_mapped: MetricId,
    chaos_shootdowns: MetricId,
}

/// The I/O memory management unit.
#[derive(Debug)]
pub struct Iommu {
    /// Indexed by `DomainId.0`; ids are handed out densely below.
    /// `None` = destroyed domain.
    tables: Vec<Option<IoPageTable>>,
    tlb: IoTlb,
    pending: Vec<PageRequest>,
    next_request: u64,
    /// Invariant-note namespace: distinguishes this unit's domain and
    /// frame ids from other nodes' units inside one global checker.
    chaos_ns: u64,
    /// 2 MiB PTE folding: applied to every table and mirrored into the
    /// IOTLB as superpage entries.
    huge_enabled: bool,
    metric_ids: Option<MetricIds>,
    /// TLB evictions already exported as metrics.
    evictions_reported: u64,
}

impl Iommu {
    /// Creates an IOMMU with an IOTLB of `tlb_entries` translations.
    #[must_use]
    pub fn new(tlb_entries: usize) -> Self {
        Iommu {
            tables: Vec::new(),
            tlb: IoTlb::new(tlb_entries),
            pending: Vec::new(),
            next_request: 0,
            chaos_ns: 0,
            huge_enabled: false,
            metric_ids: None,
            evictions_reported: 0,
        }
    }

    /// Enables (or disables) 2 MiB huge-page folding on every domain,
    /// present and future. Disabling splits existing folds.
    pub fn set_huge_pages(&mut self, enabled: bool) {
        self.huge_enabled = enabled;
        for t in self.tables.iter_mut().flatten() {
            t.set_huge_pages(enabled);
        }
    }

    /// Whether huge-page folding is enabled.
    #[must_use]
    pub fn huge_pages_enabled(&self) -> bool {
        self.huge_enabled
    }

    /// `(promotions, demotions)` summed over every live domain.
    #[must_use]
    pub fn huge_stats(&self) -> (u64, u64) {
        self.tables
            .iter()
            .flatten()
            .fold((0, 0), |(p, d), t| (p + t.promotions(), d + t.demotions()))
    }

    /// Sets the invariant-note namespace (see `invariant::fresh_namespace`).
    pub fn set_chaos_namespace(&mut self, ns: u64) {
        self.chaos_ns = ns;
    }

    /// Creates a new translation domain.
    pub fn create_domain(&mut self, mode: TableMode) -> DomainId {
        let id = DomainId(u32::try_from(self.tables.len()).expect("domain ids fit in u32"));
        let mut table = IoPageTable::new(id, mode);
        table.set_huge_pages(self.huge_enabled);
        self.tables.push(Some(table));
        id
    }

    /// The page table of `domain`.
    ///
    /// # Panics
    ///
    /// Panics for unknown domains (a wiring bug, not a runtime error).
    #[must_use]
    pub fn table(&self, domain: DomainId) -> &IoPageTable {
        self.tables
            .get(domain.0 as usize)
            .and_then(Option::as_ref)
            .expect("unknown IOMMU domain")
    }

    fn table_mut(&mut self, domain: DomainId) -> &mut IoPageTable {
        self.tables
            .get_mut(domain.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown IOMMU domain")
    }

    /// IOTLB statistics.
    #[must_use]
    pub fn tlb(&self) -> &IoTlb {
        &self.tlb
    }

    /// Page requests raised but not yet drained by the driver.
    #[must_use]
    pub fn pending_requests(&self) -> &[PageRequest] {
        &self.pending
    }

    /// Drains the pending page requests (the NPF interrupt handler path).
    pub fn drain_requests(&mut self) -> Vec<PageRequest> {
        let drained = std::mem::take(&mut self.pending);
        if trace::enabled() && !drained.is_empty() {
            trace::counter_now("iommu", "pri_queue_depth", 0.0);
        }
        drained
    }

    /// The interned metric ids, resolving them on first use. `None`
    /// when no trace recorder is installed.
    fn metric_ids(&mut self) -> Option<MetricIds> {
        if self.metric_ids.is_none() {
            let mut ids = None;
            trace::metrics(|m| {
                ids = Some(MetricIds {
                    iotlb_hits: m.metric_id("iommu.iotlb_hits"),
                    iotlb_misses: m.metric_id("iommu.iotlb_misses"),
                    iotlb_evictions: m.metric_id("iommu.iotlb_evictions"),
                    page_requests: m.metric_id("iommu.page_requests"),
                    invalidations: m.metric_id("iommu.invalidations"),
                    invalidations_mapped: m.metric_id("iommu.invalidations_mapped"),
                    chaos_shootdowns: m.metric_id("iommu.chaos_shootdowns"),
                });
            });
            self.metric_ids = ids;
        }
        self.metric_ids
    }

    /// Exports TLB hit/miss tallies (plus any fresh evictions) in one
    /// registry access.
    fn report_tlb(&mut self, hits: u64, misses: u64) {
        let evicted = self.tlb.evictions() - self.evictions_reported;
        self.evictions_reported = self.tlb.evictions();
        if let Some(ids) = self.metric_ids() {
            trace::metrics(|m| {
                if hits > 0 {
                    m.counter_add_id(ids.iotlb_hits, hits);
                }
                if misses > 0 {
                    m.counter_add_id(ids.iotlb_misses, misses);
                }
                if evicted > 0 {
                    m.counter_add_id(ids.iotlb_evictions, evicted);
                }
            });
        }
    }

    /// Queues a page request for the driver, tracing it.
    fn raise_request(&mut self, domain: DomainId, vpn: Vpn, write: bool) -> PageRequest {
        let req = PageRequest {
            id: self.next_request,
            domain,
            vpn,
            write,
        };
        self.next_request += 1;
        self.pending.push(req);
        if trace::enabled() {
            trace::instant_now(
                "iommu",
                "page_request",
                vec![
                    ("request_id", ArgValue::U64(req.id)),
                    ("vpn", ArgValue::U64(vpn.0)),
                    ("write", ArgValue::Bool(write)),
                ],
            );
            trace::counter_now("iommu", "pri_queue_depth", self.pending.len() as f64);
            if let Some(ids) = self.metric_ids() {
                trace::metrics(|m| m.counter_add_id(ids.page_requests, 1));
            }
        }
        req
    }

    /// Checks one DMA page access, consulting the IOTLB then walking the
    /// table; queues a [`PageRequest`] on a recoverable fault.
    pub fn check_dma(&mut self, domain: DomainId, vpn: Vpn, write: bool) -> DmaCheck {
        if let Some(entry) = self.tlb.lookup_entry(domain, vpn) {
            // The cached permission bit is authoritative: map/invalidate
            // keep the TLB coherent, so no table re-check is needed.
            if write && !entry.writable {
                return DmaCheck::Error;
            }
            if trace::enabled() {
                self.report_tlb(1, 0);
            }
            return DmaCheck::Ok(entry.frame);
        }
        let table = self.table_mut(domain);
        match table.translate(vpn, write) {
            Translation::Ok(frame) => {
                if table.is_huge(vpn) {
                    // Fill the whole 2 MiB reach instead of one page.
                    self.sync_super(domain, vpn);
                } else {
                    let writable = table.pte(vpn).is_some_and(|p| p.writable);
                    self.tlb.insert_pte(domain, vpn, frame, writable);
                }
                if trace::enabled() {
                    self.report_tlb(0, 1);
                }
                DmaCheck::Ok(frame)
            }
            Translation::Fault => DmaCheck::Fault(self.raise_request(domain, vpn, write)),
            Translation::Error => DmaCheck::Error,
        }
    }

    /// Checks a whole DMA range: the TLB-cached prefix is consumed page
    /// by page, then *one* table walk resolves the rest of the range —
    /// contiguous present pages fill the TLB (extending its level-0
    /// run), missing pages queue page requests (all of them, so the
    /// driver sees the complete fault set in one interrupt, §4).
    pub fn check_dma_range(
        &mut self,
        domain: DomainId,
        range: PageRange,
        write: bool,
    ) -> RangeCheck {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut error = false;
        let end = range.end().0;
        let mut vpn = range.start.0;
        // TLB fast path: serve cached translations until the first miss.
        while vpn < end {
            match self.tlb.lookup_entry(domain, Vpn(vpn)) {
                Some(e) => {
                    if write && !e.writable {
                        error = true;
                        break;
                    }
                    hits += 1;
                    vpn += 1;
                }
                None => {
                    misses += 1;
                    break;
                }
            }
        }
        let mut faulted: Vec<(Vpn, bool)> = Vec::new();
        let mut filled = 0u64;
        let walk_pages = if error { 0 } else { end.saturating_sub(vpn) };
        if !error && vpn < end {
            // Chunks of the remainder that are already folded: their
            // pages fill through one superpage entry after the walk
            // instead of 512 individual fills.
            let mut folded: Vec<u64> = Vec::new();
            if self.huge_enabled {
                let t = self.table(domain);
                for c in (vpn / HUGE_PAGES)..=((end - 1) / HUGE_PAGES) {
                    if t.is_huge(Vpn(c * HUGE_PAGES)) {
                        folded.push(c);
                    }
                }
            }
            // Single walk for the remainder. Pages the TLB did cache
            // past the first miss are simply re-filled — the table is
            // authoritative and coherent with the cache.
            let rest = PageRange::new(Vpn(vpn), end - vpn);
            let table = self
                .tables
                .get_mut(domain.0 as usize)
                .and_then(Option::as_mut)
                .expect("unknown IOMMU domain");
            let mode = table.mode();
            let tlb = &mut self.tlb;
            table.walk_range(rest, |page, pte| {
                if error {
                    return;
                }
                match pte {
                    Some(p) if write && !p.writable => error = true,
                    Some(p) => {
                        if folded.binary_search(&(page.0 / HUGE_PAGES)).is_err() {
                            tlb.insert_pte(domain, page, p.frame, p.writable);
                        }
                        filled += 1;
                    }
                    None => match mode {
                        TableMode::PageFaultCapable => faulted.push((page, write)),
                        TableMode::PinnedOnly => error = true,
                    },
                }
            });
            for c in folded {
                self.sync_super(domain, Vpn(c * HUGE_PAGES));
            }
        }
        if trace::enabled() {
            self.report_tlb(hits, misses);
        }
        if journal::enabled() && walk_pages > 0 {
            journal::mark(journal::MarkKind::IommuWalk, walk_pages);
            if filled > 0 {
                journal::mark(journal::MarkKind::IotlbFill, filled);
            }
        }
        let requests: Vec<PageRequest> = faulted
            .into_iter()
            .map(|(page, w)| self.raise_request(domain, page, w))
            .collect();
        if error {
            RangeCheck::Error
        } else if requests.is_empty() {
            RangeCheck::Ok
        } else {
            RangeCheck::Fault(requests)
        }
    }

    /// Probes whether a DMA would succeed, *without* raising a page
    /// request or touching statistics. The NIC's backup-ring logic uses
    /// this for `is_descriptor_present` checks (Figure 6).
    #[must_use]
    pub fn probe(&self, domain: DomainId, vpn: Vpn, write: bool) -> bool {
        match self
            .tables
            .get(domain.0 as usize)
            .and_then(Option::as_ref)
            .and_then(|t| t.pte(vpn))
        {
            Some(pte) => !write || pte.writable,
            None => false,
        }
    }

    /// Probes an entire range in one pass over the table.
    #[must_use]
    pub fn probe_range(&self, domain: DomainId, range: PageRange, write: bool) -> bool {
        self.tables
            .get(domain.0 as usize)
            .and_then(Option::as_ref)
            .is_some_and(|t| t.probe_range(range, write))
    }

    /// Installs a mapping (driver resolving a fault, Figure 2 step 4).
    /// Any cached translation is refreshed in place, keeping the TLB
    /// coherent.
    pub fn map(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId, writable: bool) {
        invariant::note_frame_mapped(
            (self.chaos_ns << 32) | u64::from(domain.0),
            vpn.0,
            (self.chaos_ns << 40) | frame.0,
        );
        self.table_mut(domain).map(vpn, frame, writable);
        self.tlb.refresh(domain, vpn, frame, writable);
        if self.huge_enabled {
            self.sync_super(domain, vpn);
        }
    }

    /// Mirrors a fresh page-table fold covering `vpn` into the IOTLB as
    /// a superpage entry (no-op when the chunk is not folded or the
    /// superpage is already cached).
    fn sync_super(&mut self, domain: DomainId, vpn: Vpn) {
        let table = self.table(domain);
        if !table.is_huge(vpn) || self.tlb.super_cached(domain, vpn) {
            return;
        }
        let base = Vpn(vpn.0 & !(HUGE_PAGES - 1));
        let pte = table.pte(base).expect("folded chunk has a base pte");
        self.tlb.insert_super(domain, base, pte.frame, pte.writable);
        if journal::enabled() {
            journal::mark(journal::MarkKind::HugePromote, base.0);
        }
    }

    /// Installs a run of mappings with consecutive frames. Used by the
    /// batched resolution path.
    pub fn map_batch(&mut self, domain: DomainId, mappings: &[(Vpn, FrameId)], writable: bool) {
        let chaos_ns = self.chaos_ns;
        let table = self
            .tables
            .get_mut(domain.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown IOMMU domain");
        let promos_before = table.promotions();
        for &(vpn, frame) in mappings {
            invariant::note_frame_mapped(
                (chaos_ns << 32) | u64::from(domain.0),
                vpn.0,
                (chaos_ns << 40) | frame.0,
            );
            table.map(vpn, frame, writable);
            self.tlb.refresh(domain, vpn, frame, writable);
        }
        if self.huge_enabled && self.table(domain).promotions() > promos_before {
            // One or more chunks folded during the batch: mirror each
            // (distinct chunks in ascending mapping order) into the TLB.
            let mut last_chunk = u64::MAX;
            for &(vpn, _) in mappings {
                let chunk = vpn.0 / HUGE_PAGES;
                if chunk != last_chunk {
                    last_chunk = chunk;
                    self.sync_super(domain, vpn);
                }
            }
        }
    }

    /// Invalidates one page: removes the PTE and purges the IOTLB.
    /// Returns `true` when the page was mapped (the paper's invalidation
    /// flow short-circuits when it was not, Figure 3b).
    pub fn invalidate(&mut self, domain: DomainId, vpn: Vpn) -> bool {
        invariant::note_frame_unmapped((self.chaos_ns << 32) | u64::from(domain.0), vpn.0);
        self.tlb.invalidate(domain, vpn);
        let table = self.table_mut(domain);
        let demotions_before = table.demotions();
        let was_mapped = table.unmap(vpn);
        if journal::enabled() && self.table(domain).demotions() > demotions_before {
            journal::mark(journal::MarkKind::HugeDemote, vpn.0 & !(HUGE_PAGES - 1));
        }
        if trace::enabled() {
            if let Some(ids) = self.metric_ids() {
                trace::metrics(|m| {
                    m.counter_add_id(ids.invalidations, 1);
                    if was_mapped {
                        m.counter_add_id(ids.invalidations_mapped, 1);
                    }
                });
            }
        }
        was_mapped
    }

    /// Invalidates a range, returning how many pages were actually
    /// mapped.
    pub fn invalidate_range(&mut self, domain: DomainId, range: PageRange) -> u64 {
        if invariant::enabled() {
            for vpn in range.iter() {
                invariant::note_frame_unmapped((self.chaos_ns << 32) | u64::from(domain.0), vpn.0);
            }
        }
        self.tlb.invalidate_range(domain, range);
        let table = self.table_mut(domain);
        let demotions_before = table.demotions();
        let mapped = table.unmap_range(range);
        if journal::enabled() && self.table(domain).demotions() > demotions_before {
            journal::mark(
                journal::MarkKind::HugeDemote,
                range.start.0 & !(HUGE_PAGES - 1),
            );
        }
        if trace::enabled() {
            if let Some(ids) = self.metric_ids() {
                trace::metrics(|m| {
                    m.counter_add_id(ids.invalidations, range.pages);
                    m.counter_add_id(ids.invalidations_mapped, mapped);
                });
            }
        }
        mapped
    }

    /// Tears down a domain entirely.
    pub fn destroy_domain(&mut self, domain: DomainId) {
        invariant::note_domain_destroyed((self.chaos_ns << 32) | u64::from(domain.0));
        self.tlb.invalidate_domain(domain);
        if let Some(t) = self.tables.get_mut(domain.0 as usize) {
            *t = None;
        }
    }

    /// Flushes the whole IOTLB — the chaos injection point for
    /// shootdown races. Translations are re-walked on the next access;
    /// page tables are untouched, so this is always safe (the property
    /// the chaos sweep verifies).
    pub fn shootdown_all(&mut self) -> u64 {
        let flushed = self.tlb.flush();
        if trace::enabled() && flushed > 0 {
            trace::instant_now(
                "iommu",
                "chaos_shootdown",
                vec![("flushed", ArgValue::U64(flushed))],
            );
            if let Some(ids) = self.metric_ids() {
                trace::metrics(|m| m.counter_add_id(ids.chaos_shootdowns, 1));
            }
        }
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn odp_iommu() -> (Iommu, DomainId) {
        let mut mmu = Iommu::new(64);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        (mmu, d)
    }

    #[test]
    fn mapped_dma_succeeds() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(10), true);
        assert_eq!(mmu.check_dma(d, Vpn(1), true), DmaCheck::Ok(FrameId(10)));
        // Second access hits the IOTLB.
        assert_eq!(mmu.check_dma(d, Vpn(1), true), DmaCheck::Ok(FrameId(10)));
        assert_eq!(mmu.tlb().hits(), 1);
    }

    #[test]
    fn unmapped_dma_raises_page_request() {
        let (mut mmu, d) = odp_iommu();
        let check = mmu.check_dma(d, Vpn(3), true);
        let DmaCheck::Fault(req) = check else {
            panic!("expected fault, got {check:?}");
        };
        assert_eq!(req.domain, d);
        assert_eq!(req.vpn, Vpn(3));
        assert!(req.write);
        assert_eq!(mmu.pending_requests().len(), 1);
        let drained = mmu.drain_requests();
        assert_eq!(drained, vec![req]);
        assert!(mmu.pending_requests().is_empty());
    }

    #[test]
    fn request_ids_are_unique() {
        let (mut mmu, d) = odp_iommu();
        let DmaCheck::Fault(a) = mmu.check_dma(d, Vpn(1), false) else {
            panic!("fault")
        };
        let DmaCheck::Fault(b) = mmu.check_dma(d, Vpn(2), false) else {
            panic!("fault")
        };
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn pinned_only_domain_errors_instead_of_faulting() {
        let mut mmu = Iommu::new(16);
        let d = mmu.create_domain(TableMode::PinnedOnly);
        assert_eq!(mmu.check_dma(d, Vpn(1), false), DmaCheck::Error);
        assert!(mmu.pending_requests().is_empty());
    }

    #[test]
    fn invalidate_purges_tlb_and_table() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(10), true);
        mmu.check_dma(d, Vpn(1), false); // warm the TLB
        assert!(mmu.invalidate(d, Vpn(1)));
        // After invalidation the access faults instead of using a stale
        // translation.
        assert!(matches!(
            mmu.check_dma(d, Vpn(1), false),
            DmaCheck::Fault(_)
        ));
    }

    #[test]
    fn invalidate_unmapped_is_cheap_noop() {
        let (mut mmu, d) = odp_iommu();
        assert!(!mmu.invalidate(d, Vpn(77)));
    }

    #[test]
    fn probe_does_not_fault() {
        let (mut mmu, d) = odp_iommu();
        assert!(!mmu.probe(d, Vpn(1), false));
        assert!(mmu.pending_requests().is_empty());
        mmu.map(d, Vpn(1), FrameId(1), false);
        assert!(mmu.probe(d, Vpn(1), false));
        assert!(!mmu.probe(d, Vpn(1), true), "read-only blocks writes");
        assert!(!mmu.probe_range(d, PageRange::new(Vpn(0), 2), false));
    }

    #[test]
    fn map_batch_installs_all() {
        let (mut mmu, d) = odp_iommu();
        let mappings: Vec<(Vpn, FrameId)> = (0..8).map(|i| (Vpn(i), FrameId(100 + i))).collect();
        mmu.map_batch(d, &mappings, true);
        assert!(mmu.probe_range(d, PageRange::new(Vpn(0), 8), true));
    }

    #[test]
    fn domains_translate_independently() {
        let mut mmu = Iommu::new(16);
        let d0 = mmu.create_domain(TableMode::PageFaultCapable);
        let d1 = mmu.create_domain(TableMode::PageFaultCapable);
        mmu.map(d0, Vpn(1), FrameId(1), true);
        assert!(matches!(
            mmu.check_dma(d1, Vpn(1), false),
            DmaCheck::Fault(_)
        ));
        mmu.destroy_domain(d0);
        assert!(!mmu.probe(d0, Vpn(1), false));
    }

    #[test]
    fn range_check_resolves_whole_run_in_one_walk() {
        let (mut mmu, d) = odp_iommu();
        let mappings: Vec<(Vpn, FrameId)> = (0..8).map(|i| (Vpn(i), FrameId(100 + i))).collect();
        mmu.map_batch(d, &mappings, true);
        assert_eq!(
            mmu.check_dma_range(d, PageRange::new(Vpn(0), 8), true),
            RangeCheck::Ok
        );
        assert_eq!(mmu.table(d).walks(), 1, "one walk fills all 8 pages");
        // Every page now hits — the second pass never walks the table.
        assert_eq!(
            mmu.check_dma_range(d, PageRange::new(Vpn(0), 8), true),
            RangeCheck::Ok
        );
        assert_eq!(mmu.table(d).walks(), 1);
        assert_eq!(mmu.tlb().hits(), 8);
    }

    #[test]
    fn range_check_queues_complete_fault_set() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(1), true);
        let RangeCheck::Fault(reqs) = mmu.check_dma_range(d, PageRange::new(Vpn(0), 4), true)
        else {
            panic!("expected faults");
        };
        let vpns: Vec<u64> = reqs.iter().map(|r| r.vpn.0).collect();
        assert_eq!(vpns, vec![0, 2, 3], "ascending, complete, skips mapped");
        assert_eq!(mmu.pending_requests().len(), 3);
    }

    #[test]
    fn range_check_write_through_readonly_is_fatal() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(0), FrameId(0), true);
        mmu.map(d, Vpn(1), FrameId(1), false);
        assert_eq!(
            mmu.check_dma_range(d, PageRange::new(Vpn(0), 2), true),
            RangeCheck::Error
        );
        // The same range reads fine.
        assert_eq!(
            mmu.check_dma_range(d, PageRange::new(Vpn(0), 2), false),
            RangeCheck::Ok
        );
    }

    #[test]
    fn huge_mode_folds_batches_and_survives_partial_invalidation() {
        let mut mmu = Iommu::new(64);
        mmu.set_huge_pages(true);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        let mappings: Vec<(Vpn, FrameId)> = (0..crate::pagetable::HUGE_PAGES)
            .map(|i| (Vpn(512 + i), FrameId(9000 + i)))
            .collect();
        mmu.map_batch(d, &mappings, true);
        assert_eq!(mmu.table(d).huge_ptes(), 1, "batch folded the chunk");
        assert_eq!(mmu.tlb().super_len(), 1, "fold mirrored into the TLB");
        assert_eq!(mmu.huge_stats(), (1, 0));
        // A DMA anywhere in the chunk hits through the superpage.
        assert_eq!(
            mmu.check_dma(d, Vpn(700), true),
            DmaCheck::Ok(FrameId(9188))
        );
        assert_eq!(mmu.tlb().super_hits(), 1);
        // One range check = pure TLB hits, no walk.
        let walks = mmu.table(d).walks();
        assert_eq!(
            mmu.check_dma_range(d, PageRange::new(Vpn(512), 64), true),
            RangeCheck::Ok
        );
        assert_eq!(mmu.table(d).walks(), walks, "superpage served the range");
        // Partial invalidation demotes and purges the superpage.
        assert!(mmu.invalidate(d, Vpn(600)));
        assert_eq!(mmu.table(d).huge_ptes(), 0);
        assert_eq!(mmu.tlb().super_len(), 0);
        assert_eq!(mmu.huge_stats(), (1, 1));
        assert!(matches!(
            mmu.check_dma(d, Vpn(600), true),
            DmaCheck::Fault(_)
        ));
        assert_eq!(
            mmu.check_dma(d, Vpn(601), true),
            DmaCheck::Ok(FrameId(9089))
        );
    }

    #[test]
    fn huge_mode_is_translation_equivalent_to_small_pages() {
        // The differential property in miniature: same op sequence, one
        // unit folding, one not — every check must agree.
        let run = |huge: bool| {
            let mut mmu = Iommu::new(64);
            mmu.set_huge_pages(huge);
            let d = mmu.create_domain(TableMode::PageFaultCapable);
            let mappings: Vec<(Vpn, FrameId)> = (0..crate::pagetable::HUGE_PAGES)
                .map(|i| (Vpn(512 + i), FrameId(9000 + i)))
                .collect();
            mmu.map_batch(d, &mappings, true);
            let mut out = String::new();
            for vpn in [512u64, 700, 1023, 1024] {
                out.push_str(&format!("{:?};", mmu.check_dma(d, Vpn(vpn), true)));
            }
            mmu.invalidate(d, Vpn(700));
            for vpn in [700u64, 701, 512] {
                out.push_str(&format!("{:?};", mmu.check_dma(d, Vpn(vpn), false)));
            }
            out.push_str(&format!(
                "{:?}",
                mmu.check_dma_range(d, PageRange::new(Vpn(512), 8), true)
            ));
            out
        };
        // DmaCheck::Fault carries request ids which advance identically.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn remap_refreshes_cached_translation() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(10), true);
        mmu.check_dma(d, Vpn(1), false); // warm the TLB
        mmu.map(d, Vpn(1), FrameId(20), true); // re-map in place
        assert_eq!(
            mmu.check_dma(d, Vpn(1), false),
            DmaCheck::Ok(FrameId(20)),
            "the cached translation must follow the re-map"
        );
    }

    #[test]
    fn remap_to_readonly_blocks_cached_writes() {
        let (mut mmu, d) = odp_iommu();
        mmu.map(d, Vpn(1), FrameId(10), true);
        mmu.check_dma(d, Vpn(1), true); // warm the TLB, writable
        mmu.map(d, Vpn(1), FrameId(10), false); // downgrade permissions
        assert_eq!(mmu.check_dma(d, Vpn(1), true), DmaCheck::Error);
        assert_eq!(mmu.check_dma(d, Vpn(1), false), DmaCheck::Ok(FrameId(10)));
    }
}

#[cfg(test)]
mod teardown_tests {
    use super::*;

    #[test]
    fn destroy_domain_with_pending_requests() {
        let mut mmu = Iommu::new(16);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        mmu.map(d, Vpn(1), FrameId(1), true);
        mmu.check_dma(d, Vpn(1), false); // warm TLB
        mmu.check_dma(d, Vpn(9), true); // pending request
        mmu.destroy_domain(d);
        // Pending requests for dead domains are the driver's to discard;
        // the domain's TLB entries must be gone.
        let stale: Vec<_> = mmu
            .drain_requests()
            .into_iter()
            .filter(|r| r.domain == d)
            .collect();
        assert_eq!(stale.len(), 1, "driver sees and discards it");
        assert!(!mmu.probe(d, Vpn(1), false), "mappings are gone");
    }

    #[test]
    fn tlb_entries_scale_with_use() {
        let mut mmu = Iommu::new(8);
        let d = mmu.create_domain(TableMode::PageFaultCapable);
        for i in 0..32 {
            mmu.map(d, Vpn(i), FrameId(i), true);
            mmu.check_dma(d, Vpn(i), false);
        }
        assert!(mmu.tlb().len() <= 8, "capacity bound holds");
        assert!(mmu.tlb().misses() >= 24, "old entries were evicted");
        assert!(mmu.tlb().evictions() >= 24, "evictions are counted");
    }
}
