//! # iommu — simulated I/O memory management unit
//!
//! Models the translation hardware between DMA engines and physical
//! memory: per-IOchannel I/O page tables whose entries may be
//! **non-present** (the paper's key firmware change, §4), an IOTLB that
//! must be invalidated when mappings change (Figure 2 steps a–d), and a
//! PRI-style page-request queue that the NPF driver drains. A
//! [`nested::NestedWalk`] models the 2D (guest/host) tables of §2.4.
//!
//! # Examples
//!
//! ```
//! use iommu::{Iommu, DmaCheck, TableMode};
//! use memsim::types::{FrameId, Vpn};
//!
//! let mut mmu = Iommu::new(64);
//! let dom = mmu.create_domain(TableMode::PageFaultCapable);
//!
//! // A DMA to an unmapped page raises a recoverable page request...
//! let DmaCheck::Fault(req) = mmu.check_dma(dom, Vpn(9), true) else {
//!     unreachable!()
//! };
//! // ...which the driver resolves by installing the mapping.
//! mmu.map(dom, req.vpn, FrameId(3), true);
//! assert_eq!(mmu.check_dma(dom, Vpn(9), true), DmaCheck::Ok(FrameId(3)));
//! ```

pub mod iotlb;
pub mod nested;
pub mod pagetable;
pub mod unit;

pub use iotlb::{IoTlb, TlbEntry};
pub use nested::{Gpn, NestedTranslation, NestedWalk};
pub use pagetable::{DomainId, IoPageTable, IoPte, TableMode, Translation};
pub use unit::{DmaCheck, Iommu, PageRequest, RangeCheck};
