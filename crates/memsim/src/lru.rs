//! LRU tracking of resident pages for reclaim.
//!
//! The tracker orders resident, *unpinned* pages by last access. Reclaim
//! pops the globally oldest page, or — when a cgroup is over its limit —
//! the oldest page belonging to one address space.
//!
//! Internally the entries live in a slab of nodes threaded onto two
//! intrusive doubly-linked lists (one global, one per space), indexed by
//! a dense [`PageMap`] per space: touch, remove, and evict are all O(1)
//! with no tree rebalancing and no hashing. Because recency ticks are
//! strictly increasing, list order *is* tick order, so the head of each
//! list answers the `oldest_tick` queries the unified-LRU arbitration
//! against the page cache relies on, and eviction order is exactly what
//! the old `BTreeMap` implementation produced.

use crate::dense::PageMap;
use crate::types::{SpaceId, Vpn};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    space: SpaceId,
    vpn: Vpn,
    tick: u64,
    /// Global list links (head = oldest).
    prev: u32,
    next: u32,
    /// Per-space list links (head = oldest).
    sprev: u32,
    snext: u32,
}

#[derive(Debug)]
struct SpaceList {
    head: u32,
    tail: u32,
    len: usize,
    /// vpn → node slot for this space.
    index: PageMap<u32>,
}

impl SpaceList {
    fn new() -> Self {
        SpaceList {
            head: NIL,
            tail: NIL,
            len: 0,
            index: PageMap::new(),
        }
    }
}

/// Least-recently-used ordering over `(space, page)` entries.
///
/// `touch` promotes a page to most-recently-used; `pop_oldest` evicts.
/// All operations are `O(1)`.
#[derive(Debug)]
pub struct LruTracker {
    tick: u64,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    /// Indexed by `SpaceId.0`; ids are assigned densely by the manager.
    spaces: Vec<SpaceList>,
}

impl Default for LruTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl LruTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        LruTracker {
            tick: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            spaces: Vec::new(),
        }
    }

    /// Number of tracked pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tracked pages belonging to `space`.
    #[must_use]
    pub fn len_in(&self, space: SpaceId) -> usize {
        self.spaces.get(space.0 as usize).map_or(0, |s| s.len)
    }

    /// Inserts a page as most-recently-used, or promotes it if present.
    pub fn touch(&mut self, space: SpaceId, vpn: Vpn) {
        let t = self.tick + 1;
        self.touch_tick(space, vpn, t);
    }

    /// Like [`LruTracker::touch`] with a caller-supplied recency tick —
    /// lets several trackers share one clock so their relative ages are
    /// comparable (the unified LRU of mapped memory and page cache).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is not newer than every tick already stored.
    pub fn touch_tick(&mut self, space: SpaceId, vpn: Vpn, tick: u64) {
        self.remove(space, vpn);
        assert!(
            self.tail == NIL || self.nodes[self.tail as usize].tick < tick,
            "recency ticks must increase"
        );
        self.tick = self.tick.max(tick);

        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.nodes.push(Node {
                    space,
                    vpn,
                    tick,
                    prev: NIL,
                    next: NIL,
                    sprev: NIL,
                    snext: NIL,
                });
                u32::try_from(self.nodes.len() - 1).expect("LRU slab fits in u32")
            }
        };
        // Link at the global tail (most recently used).
        {
            let old_tail = self.tail;
            let n = &mut self.nodes[slot as usize];
            n.space = space;
            n.vpn = vpn;
            n.tick = tick;
            n.prev = old_tail;
            n.next = NIL;
            n.sprev = NIL;
            n.snext = NIL;
            if old_tail != NIL {
                self.nodes[old_tail as usize].next = slot;
            } else {
                self.head = slot;
            }
            self.tail = slot;
        }
        // Link at the space tail.
        let sid = space.0 as usize;
        if self.spaces.len() <= sid {
            self.spaces.resize_with(sid + 1, SpaceList::new);
        }
        let old_stail = self.spaces[sid].tail;
        self.nodes[slot as usize].sprev = old_stail;
        if old_stail != NIL {
            self.nodes[old_stail as usize].snext = slot;
        } else {
            self.spaces[sid].head = slot;
        }
        let sp = &mut self.spaces[sid];
        sp.tail = slot;
        sp.len += 1;
        sp.index.insert(vpn, slot);
        self.len += 1;
    }

    /// Unlinks `slot` from both lists and recycles it.
    fn unlink(&mut self, slot: u32) {
        let Node {
            space,
            vpn,
            prev,
            next,
            sprev,
            snext,
            ..
        } = self.nodes[slot as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let sp = &mut self.spaces[space.0 as usize];
        if sprev != NIL {
            self.nodes[sprev as usize].snext = snext;
        } else {
            sp.head = snext;
        }
        if snext != NIL {
            self.nodes[snext as usize].sprev = sprev;
        } else {
            sp.tail = sprev;
        }
        let sp = &mut self.spaces[space.0 as usize];
        sp.len -= 1;
        sp.index.remove(vpn);
        self.len -= 1;
        self.free.push(slot);
    }

    /// The recency tick of the oldest tracked page, if any.
    #[must_use]
    pub fn oldest_tick(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.nodes[self.head as usize].tick)
    }

    /// Removes a page from tracking (it was evicted, pinned, or unmapped).
    /// Returns `true` when the page was tracked.
    pub fn remove(&mut self, space: SpaceId, vpn: Vpn) -> bool {
        let Some(&slot) = self
            .spaces
            .get(space.0 as usize)
            .and_then(|s| s.index.get(vpn))
        else {
            return false;
        };
        self.unlink(slot);
        true
    }

    /// `true` when the page is tracked.
    #[must_use]
    pub fn contains(&self, space: SpaceId, vpn: Vpn) -> bool {
        self.spaces
            .get(space.0 as usize)
            .is_some_and(|s| s.index.contains(vpn))
    }

    /// Removes and returns the least-recently-used page across all spaces.
    pub fn pop_oldest(&mut self) -> Option<(SpaceId, Vpn)> {
        if self.head == NIL {
            return None;
        }
        let slot = self.head;
        let (space, vpn) = {
            let n = &self.nodes[slot as usize];
            (n.space, n.vpn)
        };
        self.unlink(slot);
        Some((space, vpn))
    }

    /// The recency tick of the oldest page of one space, if any.
    #[must_use]
    pub fn oldest_tick_in(&self, space: SpaceId) -> Option<u64> {
        let sp = self.spaces.get(space.0 as usize)?;
        (sp.head != NIL).then(|| self.nodes[sp.head as usize].tick)
    }

    /// Removes and returns the least-recently-used page of one space.
    pub fn pop_oldest_in(&mut self, space: SpaceId) -> Option<Vpn> {
        let sp = self.spaces.get(space.0 as usize)?;
        if sp.head == NIL {
            return None;
        }
        let slot = sp.head;
        let vpn = self.nodes[slot as usize].vpn;
        self.unlink(slot);
        Some(vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: SpaceId = SpaceId(0);
    const S1: SpaceId = SpaceId(1);

    #[test]
    fn evicts_in_access_order() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        lru.touch(S0, Vpn(2));
        lru.touch(S0, Vpn(3));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(1))));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(2))));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(3))));
        assert_eq!(lru.pop_oldest(), None);
    }

    #[test]
    fn touch_promotes() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        lru.touch(S0, Vpn(2));
        lru.touch(S0, Vpn(1)); // promote 1 past 2
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(2))));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(1))));
    }

    #[test]
    fn per_space_eviction() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        lru.touch(S1, Vpn(9));
        lru.touch(S0, Vpn(2));
        assert_eq!(lru.len_in(S0), 2);
        assert_eq!(lru.pop_oldest_in(S1), Some(Vpn(9)));
        assert_eq!(lru.pop_oldest_in(S1), None);
        // Global ordering is unaffected for the remaining entries.
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(1))));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_untracks() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        assert!(lru.contains(S0, Vpn(1)));
        assert!(lru.remove(S0, Vpn(1)));
        assert!(!lru.remove(S0, Vpn(1)));
        assert!(lru.is_empty());
    }

    #[test]
    fn oldest_ticks_follow_heads() {
        let mut lru = LruTracker::new();
        lru.touch_tick(S0, Vpn(1), 10);
        lru.touch_tick(S1, Vpn(2), 20);
        lru.touch_tick(S0, Vpn(3), 30);
        assert_eq!(lru.oldest_tick(), Some(10));
        assert_eq!(lru.oldest_tick_in(S1), Some(20));
        lru.touch_tick(S0, Vpn(1), 40); // promote: S0's oldest becomes 3
        assert_eq!(lru.oldest_tick(), Some(20));
        assert_eq!(lru.oldest_tick_in(S0), Some(30));
        assert_eq!(lru.pop_oldest(), Some((S1, Vpn(2))));
        assert_eq!(lru.oldest_tick(), Some(30));
    }

    #[test]
    #[should_panic(expected = "recency ticks must increase")]
    fn stale_tick_panics() {
        let mut lru = LruTracker::new();
        lru.touch_tick(S0, Vpn(1), 10);
        lru.touch_tick(S0, Vpn(2), 10);
    }

    #[test]
    fn retouching_the_newest_entry_with_its_own_tick_is_allowed() {
        // The assert compares against entries *other* than the one being
        // re-touched (it is removed first), matching the old behaviour.
        let mut lru = LruTracker::new();
        lru.touch_tick(S0, Vpn(1), 10);
        lru.touch_tick(S0, Vpn(1), 10);
        assert_eq!(lru.len(), 1);
    }
}
