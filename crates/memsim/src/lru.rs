//! LRU tracking of resident pages for reclaim.
//!
//! The tracker orders resident, *unpinned* pages by last access. Reclaim
//! pops the globally oldest page, or — when a cgroup is over its limit —
//! the oldest page belonging to one address space.

use std::collections::{BTreeMap, HashMap};

use crate::types::{SpaceId, Vpn};

/// Least-recently-used ordering over `(space, page)` entries.
///
/// `touch` promotes a page to most-recently-used; `pop_oldest` evicts.
/// All operations are `O(log n)`.
#[derive(Debug, Default)]
pub struct LruTracker {
    tick: u64,
    global: BTreeMap<u64, (SpaceId, Vpn)>,
    by_space: HashMap<SpaceId, BTreeMap<u64, Vpn>>,
    entries: HashMap<(SpaceId, Vpn), u64>,
}

impl LruTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        LruTracker::default()
    }

    /// Number of tracked pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of tracked pages belonging to `space`.
    #[must_use]
    pub fn len_in(&self, space: SpaceId) -> usize {
        self.by_space.get(&space).map_or(0, BTreeMap::len)
    }

    /// Inserts a page as most-recently-used, or promotes it if present.
    pub fn touch(&mut self, space: SpaceId, vpn: Vpn) {
        self.tick += 1;
        let t = self.tick;
        self.touch_tick(space, vpn, t);
    }

    /// Like [`LruTracker::touch`] with a caller-supplied recency tick —
    /// lets several trackers share one clock so their relative ages are
    /// comparable (the unified LRU of mapped memory and page cache).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is not newer than every tick already stored.
    pub fn touch_tick(&mut self, space: SpaceId, vpn: Vpn, tick: u64) {
        self.remove(space, vpn);
        assert!(
            self.global.last_key_value().is_none_or(|(&t, _)| t < tick),
            "recency ticks must increase"
        );
        self.tick = self.tick.max(tick);
        self.global.insert(tick, (space, vpn));
        self.by_space.entry(space).or_default().insert(tick, vpn);
        self.entries.insert((space, vpn), tick);
    }

    /// The recency tick of the oldest tracked page, if any.
    #[must_use]
    pub fn oldest_tick(&self) -> Option<u64> {
        self.global.keys().next().copied()
    }

    /// Removes a page from tracking (it was evicted, pinned, or unmapped).
    /// Returns `true` when the page was tracked.
    pub fn remove(&mut self, space: SpaceId, vpn: Vpn) -> bool {
        if let Some(t) = self.entries.remove(&(space, vpn)) {
            self.global.remove(&t);
            if let Some(m) = self.by_space.get_mut(&space) {
                m.remove(&t);
                if m.is_empty() {
                    self.by_space.remove(&space);
                }
            }
            true
        } else {
            false
        }
    }

    /// `true` when the page is tracked.
    #[must_use]
    pub fn contains(&self, space: SpaceId, vpn: Vpn) -> bool {
        self.entries.contains_key(&(space, vpn))
    }

    /// Removes and returns the least-recently-used page across all spaces.
    pub fn pop_oldest(&mut self) -> Option<(SpaceId, Vpn)> {
        let (&t, &(space, vpn)) = self.global.iter().next()?;
        self.global.remove(&t);
        self.entries.remove(&(space, vpn));
        if let Some(m) = self.by_space.get_mut(&space) {
            m.remove(&t);
            if m.is_empty() {
                self.by_space.remove(&space);
            }
        }
        Some((space, vpn))
    }

    /// The recency tick of the oldest page of one space, if any.
    #[must_use]
    pub fn oldest_tick_in(&self, space: SpaceId) -> Option<u64> {
        self.by_space
            .get(&space)
            .and_then(|m| m.keys().next().copied())
    }

    /// Removes and returns the least-recently-used page of one space.
    pub fn pop_oldest_in(&mut self, space: SpaceId) -> Option<Vpn> {
        let m = self.by_space.get_mut(&space)?;
        let (&t, &vpn) = m.iter().next()?;
        m.remove(&t);
        if m.is_empty() {
            self.by_space.remove(&space);
        }
        self.global.remove(&t);
        self.entries.remove(&(space, vpn));
        Some(vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: SpaceId = SpaceId(0);
    const S1: SpaceId = SpaceId(1);

    #[test]
    fn evicts_in_access_order() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        lru.touch(S0, Vpn(2));
        lru.touch(S0, Vpn(3));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(1))));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(2))));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(3))));
        assert_eq!(lru.pop_oldest(), None);
    }

    #[test]
    fn touch_promotes() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        lru.touch(S0, Vpn(2));
        lru.touch(S0, Vpn(1)); // promote 1 past 2
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(2))));
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(1))));
    }

    #[test]
    fn per_space_eviction() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        lru.touch(S1, Vpn(9));
        lru.touch(S0, Vpn(2));
        assert_eq!(lru.len_in(S0), 2);
        assert_eq!(lru.pop_oldest_in(S1), Some(Vpn(9)));
        assert_eq!(lru.pop_oldest_in(S1), None);
        // Global ordering is unaffected for the remaining entries.
        assert_eq!(lru.pop_oldest(), Some((S0, Vpn(1))));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_untracks() {
        let mut lru = LruTracker::new();
        lru.touch(S0, Vpn(1));
        assert!(lru.contains(S0, Vpn(1)));
        assert!(lru.remove(S0, Vpn(1)));
        assert!(!lru.remove(S0, Vpn(1)));
        assert!(lru.is_empty());
    }
}
