//! Address spaces: memory areas (VMAs) and page table entries.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::dense::PageMap;
use crate::types::{FileId, FrameId, PageRange, SpaceId, Vpn};

/// What backs a virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Anonymous memory: zero-filled on first touch (delayed allocation),
    /// swapped out under pressure.
    Anonymous,
    /// A memory-mapped file: pages come from the page cache; clean pages
    /// are dropped (not swapped) under pressure. `page_offset` is the
    /// file page at which the mapping starts.
    File {
        /// Backing file.
        file: FileId,
        /// File page corresponding to the first page of the VMA.
        page_offset: u64,
    },
}

/// A virtual memory area: a contiguous mapped range with one backing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// The pages covered.
    pub range: PageRange,
    /// What backs them.
    pub backing: Backing,
}

/// Residency state of one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Mapped by a VMA but never touched: first access is a minor fault
    /// with zero-fill (anonymous) or a page-cache lookup (file).
    Untouched,
    /// Backed by a physical frame.
    Resident(FrameId),
    /// Anonymous page written out to a swap slot: access is a major fault.
    SwappedOut {
        /// Swap slot holding the page.
        slot: u64,
    },
    /// File page whose frame was reclaimed; a re-access goes back to the
    /// page cache (and possibly the disk).
    Dropped,
}

/// A page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Residency state.
    pub state: PageState,
    /// Pinned pages are excluded from reclaim (mlock / DMA registration).
    /// Counts nested pins.
    pub pin_count: u32,
    /// Set on write access; dirty anonymous pages must be swapped out on
    /// eviction rather than dropped.
    pub dirty: bool,
    /// Write-protected, sharing its frame with another space (fork with
    /// copy-on-write, Table 1). A write must break the sharing.
    pub cow: bool,
}

impl Pte {
    fn untouched() -> Self {
        Pte {
            state: PageState::Untouched,
            pin_count: 0,
            dirty: false,
            cow: false,
        }
    }

    /// The backing frame if resident.
    #[must_use]
    pub fn frame(&self) -> Option<FrameId> {
        match self.state {
            PageState::Resident(f) => Some(f),
            _ => None,
        }
    }

    /// `true` when the page may not be reclaimed.
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.pin_count > 0
    }
}

/// A virtual address space (one IOuser: a process or a VM).
///
/// Tracks VMAs and per-page residency. Fault resolution policy lives in
/// [`crate::manager::MemoryManager`]; this type only answers structural
/// questions (is this page mapped? what backs it?).
#[derive(Debug)]
pub struct AddressSpace {
    id: SpaceId,
    vmas: BTreeMap<u64, Vma>, // keyed by range.start.0
    ptes: PageMap<Pte>,
    /// Last VMA a lookup resolved: page accesses cluster, so most
    /// lookups skip the `vmas` tree walk entirely.
    vma_cache: Cell<Option<Vma>>,
    next_free_vpn: u64,
    resident_pages: u64,
    pinned_pages: u64,
}

/// Errors from address-space structural operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceError {
    /// The page is not covered by any VMA.
    NotMapped(Vpn),
    /// A requested mapping overlaps an existing VMA.
    Overlap,
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::NotMapped(vpn) => write!(f, "page {vpn} is not mapped"),
            SpaceError::Overlap => write!(f, "mapping overlaps an existing area"),
        }
    }
}

impl std::error::Error for SpaceError {}

impl AddressSpace {
    /// Creates an empty address space.
    #[must_use]
    pub fn new(id: SpaceId) -> Self {
        AddressSpace {
            id,
            vmas: BTreeMap::new(),
            ptes: PageMap::new(),
            vma_cache: Cell::new(None),
            next_free_vpn: 0x10, // skip the first pages, like real systems
            resident_pages: 0,
            pinned_pages: 0,
        }
    }

    /// The space identifier.
    #[must_use]
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// Number of resident (frame-backed) pages.
    #[must_use]
    pub fn resident_pages(&self) -> u64 {
        self.resident_pages
    }

    /// Number of pinned pages.
    #[must_use]
    pub fn pinned_pages(&self) -> u64 {
        self.pinned_pages
    }

    /// Total pages covered by VMAs (the virtual size).
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.range.pages).sum()
    }

    /// Maps `pages` pages of `backing` at the next free region, returning
    /// the range. This is the `mmap(NULL, ...)` form.
    pub fn mmap(&mut self, pages: u64, backing: Backing) -> PageRange {
        let start = Vpn(self.next_free_vpn);
        let range = PageRange::new(start, pages);
        // Leave a one-page guard gap, as real mmap tends to.
        self.next_free_vpn += pages + 1;
        self.vmas.insert(range.start.0, Vma { range, backing });
        range
    }

    /// Maps `range` with `backing` at a fixed location.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::Overlap`] when the range intersects an
    /// existing VMA.
    pub fn mmap_fixed(&mut self, range: PageRange, backing: Backing) -> Result<(), SpaceError> {
        for vma in self.vmas.values() {
            if vma.range.overlaps(range) {
                return Err(SpaceError::Overlap);
            }
        }
        self.next_free_vpn = self.next_free_vpn.max(range.end().0 + 1);
        self.vmas.insert(range.start.0, Vma { range, backing });
        Ok(())
    }

    /// Removes the VMA covering exactly `range`, returning the frames of
    /// its resident pages so the caller can free them.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NotMapped`] when no VMA starts at
    /// `range.start` with the same length.
    pub fn munmap(&mut self, range: PageRange) -> Result<Vec<(Vpn, FrameId)>, SpaceError> {
        match self.vmas.get(&range.start.0) {
            Some(vma) if vma.range == range => {}
            _ => return Err(SpaceError::NotMapped(range.start)),
        }
        self.vmas.remove(&range.start.0);
        self.vma_cache.set(None);
        let mut freed = Vec::new();
        for vpn in range.iter() {
            if let Some(pte) = self.ptes.remove(vpn) {
                if let PageState::Resident(f) = pte.state {
                    self.resident_pages -= 1;
                    if pte.is_pinned() {
                        self.pinned_pages -= 1;
                    }
                    freed.push((vpn, f));
                }
            }
        }
        Ok(freed)
    }

    /// The VMA covering `vpn`, if any.
    #[must_use]
    pub fn vma_of(&self, vpn: Vpn) -> Option<&Vma> {
        self.vmas
            .range(..=vpn.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(vpn))
    }

    /// Like [`AddressSpace::vma_of`] but by value, served from the
    /// one-entry VMA cache on the fast path.
    #[inline]
    fn vma_covering(&self, vpn: Vpn) -> Option<Vma> {
        if let Some(vma) = self.vma_cache.get() {
            if vma.range.contains(vpn) {
                return Some(vma);
            }
        }
        let vma = self.vma_of(vpn).copied();
        if let Some(v) = vma {
            self.vma_cache.set(Some(v));
        }
        vma
    }

    /// The backing of `vpn`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NotMapped`] for addresses outside every VMA.
    pub fn backing_of(&self, vpn: Vpn) -> Result<Backing, SpaceError> {
        self.vma_covering(vpn)
            .map(|v| v.backing)
            .ok_or(SpaceError::NotMapped(vpn))
    }

    /// For a file-backed page, the `(file, file_page)` it maps.
    #[must_use]
    pub fn file_page_of(&self, vpn: Vpn) -> Option<(FileId, u64)> {
        let vma = self.vma_covering(vpn)?;
        match vma.backing {
            Backing::File { file, page_offset } => {
                Some((file, page_offset + (vpn.0 - vma.range.start.0)))
            }
            Backing::Anonymous => None,
        }
    }

    /// The PTE for `vpn`. Pages inside a VMA that were never touched
    /// report an [`PageState::Untouched`] entry.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NotMapped`] for addresses outside every VMA.
    pub fn pte(&self, vpn: Vpn) -> Result<Pte, SpaceError> {
        if self.vma_covering(vpn).is_none() {
            return Err(SpaceError::NotMapped(vpn));
        }
        Ok(self.ptes.get(vpn).copied().unwrap_or_else(Pte::untouched))
    }

    /// Calls `f(vpn, pte)` for every page of `range` in ascending order,
    /// resolving the covering VMA once per run and each PTE leaf chunk
    /// once per [`crate::dense::LEAF_LEN`] pages — the batched
    /// scatter-gather walk (§4.3) over host page tables.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NotMapped`] at the first page no VMA covers
    /// (pages before it have already been reported to `f`).
    pub fn for_each_pte<F: FnMut(Vpn, Pte)>(
        &self,
        range: PageRange,
        mut f: F,
    ) -> Result<(), SpaceError> {
        let mut vpn = range.start;
        let end = range.end();
        while vpn < end {
            let Some(vma) = self.vma_covering(vpn) else {
                return Err(SpaceError::NotMapped(vpn));
            };
            let run_end = Vpn(end.0.min(vma.range.end().0));
            self.ptes
                .scan_range(PageRange::new(vpn, run_end.0 - vpn.0), |v, pte| {
                    f(v, pte.copied().unwrap_or_else(Pte::untouched));
                });
            vpn = run_end;
        }
        Ok(())
    }

    /// The frame backing `vpn`, if the page is resident.
    #[must_use]
    pub fn frame_of(&self, vpn: Vpn) -> Option<FrameId> {
        self.ptes.get(vpn).and_then(Pte::frame)
    }

    /// `true` when `vpn` is resident.
    #[must_use]
    pub fn is_resident(&self, vpn: Vpn) -> bool {
        self.frame_of(vpn).is_some()
    }

    /// Installs `frame` for `vpn` (fault resolution). Marks dirty on
    /// write access.
    ///
    /// # Panics
    ///
    /// Panics if the page is already resident; the manager must not
    /// double-install.
    pub fn install(&mut self, vpn: Vpn, frame: FrameId, write: bool) {
        let pte = self.ptes.get_mut_or_insert_with(vpn, Pte::untouched);
        assert!(
            pte.frame().is_none(),
            "page {vpn} already resident in {}",
            self.id
        );
        pte.state = PageState::Resident(frame);
        pte.dirty = write;
        pte.cow = false;
        self.resident_pages += 1;
        if pte.is_pinned() {
            self.pinned_pages += 1;
        }
    }

    /// Replaces the frame of a resident page in place (a COW break: the
    /// space receives its private copy).
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn replace_frame(&mut self, vpn: Vpn, frame: FrameId) {
        let pte = self.ptes.get_mut(vpn).expect("replace of unmapped page");
        assert!(pte.frame().is_some(), "replace of non-resident page {vpn}");
        pte.state = PageState::Resident(frame);
        pte.cow = false;
        pte.dirty = true;
    }

    /// Marks a resident page as COW-shared (write-protected, shared
    /// frame).
    pub fn mark_cow(&mut self, vpn: Vpn) {
        if let Some(pte) = self.ptes.get_mut(vpn) {
            if pte.frame().is_some() {
                pte.cow = true;
                pte.dirty = false;
            }
        }
    }

    /// Clears the COW flag (last sharer: the page is private again).
    pub fn clear_cow(&mut self, vpn: Vpn, write: bool) {
        if let Some(pte) = self.ptes.get_mut(vpn) {
            pte.cow = false;
            if write {
                pte.dirty = true;
            }
        }
    }

    /// Snapshot of `(vpn, pte)` pairs in ascending VPN order (fork
    /// support; the deterministic order also fixes downstream frame
    /// bookkeeping order).
    pub fn pte_iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.ptes.iter().map(|(v, &p)| (v, p))
    }

    /// Snapshot of the VMAs (fork support).
    pub fn vma_iter(&self) -> impl Iterator<Item = Vma> + '_ {
        self.vmas.values().copied()
    }

    /// Builds a forked copy of this space's structure under a new id:
    /// identical VMAs; resident pages shared (both marked COW);
    /// untouched/dropped pages copied as-is.
    ///
    /// # Panics
    ///
    /// Panics if the parent has pinned or swapped-out pages (fork is
    /// supported for unpinned, in-core parents; swap-slot sharing is out
    /// of scope — touch the pages in first).
    pub fn fork_into(&mut self, child_id: SpaceId) -> AddressSpace {
        let mut child = AddressSpace::new(child_id);
        child.next_free_vpn = self.next_free_vpn;
        for vma in self.vmas.values() {
            child.vmas.insert(vma.range.start.0, *vma);
        }
        let parent_ptes: Vec<(Vpn, Pte)> = self.pte_iter().collect();
        for (vpn, pte) in parent_ptes {
            assert!(!pte.is_pinned(), "fork of a space with pinned pages");
            match pte.state {
                PageState::Resident(frame) => {
                    self.mark_cow(vpn);
                    child.ptes.insert(
                        vpn,
                        Pte {
                            state: PageState::Resident(frame),
                            pin_count: 0,
                            dirty: false,
                            cow: true,
                        },
                    );
                    child.resident_pages += 1;
                }
                PageState::SwappedOut { .. } => {
                    panic!("fork of a space with swapped-out pages");
                }
                PageState::Untouched | PageState::Dropped => {
                    child.ptes.insert(vpn, pte);
                }
            }
        }
        child
    }

    /// Fast-path CPU access to a resident page: one dense lookup that
    /// marks dirty on non-COW writes and reports `(pinned, cow_write)`
    /// so the caller can do LRU/COW work without re-walking. Returns
    /// `None` when the page is not resident (fault path).
    pub fn touch_resident(&mut self, vpn: Vpn, write: bool) -> Option<(bool, bool)> {
        let pte = self.ptes.get_mut(vpn)?;
        pte.frame()?;
        if write && pte.cow {
            return Some((pte.is_pinned(), true));
        }
        if write {
            pte.dirty = true;
        }
        Some((pte.is_pinned(), false))
    }

    /// Marks an access to a resident page (sets dirty on writes).
    pub fn mark_access(&mut self, vpn: Vpn, write: bool) {
        if let Some(pte) = self.ptes.get_mut(vpn) {
            if write {
                pte.dirty = true;
            }
        }
    }

    /// Evicts a resident page, transitioning it to `SwappedOut` (with
    /// `slot`) for anonymous pages or `Dropped` for file pages. Returns
    /// the freed frame and whether the page was dirty. COW state is
    /// dropped with the mapping.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident or is pinned.
    pub fn evict(&mut self, vpn: Vpn, swap_slot: Option<u64>) -> (FrameId, bool) {
        let pte = self.ptes.get_mut(vpn).expect("evicting untracked page");
        let frame = pte.frame().expect("evicting non-resident page");
        assert!(!pte.is_pinned(), "evicting pinned page {vpn}");
        let dirty = pte.dirty;
        pte.state = match swap_slot {
            Some(slot) => PageState::SwappedOut { slot },
            None => PageState::Dropped,
        };
        pte.dirty = false;
        self.resident_pages -= 1;
        (frame, dirty)
    }

    /// Increments the pin count of a *resident* page. Returns `true` when
    /// the page transitioned from unpinned to pinned.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident (pin after fault-in only).
    pub fn pin(&mut self, vpn: Vpn) -> bool {
        let pte = self.ptes.get_mut(vpn).expect("pin of unmapped page");
        assert!(pte.frame().is_some(), "pin of non-resident page {vpn}");
        pte.pin_count += 1;
        if pte.pin_count == 1 {
            self.pinned_pages += 1;
            true
        } else {
            false
        }
    }

    /// Decrements the pin count. Returns `true` when the page became
    /// unpinned (and should re-enter LRU tracking).
    ///
    /// # Panics
    ///
    /// Panics if the page was not pinned.
    pub fn unpin(&mut self, vpn: Vpn) -> bool {
        let pte = self.ptes.get_mut(vpn).expect("unpin of unmapped page");
        assert!(pte.pin_count > 0, "unpin of unpinned page {vpn}");
        pte.pin_count -= 1;
        if pte.pin_count == 0 {
            self.pinned_pages -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates resident pages in ascending VPN order (for teardown).
    pub fn resident_iter(&self) -> impl Iterator<Item = (Vpn, FrameId)> + '_ {
        self.ptes
            .iter()
            .filter_map(|(vpn, pte)| pte.frame().map(|f| (vpn, f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(SpaceId(0))
    }

    #[test]
    fn mmap_assigns_disjoint_ranges() {
        let mut s = space();
        let a = s.mmap(10, Backing::Anonymous);
        let b = s.mmap(5, Backing::Anonymous);
        assert!(!a.overlaps(b));
        assert_eq!(s.mapped_pages(), 15);
    }

    #[test]
    fn mmap_fixed_rejects_overlap() {
        let mut s = space();
        let a = s.mmap(10, Backing::Anonymous);
        let overlapping = PageRange::new(a.start, 1);
        assert_eq!(
            s.mmap_fixed(overlapping, Backing::Anonymous),
            Err(SpaceError::Overlap)
        );
    }

    #[test]
    fn untouched_pages_report_untouched() {
        let mut s = space();
        let r = s.mmap(4, Backing::Anonymous);
        let pte = s.pte(r.start).expect("mapped");
        assert_eq!(pte.state, PageState::Untouched);
        assert!(!s.is_resident(r.start));
    }

    #[test]
    fn unmapped_pages_error() {
        let s = space();
        assert!(matches!(s.pte(Vpn(0xdead)), Err(SpaceError::NotMapped(_))));
        assert!(matches!(
            s.backing_of(Vpn(0xdead)),
            Err(SpaceError::NotMapped(_))
        ));
    }

    #[test]
    fn install_and_evict_roundtrip() {
        let mut s = space();
        let r = s.mmap(1, Backing::Anonymous);
        s.install(r.start, FrameId(7), true);
        assert_eq!(s.frame_of(r.start), Some(FrameId(7)));
        assert_eq!(s.resident_pages(), 1);
        let (frame, dirty) = s.evict(r.start, Some(3));
        assert_eq!(frame, FrameId(7));
        assert!(dirty, "written page must evict dirty");
        assert_eq!(
            s.pte(r.start).expect("mapped").state,
            PageState::SwappedOut { slot: 3 }
        );
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn clean_file_pages_drop() {
        let mut s = space();
        let r = s.mmap(
            2,
            Backing::File {
                file: FileId(1),
                page_offset: 100,
            },
        );
        s.install(r.start, FrameId(1), false);
        let (_, dirty) = s.evict(r.start, None);
        assert!(!dirty);
        assert_eq!(s.pte(r.start).expect("mapped").state, PageState::Dropped);
        assert_eq!(s.file_page_of(r.start.next()), Some((FileId(1), 101)));
    }

    #[test]
    fn pin_counts_nest() {
        let mut s = space();
        let r = s.mmap(1, Backing::Anonymous);
        s.install(r.start, FrameId(0), false);
        assert!(s.pin(r.start));
        assert!(!s.pin(r.start), "second pin is not a transition");
        assert_eq!(s.pinned_pages(), 1);
        assert!(!s.unpin(r.start));
        assert!(s.unpin(r.start), "last unpin is the transition");
        assert_eq!(s.pinned_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "evicting pinned page")]
    fn evicting_pinned_page_panics() {
        let mut s = space();
        let r = s.mmap(1, Backing::Anonymous);
        s.install(r.start, FrameId(0), false);
        s.pin(r.start);
        s.evict(r.start, None);
    }

    #[test]
    fn munmap_returns_frames() {
        let mut s = space();
        let r = s.mmap(3, Backing::Anonymous);
        s.install(r.start, FrameId(1), false);
        s.install(r.start.next(), FrameId(2), false);
        let freed = s.munmap(r).expect("munmap");
        assert_eq!(freed.len(), 2);
        assert!(s.pte(r.start).is_err(), "pages gone after munmap");
        // Wrong range errors.
        assert!(s.munmap(r).is_err());
    }
}
