//! Physical frame allocation.

use simcore::chaos::invariant;

use crate::types::FrameId;

/// Allocator for physical page frames.
///
/// Frames are fungible in the simulation (no contents are stored), so the
/// allocator is a free list plus accounting. Exhaustion is the signal the
/// memory manager uses to trigger reclaim.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    total: u64,
    free: Vec<FrameId>,
    next_unused: u64,
    allocated: u64,
    high_watermark: u64,
    /// Invariant-note namespace: distinguishes this allocator's frame
    /// ids from other nodes' allocators inside one global checker.
    chaos_ns: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing `total` frames.
    #[must_use]
    pub fn new(total: u64) -> Self {
        FrameAllocator {
            total,
            free: Vec::new(),
            next_unused: 0,
            allocated: 0,
            high_watermark: 0,
            chaos_ns: 0,
        }
    }

    /// Sets the invariant-note namespace (see [`invariant::fresh_namespace`]).
    pub fn set_chaos_namespace(&mut self, ns: u64) {
        self.chaos_ns = ns;
    }

    /// Total frames managed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Frames currently allocated.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Frames currently free.
    #[must_use]
    pub fn free_count(&self) -> u64 {
        self.total - self.allocated
    }

    /// The largest number of frames ever simultaneously allocated.
    #[must_use]
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Allocates one frame, or `None` when memory is exhausted (the
    /// caller should reclaim and retry).
    pub fn alloc(&mut self) -> Option<FrameId> {
        let frame = if let Some(f) = self.free.pop() {
            f
        } else if self.next_unused < self.total {
            let f = FrameId(self.next_unused);
            self.next_unused += 1;
            f
        } else {
            return None;
        };
        self.allocated += 1;
        self.high_watermark = self.high_watermark.max(self.allocated);
        invariant::note_frame_allocated((self.chaos_ns << 40) | frame.0);
        Some(frame)
    }

    /// Returns a frame to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the allocator's books would go negative (double free).
    pub fn free(&mut self, frame: FrameId) {
        assert!(self.allocated > 0, "double free of {frame}");
        debug_assert!(frame.0 < self.total, "foreign frame {frame}");
        self.allocated -= 1;
        self.free.push(frame);
        invariant::note_frame_freed((self.chaos_ns << 40) | frame.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_until_exhaustion() {
        let mut a = FrameAllocator::new(3);
        let f1 = a.alloc().expect("frame 1");
        let f2 = a.alloc().expect("frame 2");
        let f3 = a.alloc().expect("frame 3");
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        assert!(a.alloc().is_none());
        assert_eq!(a.free_count(), 0);
    }

    #[test]
    fn freeing_allows_reuse() {
        let mut a = FrameAllocator::new(1);
        let f = a.alloc().expect("frame");
        assert!(a.alloc().is_none());
        a.free(f);
        assert_eq!(a.alloc(), Some(f));
    }

    #[test]
    fn watermark_tracks_peak() {
        let mut a = FrameAllocator::new(10);
        let f1 = a.alloc().expect("frame");
        let _f2 = a.alloc().expect("frame");
        a.free(f1);
        a.alloc().expect("frame");
        assert_eq!(a.high_watermark(), 2);
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(1);
        let f = a.alloc().expect("frame");
        a.free(f);
        a.free(f);
    }
}
