//! Addresses, page numbers, and identifiers.
//!
//! The simulator uses 4 KiB pages throughout, matching the paper's testbed.
//! Virtual addresses are per-address-space; physical frames are host-wide.

use std::fmt;

/// Size of a page in bytes (4 KiB, as in the paper's x86 testbed).
pub const PAGE_SIZE: u64 = 4096;

/// Number of bits in a page offset.
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address within some address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page number containing this address.
    #[must_use]
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// The offset within the page.
    #[must_use]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Adds a byte offset.
    #[must_use]
    pub const fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The first address of the page.
    #[must_use]
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The next page number.
    #[must_use]
    pub const fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }

    /// Iterates `count` consecutive page numbers starting here.
    pub fn span(self, count: u64) -> impl Iterator<Item = Vpn> {
        (self.0..self.0 + count).map(Vpn)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u64);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// Identifier of an address space (a process or VM — an *IOuser* in the
/// paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpaceId(pub u32);

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as{}", self.0)
    }
}

/// Identifier of a simulated file (for page-cache backed mappings and the
/// storage workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// A contiguous range of virtual pages `[start, start + pages)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    /// First page of the range.
    pub start: Vpn,
    /// Number of pages.
    pub pages: u64,
}

impl PageRange {
    /// Creates a range of `pages` pages starting at `start`.
    #[must_use]
    pub const fn new(start: Vpn, pages: u64) -> Self {
        PageRange { start, pages }
    }

    /// A range covering `bytes` bytes starting at `addr` (page-aligned
    /// expansion: partial pages at either end count as whole pages).
    #[must_use]
    pub fn covering(addr: VirtAddr, bytes: u64) -> Self {
        if bytes == 0 {
            return PageRange::new(addr.vpn(), 0);
        }
        let first = addr.vpn();
        let last = VirtAddr(addr.0 + bytes - 1).vpn();
        PageRange::new(first, last.0 - first.0 + 1)
    }

    /// One page past the end of the range.
    #[must_use]
    pub const fn end(self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }

    /// `true` when `vpn` lies inside the range.
    #[must_use]
    pub const fn contains(self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.start.0 + self.pages
    }

    /// `true` when the range is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.pages == 0
    }

    /// Iterates the page numbers of the range.
    pub fn iter(self) -> impl Iterator<Item = Vpn> {
        self.start.span(self.pages)
    }

    /// `true` when the two ranges share at least one page.
    #[must_use]
    pub const fn overlaps(self, other: PageRange) -> bool {
        self.start.0 < other.start.0 + other.pages && other.start.0 < self.start.0 + self.pages
    }
}

impl fmt::Display for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..+{}]", self.start, self.pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_split() {
        let a = VirtAddr(0x12345);
        assert_eq!(a.vpn(), Vpn(0x12));
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(Vpn(0x12).base(), VirtAddr(0x12000));
    }

    #[test]
    fn range_covering_partial_pages() {
        // One byte in the middle of a page covers exactly one page.
        let r = PageRange::covering(VirtAddr(0x1800), 1);
        assert_eq!(r, PageRange::new(Vpn(1), 1));
        // A 4 KiB span straddling a boundary covers two pages.
        let r = PageRange::covering(VirtAddr(0x1800), 4096);
        assert_eq!(r, PageRange::new(Vpn(1), 2));
        // Zero bytes covers zero pages.
        assert!(PageRange::covering(VirtAddr(0x1800), 0).is_empty());
    }

    #[test]
    fn range_contains_and_end() {
        let r = PageRange::new(Vpn(10), 4);
        assert!(r.contains(Vpn(10)));
        assert!(r.contains(Vpn(13)));
        assert!(!r.contains(Vpn(14)));
        assert_eq!(r.end(), Vpn(14));
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    fn range_overlap() {
        let a = PageRange::new(Vpn(0), 4);
        let b = PageRange::new(Vpn(3), 4);
        let c = PageRange::new(Vpn(4), 4);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(b.overlaps(c));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(SpaceId(3).to_string(), "as3");
        assert_eq!(VirtAddr(0x1000).to_string(), "va:0x1000");
        assert!(PageRange::new(Vpn(1), 2).to_string().contains("+2"));
    }
}
