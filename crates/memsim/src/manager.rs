//! The host memory manager: demand paging, reclaim, pinning, cgroups.
//!
//! [`MemoryManager`] is the OS side of Figure 2's NPF flow: it owns the
//! frame pool, resolves page faults (allocating, zero-filling, swapping
//! in, or reading through the page cache), reclaims memory under
//! pressure, and reports **invalidations** — pages it took away — so the
//! NPF driver can purge IOMMU mappings (the MMU-notifier path).
//!
//! The manager is sans-IO: every operation returns the simulated time it
//! cost; the caller (testbed event loop) advances the clock.

use std::collections::HashMap;

use simcore::journal;
use simcore::stats::Counters;
use simcore::time::SimDuration;
use simcore::trace::{self, ArgValue};
use simcore::units::ByteSize;

use crate::frame::FrameAllocator;
use crate::lru::LruTracker;
use crate::pagecache::{CacheKey, PageCache};
use crate::space::{AddressSpace, Backing, PageState, SpaceError};
use crate::swap::{DiskConfig, SwapDevice};
use crate::types::{FileId, FrameId, PageRange, SpaceId, Vpn, PAGE_SIZE};

/// A memory-control group: a set of address spaces sharing a resident
/// limit (the paper constrains memcached pairs with Linux cgroups, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CgroupId(pub u32);

/// Configuration of a slow byte-addressable memory tier (the hemem
/// idiom: DRAM in front, NVM behind, with the OS migrating pages
/// between them on fault/reclaim events).
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    /// Capacity of the slow tier.
    pub capacity: ByteSize,
    /// Device model for the slow tier (latency/bandwidth of NVM).
    pub disk: DiskConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            capacity: ByteSize::gib(2),
            disk: DiskConfig::nvm(),
        }
    }
}

/// High bit of a swap-slot id marks a slot in the NVM tier rather than
/// the swap device; [`PageState::SwappedOut`] carries either unchanged.
const NVM_SLOT_TAG: u64 = 1 << 63;

/// Configuration of the memory subsystem.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Physical memory available to the host.
    pub total_memory: ByteSize,
    /// Disk model for swap and page-cache misses.
    pub disk: DiskConfig,
    /// Swap space.
    pub swap_capacity: ByteSize,
    /// Fixed software cost of resolving any fault (trap + bookkeeping).
    pub fault_sw_cost: SimDuration,
    /// Extra software cost per page resolved (translation, zeroing); the
    /// paper measures ~115 ns/page of OS work for large messages (§4).
    pub per_page_sw_cost: SimDuration,
    /// Per-space mlock limit (`RLIMIT_MEMLOCK`); `None` disables the
    /// check (privileged IOproviders).
    pub rlimit_memlock: Option<ByteSize>,
    /// Optional slow memory tier. Cold dirty pages demote to NVM before
    /// falling back to swap; re-faulting promotes them back to DRAM,
    /// charging the (much cheaper) NVM fetch as
    /// [`FaultResolution::tier_cost`].
    pub tier: Option<TierConfig>,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            total_memory: ByteSize::gib(8),
            disk: DiskConfig::hard_drive(),
            swap_capacity: ByteSize::gib(16),
            fault_sw_cost: SimDuration::from_micros(1),
            per_page_sw_cost: SimDuration::from_nanos(115),
            rlimit_memlock: None,
            tier: None,
        }
    }
}

/// The class of a resolved fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Resolved without disk I/O (zero-fill or page-cache hit).
    Minor,
    /// Required disk I/O (swap-in or page-cache miss).
    Major,
}

/// A page mapping the OS revoked; consumers with I/O mappings (the NPF
/// driver) must invalidate them before the frame is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invalidation {
    /// The space that lost the page.
    pub space: SpaceId,
    /// The page that went away.
    pub vpn: Vpn,
}

/// Result of resolving one fault (or touching one page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultResolution {
    /// Minor or major.
    pub kind: FaultKind,
    /// The frame now backing the page.
    pub frame: FrameId,
    /// Total simulated cost (software + any disk I/O, including eviction
    /// writeback performed to make room).
    pub cost: SimDuration,
    /// The disk-I/O share of `cost` (swap-in / page-cache miss). NPF
    /// drivers charge this on top of their own software model rather
    /// than double-counting the CPU components.
    pub io_cost: SimDuration,
    /// The share of `io_cost` spent fetching the page from the slow
    /// memory tier (NVM promotion). NPF drivers re-label this slice of
    /// their OS span as tier-migration time in the fault journal.
    pub tier_cost: SimDuration,
    /// Pages revoked to make room.
    pub invalidations: Vec<Invalidation>,
}

/// Result of touching a page from the CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// The fault that was resolved, or `None` when the page was resident.
    pub fault: Option<FaultResolution>,
}

impl Access {
    /// The time the access cost (zero for resident pages).
    #[must_use]
    pub fn cost(&self) -> SimDuration {
        self.fault.as_ref().map_or(SimDuration::ZERO, |f| f.cost)
    }

    /// Invalidations produced while making room.
    #[must_use]
    pub fn invalidations(&self) -> &[Invalidation] {
        self.fault.as_ref().map_or(&[], |f| &f.invalidations)
    }
}

/// Result of pinning a range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinOutcome {
    /// Total cost: faulting in non-resident pages plus pin bookkeeping.
    pub cost: SimDuration,
    /// Number of pages that had to be faulted in.
    pub faulted_pages: u64,
    /// Invalidations produced while making room.
    pub invalidations: Vec<Invalidation>,
}

/// Errors from memory-management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Unknown address space.
    NoSuchSpace(SpaceId),
    /// Structural error (unmapped page, overlapping mmap).
    Space(SpaceError),
    /// All memory is pinned or otherwise unreclaimable.
    OutOfMemory,
    /// The swap device is full.
    SwapFull,
    /// The per-space `RLIMIT_MEMLOCK` would be exceeded.
    MlockLimit {
        /// The limit in force.
        limit: ByteSize,
        /// The pinned size the request would have produced.
        requested: ByteSize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::NoSuchSpace(id) => write!(f, "no such address space {id}"),
            MemError::Space(e) => write!(f, "{e}"),
            MemError::OutOfMemory => write!(f, "out of memory: nothing reclaimable"),
            MemError::SwapFull => write!(f, "swap space exhausted"),
            MemError::MlockLimit { limit, requested } => {
                write!(f, "mlock limit {limit} exceeded (requested {requested})")
            }
        }
    }
}

impl std::error::Error for MemError {}

impl From<SpaceError> for MemError {
    fn from(e: SpaceError) -> Self {
        MemError::Space(e)
    }
}

/// The host memory subsystem.
#[derive(Debug)]
pub struct MemoryManager {
    config: MemConfig,
    frames: FrameAllocator,
    /// Indexed by `SpaceId.0`; ids are handed out densely below.
    spaces: Vec<AddressSpace>,
    space_group: HashMap<SpaceId, CgroupId>,
    group_limit: HashMap<CgroupId, u64>, // pages
    group_resident: HashMap<CgroupId, u64>,
    group_members: HashMap<CgroupId, Vec<SpaceId>>,
    swap: SwapDevice,
    /// The slow memory tier, when configured: demotion target for cold
    /// dirty pages ahead of the swap device.
    nvm: Option<SwapDevice>,
    cache: PageCache,
    lru: LruTracker,
    /// Reference counts of frames shared by COW (absent = 1 owner).
    frame_refs: HashMap<FrameId, u32>,
    /// Shared recency clock across mapped memory and the page cache
    /// (their relative ages decide reclaim order, as in Linux).
    clock: u64,
    counters: Counters,
    next_space: u32,
    next_group: u32,
}

impl MemoryManager {
    fn next_tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Creates a manager over `config.total_memory` of physical memory.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let total_frames = config.total_memory.bytes() / PAGE_SIZE;
        let swap_slots = config.swap_capacity.bytes() / PAGE_SIZE;
        MemoryManager {
            frames: FrameAllocator::new(total_frames),
            spaces: Vec::new(),
            space_group: HashMap::new(),
            group_limit: HashMap::new(),
            group_resident: HashMap::new(),
            group_members: HashMap::new(),
            swap: SwapDevice::new(config.disk, swap_slots),
            nvm: config
                .tier
                .map(|t| SwapDevice::new(t.disk, t.capacity.bytes() / PAGE_SIZE)),
            cache: PageCache::new(),
            lru: LruTracker::new(),
            frame_refs: HashMap::new(),
            clock: 0,
            counters: Counters::new(),
            next_space: 0,
            next_group: 0,
            config,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Sets the invariant-note namespace of the frame allocator, so a
    /// multi-node simulation never aliases two nodes' frame ids inside
    /// one global checker.
    pub fn set_chaos_namespace(&mut self, ns: u64) {
        self.frames.set_chaos_namespace(ns);
    }

    /// Statistics counters (`minor_faults`, `major_faults`, `evictions`,
    /// `swap_outs`, `cache_drops`).
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Free physical frames.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        self.frames.free_count()
    }

    /// Total physical frames.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.frames.total()
    }

    /// Pages held by the page cache.
    #[must_use]
    pub fn cache_pages(&self) -> u64 {
        self.cache.len() as u64
    }

    /// Page cache hit ratio so far.
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Pages currently demoted to the slow memory tier (0 when no tier
    /// is configured).
    #[must_use]
    pub fn tier_pages(&self) -> u64 {
        self.nvm.as_ref().map_or(0, SwapDevice::used_slots)
    }

    /// Creates a new, unconstrained address space.
    pub fn create_space(&mut self) -> SpaceId {
        let id = SpaceId(self.next_space);
        self.next_space += 1;
        self.spaces.push(AddressSpace::new(id));
        id
    }

    /// Creates a memory cgroup with a resident-set limit.
    pub fn create_cgroup(&mut self, limit: ByteSize) -> CgroupId {
        let id = CgroupId(self.next_group);
        self.next_group += 1;
        self.group_limit.insert(id, limit.bytes() / PAGE_SIZE);
        self.group_resident.insert(id, 0);
        self.group_members.insert(id, Vec::new());
        id
    }

    /// Puts a space into a cgroup (at creation time, before it has
    /// resident pages).
    ///
    /// # Panics
    ///
    /// Panics if the space already has resident pages or the group does
    /// not exist.
    pub fn attach_to_cgroup(&mut self, space: SpaceId, group: CgroupId) {
        let s = self
            .spaces
            .get(space.0 as usize)
            .expect("attach of unknown space");
        assert_eq!(s.resident_pages(), 0, "attach must precede residency");
        assert!(self.group_limit.contains_key(&group), "unknown cgroup");
        self.space_group.insert(space, group);
        self.group_members
            .get_mut(&group)
            .expect("group exists")
            .push(space);
    }

    /// Direct read-only view of a space.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchSpace`] for unknown ids.
    pub fn space(&self, id: SpaceId) -> Result<&AddressSpace, MemError> {
        self.spaces
            .get(id.0 as usize)
            .ok_or(MemError::NoSuchSpace(id))
    }

    fn space_mut(&mut self, id: SpaceId) -> Result<&mut AddressSpace, MemError> {
        self.spaces
            .get_mut(id.0 as usize)
            .ok_or(MemError::NoSuchSpace(id))
    }

    /// Maps `size` of `backing` into `space`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchSpace`] for unknown ids.
    pub fn mmap(
        &mut self,
        space: SpaceId,
        size: ByteSize,
        backing: Backing,
    ) -> Result<PageRange, MemError> {
        Ok(self.space_mut(space)?.mmap(size.pages(), backing))
    }

    /// Maps `range` at a fixed location (the testbeds use well-known
    /// buffer addresses).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchSpace`] or a structural overlap error.
    pub fn mmap_fixed(
        &mut self,
        space: SpaceId,
        range: PageRange,
        backing: Backing,
    ) -> Result<(), MemError> {
        self.space_mut(space)?.mmap_fixed(range, backing)?;
        Ok(())
    }

    /// Unmaps `range`, freeing its frames.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from the space.
    pub fn munmap(&mut self, space: SpaceId, range: PageRange) -> Result<(), MemError> {
        let freed = self.space_mut(space)?.munmap(range)?;
        let group = self.space_group.get(&space).copied();
        for (vpn, frame) in freed {
            self.lru.remove(space, vpn);
            self.release_frame(frame);
            if let Some(g) = group {
                *self.group_resident.get_mut(&g).expect("group exists") -= 1;
            }
        }
        Ok(())
    }

    /// Touches one page from the CPU, resolving a fault if needed.
    ///
    /// # Errors
    ///
    /// Structural errors, plus [`MemError::OutOfMemory`]/[`MemError::SwapFull`]
    /// when reclaim cannot make room.
    pub fn touch(&mut self, space: SpaceId, vpn: Vpn, write: bool) -> Result<Access, MemError> {
        let s = self.space_mut(space)?;
        if let Some((pinned, cow_write)) = s.touch_resident(vpn, write) {
            if cow_write {
                let fault = self.break_cow(space, vpn)?;
                return Ok(Access { fault: Some(fault) });
            }
            if !pinned {
                let t = self.next_tick();
                self.lru.touch_tick(space, vpn, t);
            }
            return Ok(Access { fault: None });
        }
        let fault = self.resolve_fault(space, vpn, write)?;
        Ok(Access { fault: Some(fault) })
    }

    /// Forks `parent` into a new space: same mappings, resident pages
    /// shared copy-on-write (Table 1's canonical optimization; §5 names
    /// COW forks as a cause of cold sequences for direct I/O).
    ///
    /// Returns the child id plus the invalidations the fork produced:
    /// every formerly-writable parent page is now write-protected, so
    /// any I/O mapping of it is stale (this is the MMU-notifier storm a
    /// real fork triggers, and why §5 lists forking as a cold-sequence
    /// cause).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchSpace`] for unknown parents.
    ///
    /// # Panics
    ///
    /// Panics if the parent has pinned or swapped-out pages.
    pub fn fork_space(
        &mut self,
        parent: SpaceId,
    ) -> Result<(SpaceId, Vec<Invalidation>), MemError> {
        if self.spaces.get(parent.0 as usize).is_none() {
            return Err(MemError::NoSuchSpace(parent));
        }
        let child_id = SpaceId(self.next_space);
        self.next_space += 1;
        let child = self.spaces[parent.0 as usize].fork_into(child_id);
        // Account frame sharing, track the child's pages for reclaim,
        // and collect the parent-side invalidations.
        let shared: Vec<(Vpn, FrameId)> = child.resident_iter().collect();
        let mut invalidations = Vec::with_capacity(shared.len());
        for (vpn, frame) in shared {
            *self.frame_refs.entry(frame).or_insert(1) += 1;
            let t = self.next_tick();
            self.lru.touch_tick(child_id, vpn, t);
            invalidations.push(Invalidation { space: parent, vpn });
        }
        debug_assert_eq!(child_id.0 as usize, self.spaces.len());
        self.spaces.push(child);
        self.counters.bump("forks");
        Ok((child_id, invalidations))
    }

    /// Breaks copy-on-write sharing for a written page: the writer gets
    /// a private copy (or the page outright if it is the last sharer).
    /// The old mapping must be invalidated in any IOMMU.
    fn break_cow(&mut self, space: SpaceId, vpn: Vpn) -> Result<FaultResolution, MemError> {
        let old = self
            .space(space)?
            .frame_of(vpn)
            .expect("COW break on resident page");
        let refs = self.frame_refs.get(&old).copied().unwrap_or(1);
        self.counters.bump("cow_breaks");
        // The writer's translation changes either way: existing I/O
        // mappings of this page are stale.
        let mut invalidations = vec![Invalidation { space, vpn }];
        let mut cost = self.config.fault_sw_cost;
        let frame = if refs > 1 {
            let (new, alloc_cost, inv) = self.alloc_frame()?;
            cost += alloc_cost;
            invalidations.extend(inv);
            // Page copy: ~4 KiB at memory bandwidth.
            cost += SimDuration::from_nanos(800);
            self.release_frame(old);
            self.spaces[space.0 as usize].replace_frame(vpn, new);
            new
        } else {
            self.spaces[space.0 as usize].clear_cow(vpn, true);
            old
        };
        let t = self.next_tick();
        self.lru.touch_tick(space, vpn, t);
        Ok(FaultResolution {
            kind: FaultKind::Minor,
            frame,
            cost,
            io_cost: SimDuration::ZERO,
            tier_cost: SimDuration::ZERO,
            invalidations,
        })
    }

    /// Touches every page of a byte range, summing costs. Convenience
    /// for workloads that walk buffers.
    ///
    /// # Errors
    ///
    /// As for [`MemoryManager::touch`].
    pub fn touch_range(
        &mut self,
        space: SpaceId,
        range: PageRange,
        write: bool,
    ) -> Result<(SimDuration, Vec<Invalidation>), MemError> {
        let mut cost = SimDuration::ZERO;
        let mut inv = Vec::new();
        for vpn in range.iter() {
            let a = self.touch(space, vpn, write)?;
            cost += a.cost();
            inv.extend_from_slice(a.invalidations());
        }
        Ok((cost, inv))
    }

    /// Resolves a fault on `vpn`, making the page resident.
    ///
    /// This is the entry point the NPF driver uses on behalf of the NIC
    /// (step 3 of Figure 2): it performs allocation, zero-fill, swap-in,
    /// or page-cache fill, reclaiming memory if necessary.
    ///
    /// # Errors
    ///
    /// Structural errors, plus [`MemError::OutOfMemory`]/[`MemError::SwapFull`]
    /// when reclaim cannot make room.
    ///
    /// # Panics
    ///
    /// Panics if called on a page that is already resident.
    pub fn resolve_fault(
        &mut self,
        space: SpaceId,
        vpn: Vpn,
        write: bool,
    ) -> Result<FaultResolution, MemError> {
        let pte = self.space(space)?.pte(vpn)?;
        assert!(
            pte.frame().is_none(),
            "resolve_fault on resident page {vpn}"
        );
        let backing = self.space(space)?.backing_of(vpn)?;

        let mut cost = self.config.fault_sw_cost + self.config.per_page_sw_cost;
        let mut io_cost = SimDuration::ZERO;
        let mut tier_cost = SimDuration::ZERO;
        let mut invalidations = Vec::new();

        // Respect the cgroup resident limit before taking a new frame.
        let group = self.space_group.get(&space).copied();
        if let Some(g) = group {
            let limit = self.group_limit[&g];
            while self.group_resident[&g] >= limit {
                let (inv, c) = self.evict_from_group(g)?;
                cost += c;
                invalidations.push(inv);
            }
        }

        let (frame, alloc_cost, mut alloc_inv) = self.alloc_frame()?;
        cost += alloc_cost;
        invalidations.append(&mut alloc_inv);

        // Fill the page according to its backing.
        let kind = match (backing, pte.state) {
            (Backing::Anonymous, PageState::SwappedOut { slot }) => {
                if slot & NVM_SLOT_TAG != 0 {
                    // Promotion from the slow tier back into DRAM.
                    let nvm = self.nvm.as_mut().expect("tagged slot implies a tier");
                    let io = nvm.swap_in(slot & !NVM_SLOT_TAG);
                    cost += io;
                    io_cost += io;
                    tier_cost += io;
                    self.counters.bump("tier_promotions");
                    journal::mark(journal::MarkKind::TierMigrate, vpn.0);
                } else {
                    let io = self.swap.swap_in(slot);
                    cost += io;
                    io_cost += io;
                }
                self.counters.bump("major_faults");
                FaultKind::Major
            }
            (Backing::Anonymous, _) => {
                // Zero-fill (delayed allocation). Charged in the per-page
                // software cost.
                self.counters.bump("minor_faults");
                FaultKind::Minor
            }
            (Backing::File { .. }, _) => {
                let (file, page) = self
                    .space(space)?
                    .file_page_of(vpn)
                    .expect("file backing has file page");
                let key = CacheKey { file, page };
                let t = self.next_tick();
                if self.cache.lookup(key, t).is_some() {
                    self.counters.bump("minor_faults");
                    FaultKind::Minor
                } else {
                    // Read through the cache: the newly allocated frame
                    // holds the data and is *also* accounted to the cache
                    // conceptually; for simplicity the mapped copy is the
                    // only copy (no double caching).
                    let io = self.config.disk.io_time(PAGE_SIZE);
                    cost += io;
                    io_cost += io;
                    self.counters.bump("major_faults");
                    FaultKind::Major
                }
            }
        };

        let s = &mut self.spaces[space.0 as usize];
        s.install(vpn, frame, write);
        let t = self.next_tick();
        self.lru.touch_tick(space, vpn, t);
        if let Some(g) = group {
            *self.group_resident.get_mut(&g).expect("group exists") += 1;
        }

        if journal::enabled() && kind == FaultKind::Major {
            journal::mark(journal::MarkKind::BackingFetch, vpn.0);
        }
        if trace::enabled() {
            // Host fault handling has no simulated clock of its own
            // (costs are returned to the caller); stamp with the
            // recorder's clock.
            trace::instant_now(
                "memsim",
                if kind == FaultKind::Major {
                    "major_fault"
                } else {
                    "minor_fault"
                },
                vec![
                    ("vpn", ArgValue::U64(vpn.0)),
                    ("write", ArgValue::Bool(write)),
                ],
            );
            trace::metrics(|m| {
                m.counter_add(
                    if kind == FaultKind::Major {
                        "memsim.major_faults"
                    } else {
                        "memsim.minor_faults"
                    },
                    1,
                );
                m.duration_record("memsim.fault_cost", cost);
            });
        }

        Ok(FaultResolution {
            kind,
            frame,
            cost,
            io_cost,
            tier_cost,
            invalidations,
        })
    }

    /// Drops one reference to `frame`, freeing it when this was the
    /// last.
    fn release_frame(&mut self, frame: FrameId) {
        match self.frame_refs.get_mut(&frame) {
            Some(refs) if *refs > 2 => *refs -= 1,
            Some(_) => {
                self.frame_refs.remove(&frame);
            }
            None => self.frames.free(frame),
        }
    }

    /// Allocates a frame, reclaiming if the pool is exhausted.
    fn alloc_frame(&mut self) -> Result<(FrameId, SimDuration, Vec<Invalidation>), MemError> {
        if let Some(f) = self.frames.alloc() {
            return Ok((f, SimDuration::ZERO, Vec::new()));
        }
        let mut cost = SimDuration::ZERO;
        let mut invalidations = Vec::new();
        loop {
            let (inv, c) = self.reclaim_one()?;
            cost += c;
            if let Some(i) = inv {
                invalidations.push(i);
            }
            if let Some(f) = self.frames.alloc() {
                return Ok((f, cost, invalidations));
            }
        }
    }

    /// Forcibly reclaims up to `pages` pages — the entry point for
    /// chaos-injected memory-pressure bursts and eviction storms (a
    /// noisy neighbour ballooning, kswapd panicking). Victims follow the
    /// normal unified-LRU policy; the returned invalidations MUST be
    /// run through the IOMMU invalidation flow, exactly as for reclaim
    /// triggered by allocation.
    pub fn reclaim(&mut self, pages: u64) -> Vec<Invalidation> {
        let mut invalidations = Vec::new();
        for _ in 0..pages {
            match self.reclaim_one() {
                Ok((inv, _cost)) => invalidations.extend(inv),
                Err(_) => break, // nothing reclaimable left
            }
        }
        if trace::enabled() && !invalidations.is_empty() {
            trace::metrics(|m| {
                m.counter_add("memsim.chaos_reclaimed", invalidations.len() as u64);
            });
        }
        invalidations
    }

    /// Reclaims one page: whichever of the page cache and the mapped
    /// LRU holds the globally least-recently-used page loses it (one
    /// unified LRU, as in Linux).
    fn reclaim_one(&mut self) -> Result<(Option<Invalidation>, SimDuration), MemError> {
        let cache_age = self.cache.oldest_tick();
        let mapped_age = self.lru.oldest_tick();
        let take_cache = match (cache_age, mapped_age) {
            (Some(c), Some(m)) => c < m,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return Err(MemError::OutOfMemory),
        };
        if take_cache {
            let frame = self.cache.evict_oldest().expect("age implies entry");
            self.frames.free(frame);
            self.counters.bump("cache_drops");
            return Ok((None, SimDuration::ZERO));
        }
        let (space, vpn) = self.lru.pop_oldest().expect("age implies entry");
        let cost = self.evict_mapped(space, vpn)?;
        Ok((Some(Invalidation { space, vpn }), cost))
    }

    /// Evicts the LRU page of a cgroup: the least recently used page
    /// across all member spaces.
    fn evict_from_group(
        &mut self,
        group: CgroupId,
    ) -> Result<(Invalidation, SimDuration), MemError> {
        let members = self.group_members.get(&group).expect("group exists");
        let victim_space = members
            .iter()
            .filter_map(|&m| self.lru.oldest_tick_in(m).map(|t| (t, m)))
            .min()
            .map(|(_, m)| m);
        let Some(space) = victim_space else {
            return Err(MemError::OutOfMemory);
        };
        let vpn = self.lru.pop_oldest_in(space).expect("tick implies entry");
        let cost = self.evict_mapped(space, vpn)?;
        Ok((Invalidation { space, vpn }, cost))
    }

    /// Performs the eviction of one resident mapped page.
    ///
    /// Dirty-page writeback is asynchronous (kswapd writes back ahead of
    /// reclaim), so only a small CPU cost lands on the allocating path;
    /// the disk time of the write is not charged to the faulting task.
    fn evict_mapped(&mut self, space: SpaceId, vpn: Vpn) -> Result<SimDuration, MemError> {
        let s = &mut self.spaces[space.0 as usize];
        let backing = s.backing_of(vpn)?;
        let is_anon = matches!(backing, Backing::Anonymous);
        let pte = s.pte(vpn)?;
        let mut cost = SimDuration::ZERO;
        let shared = pte
            .frame()
            .is_some_and(|f| self.frame_refs.get(&f).copied().unwrap_or(1) > 1);
        let (frame, _dirty) = if is_anon && pte.dirty && !shared {
            // LRU victims are by construction the coldest mapped pages:
            // demote them to the slow tier while it has room, and fall
            // back to swap once NVM is full (the hemem policy).
            let slot =
                if let Some((nvm_slot, _io)) = self.nvm.as_mut().and_then(SwapDevice::swap_out) {
                    self.counters.bump("tier_demotions");
                    journal::mark(journal::MarkKind::TierMigrate, vpn.0);
                    if trace::enabled() {
                        trace::metrics(|m| m.counter_add("memsim.tier_demotions", 1));
                    }
                    nvm_slot | NVM_SLOT_TAG
                } else {
                    let Some((swap_slot, _io)) = self.swap.swap_out() else {
                        return Err(MemError::SwapFull);
                    };
                    self.counters.bump("swap_outs");
                    if trace::enabled() {
                        trace::metrics(|m| m.counter_add("memsim.swap_outs", 1));
                    }
                    swap_slot
                };
            cost += SimDuration::from_micros(3); // writeback queueing CPU
            s.evict(vpn, Some(slot))
        } else {
            // Clean anonymous pages are all-zero: drop and re-zero later.
            // Clean file pages re-read from the cache/disk. A COW-shared
            // page just drops this mapping; the frame lives on in the
            // other sharers (approximation: a re-touch here is a minor
            // zero-fill rather than a content-preserving re-share).
            s.evict(vpn, None)
        };
        self.release_frame(frame);
        self.counters.bump("evictions");
        journal::mark(journal::MarkKind::Eviction, vpn.0);
        if trace::enabled() {
            trace::instant_now(
                "memsim",
                "reclaim_evict",
                vec![("vpn", ArgValue::U64(vpn.0))],
            );
            trace::metrics(|m| m.counter_add("memsim.evictions", 1));
        }
        if let Some(&g) = self.space_group.get(&space) {
            *self.group_resident.get_mut(&g).expect("group exists") -= 1;
        }
        Ok(cost)
    }

    /// Pins a range (mlock / DMA registration): faults pages in and
    /// excludes them from reclaim.
    ///
    /// # Errors
    ///
    /// [`MemError::MlockLimit`] when `RLIMIT_MEMLOCK` would be exceeded;
    /// otherwise as for [`MemoryManager::resolve_fault`].
    pub fn pin_range(&mut self, space: SpaceId, range: PageRange) -> Result<PinOutcome, MemError> {
        if let Some(limit) = self.config.rlimit_memlock {
            let current = self.space(space)?.pinned_pages() * PAGE_SIZE;
            let requested = ByteSize::bytes_exact(current + range.pages * PAGE_SIZE);
            if requested.bytes() > limit.bytes() {
                return Err(MemError::MlockLimit { limit, requested });
            }
        }
        let mut cost = SimDuration::ZERO;
        let mut faulted = 0;
        let mut invalidations = Vec::new();
        for vpn in range.iter() {
            if !self.space(space)?.is_resident(vpn) {
                let f = self.resolve_fault(space, vpn, false)?;
                cost += f.cost;
                invalidations.extend(f.invalidations);
                faulted += 1;
            }
            let s = self.space_mut(space)?;
            if s.pin(vpn) {
                self.lru.remove(space, vpn);
            }
        }
        Ok(PinOutcome {
            cost,
            faulted_pages: faulted,
            invalidations,
        })
    }

    /// Unpins a range, making its pages reclaimable again.
    ///
    /// # Errors
    ///
    /// Structural errors for unmapped pages.
    pub fn unpin_range(&mut self, space: SpaceId, range: PageRange) -> Result<(), MemError> {
        for vpn in range.iter() {
            let s = self.space_mut(space)?;
            if s.pte(vpn)?.is_pinned() && s.unpin(vpn) {
                let t = self.next_tick();
                self.lru.touch_tick(space, vpn, t);
            }
        }
        Ok(())
    }

    /// Resident bytes of a space (its RSS).
    ///
    /// # Errors
    ///
    /// [`MemError::NoSuchSpace`] for unknown ids.
    pub fn resident_bytes(&self, space: SpaceId) -> Result<ByteSize, MemError> {
        Ok(ByteSize::bytes_exact(
            self.space(space)?.resident_pages() * PAGE_SIZE,
        ))
    }

    /// Pinned bytes of a space.
    ///
    /// # Errors
    ///
    /// [`MemError::NoSuchSpace`] for unknown ids.
    pub fn pinned_bytes(&self, space: SpaceId) -> Result<ByteSize, MemError> {
        Ok(ByteSize::bytes_exact(
            self.space(space)?.pinned_pages() * PAGE_SIZE,
        ))
    }

    /// Reads a file page through the page cache without mapping it
    /// (buffered I/O for the storage target). Returns whether it hit and
    /// the cost.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when no frame can be found for a miss.
    pub fn read_file_page(
        &mut self,
        file: FileId,
        page: u64,
    ) -> Result<crate::pagecache::CachedRead, MemError> {
        let key = CacheKey { file, page };
        let t = self.next_tick();
        if self.cache.lookup(key, t).is_some() {
            return Ok(crate::pagecache::CachedRead {
                hit: true,
                cost: SimDuration::ZERO,
            });
        }
        let (frame, alloc_cost, _inv) = self.alloc_frame()?;
        let t = self.next_tick();
        self.cache.insert(key, frame, t);
        let cost = alloc_cost + self.config.disk.io_time(PAGE_SIZE);
        Ok(crate::pagecache::CachedRead { hit: false, cost })
    }

    /// Reads `pages` consecutive file pages, aggregating disk time. One
    /// seek is charged per run of misses rather than per page, modelling
    /// sequential readahead of a block.
    ///
    /// # Errors
    ///
    /// As for [`MemoryManager::read_file_page`].
    pub fn read_file_block(
        &mut self,
        file: FileId,
        first_page: u64,
        pages: u64,
    ) -> Result<crate::pagecache::CachedRead, MemError> {
        let mut any_miss = false;
        let mut miss_pages = 0u64;
        for p in first_page..first_page + pages {
            let key = CacheKey { file, page: p };
            let t = self.next_tick();
            if self.cache.lookup(key, t).is_none() {
                let (frame, _c, _i) = self.alloc_frame()?;
                let t = self.next_tick();
                self.cache.insert(key, frame, t);
                any_miss = true;
                miss_pages += 1;
            }
        }
        let cost = if any_miss {
            self.config.disk.access_latency
                + self
                    .config
                    .disk
                    .bandwidth
                    .transfer_time(miss_pages * PAGE_SIZE)
        } else {
            SimDuration::ZERO
        };
        Ok(crate::pagecache::CachedRead {
            hit: !any_miss,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_manager(mib: u64) -> MemoryManager {
        MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(mib),
            ..MemConfig::default()
        })
    }

    #[test]
    fn first_touch_is_minor_fault() {
        let mut mm = small_manager(4);
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(8), Backing::Anonymous).unwrap();
        let a = mm.touch(s, r.start, true).unwrap();
        let f = a.fault.expect("fault on first touch");
        assert_eq!(f.kind, FaultKind::Minor);
        assert!(f.cost > SimDuration::ZERO);
        // Second touch is free.
        let a2 = mm.touch(s, r.start, false).unwrap();
        assert!(a2.fault.is_none());
        assert_eq!(mm.counters().get("minor_faults"), 1);
    }

    #[test]
    fn pressure_evicts_and_invalidates() {
        // 16 KiB of memory = 4 frames; map 8 pages and walk them twice.
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(16),
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(32), Backing::Anonymous).unwrap();
        let mut invalidations = 0;
        for vpn in r.iter() {
            let a = mm.touch(s, vpn, true).unwrap();
            invalidations += a.invalidations().len();
        }
        assert!(invalidations >= 4, "older pages must be revoked");
        assert!(mm.counters().get("swap_outs") > 0, "dirty pages swap out");
        // Reaccessing an evicted page is a major fault.
        let a = mm.touch(s, r.start, false).unwrap();
        assert_eq!(a.fault.expect("major fault").kind, FaultKind::Major);
    }

    #[test]
    fn clean_anonymous_pages_do_not_swap() {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(8), // 2 frames
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(16), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, false).unwrap(); // read-only: clean
        }
        assert_eq!(mm.counters().get("swap_outs"), 0);
        // Re-touching a dropped clean page is again a minor zero-fill.
        let a = mm.touch(s, r.start, false).unwrap();
        assert_eq!(a.fault.expect("fault").kind, FaultKind::Minor);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(16), // 4 frames
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let pinned = mm.mmap(s, ByteSize::kib(8), Backing::Anonymous).unwrap();
        mm.pin_range(s, pinned).unwrap();
        let big = mm.mmap(s, ByteSize::kib(32), Backing::Anonymous).unwrap();
        for vpn in big.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        for vpn in pinned.iter() {
            assert!(mm.space(s).unwrap().is_resident(vpn), "pinned page evicted");
        }
    }

    #[test]
    fn everything_pinned_is_oom() {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(8), // 2 frames
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(8), Backing::Anonymous).unwrap();
        mm.pin_range(s, r).unwrap();
        let more = mm.mmap(s, ByteSize::kib(4), Backing::Anonymous).unwrap();
        assert_eq!(mm.touch(s, more.start, true), Err(MemError::OutOfMemory));
    }

    #[test]
    fn mlock_limit_enforced() {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(1),
            rlimit_memlock: Some(ByteSize::kib(64)), // the Linux default
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(128), Backing::Anonymous).unwrap();
        let err = mm.pin_range(s, r).unwrap_err();
        assert!(matches!(err, MemError::MlockLimit { .. }));
        // Within the limit succeeds.
        let small = PageRange::new(r.start, 16);
        assert!(mm.pin_range(s, small).is_ok());
    }

    #[test]
    fn cgroup_limit_constrains_residency() {
        let mut mm = small_manager(64);
        let g = mm.create_cgroup(ByteSize::kib(16)); // 4 pages
        let s = mm.create_space();
        mm.attach_to_cgroup(s, g);
        let r = mm.mmap(s, ByteSize::kib(64), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        assert!(
            mm.space(s).unwrap().resident_pages() <= 4,
            "cgroup limit exceeded: {} pages resident",
            mm.space(s).unwrap().resident_pages()
        );
        assert!(mm.free_frames() > 0, "host memory is not the constraint");
    }

    #[test]
    fn file_pages_hit_cache_after_first_read() {
        let mut mm = small_manager(64);
        let s = mm.create_space();
        let file = FileId(7);
        let r = mm
            .mmap(
                s,
                ByteSize::kib(8),
                Backing::File {
                    file,
                    page_offset: 0,
                },
            )
            .unwrap();
        // Populate the cache via direct read, then map: minor fault.
        mm.read_file_page(file, 0).unwrap();
        let a = mm.touch(s, r.start, false).unwrap();
        assert_eq!(a.fault.expect("fault").kind, FaultKind::Minor);
        // An uncached file page is a major fault.
        let a2 = mm.touch(s, r.start.next(), false).unwrap();
        assert_eq!(a2.fault.expect("fault").kind, FaultKind::Major);
    }

    #[test]
    fn block_reads_charge_one_seek() {
        let mut mm = small_manager(64);
        let file = FileId(1);
        let miss = mm.read_file_block(file, 0, 128).unwrap();
        assert!(!miss.hit);
        let single_seek = mm.config().disk.access_latency;
        assert!(miss.cost > single_seek);
        assert!(
            miss.cost < single_seek * 3,
            "must not charge per-page seeks: {}",
            miss.cost
        );
        let hit = mm.read_file_block(file, 0, 128).unwrap();
        assert!(hit.hit);
        assert_eq!(hit.cost, SimDuration::ZERO);
    }

    #[test]
    fn cache_yields_to_mapped_memory() {
        // Fill memory with page cache, then map anonymous memory; the
        // cache must shrink rather than the mapping failing.
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(32), // 8 frames
            ..MemConfig::default()
        });
        mm.read_file_block(FileId(1), 0, 8).unwrap();
        assert_eq!(mm.cache_pages(), 8);
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(16), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        assert_eq!(mm.cache_pages(), 4);
        assert_eq!(mm.counters().get("cache_drops"), 4);
    }

    #[test]
    fn munmap_frees_frames() {
        let mut mm = small_manager(1);
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(16), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        let before = mm.free_frames();
        mm.munmap(s, r).unwrap();
        assert_eq!(mm.free_frames(), before + 4);
    }

    #[test]
    fn resident_and_pinned_accounting() {
        let mut mm = small_manager(4);
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(16), Backing::Anonymous).unwrap();
        mm.pin_range(s, PageRange::new(r.start, 2)).unwrap();
        mm.touch(s, Vpn(r.start.0 + 2), false).unwrap();
        assert_eq!(mm.resident_bytes(s).unwrap(), ByteSize::kib(12));
        assert_eq!(mm.pinned_bytes(s).unwrap(), ByteSize::kib(8));
        mm.unpin_range(s, PageRange::new(r.start, 2)).unwrap();
        assert_eq!(mm.pinned_bytes(s).unwrap(), ByteSize::ZERO);
    }
}

#[cfg(test)]
mod cow_tests {
    use super::*;
    use crate::space::Backing;

    fn manager() -> MemoryManager {
        MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(1),
            ..MemConfig::default()
        })
    }

    #[test]
    fn fork_shares_frames_until_write() {
        let mut mm = manager();
        let parent = mm.create_space();
        let r = mm
            .mmap(parent, ByteSize::kib(16), Backing::Anonymous)
            .unwrap();
        for vpn in r.iter() {
            mm.touch(parent, vpn, true).unwrap();
        }
        let free_before = mm.free_frames();
        let (child, _inv) = mm.fork_space(parent).unwrap();
        // No frames consumed by the fork itself.
        assert_eq!(mm.free_frames(), free_before);
        assert_eq!(mm.space(child).unwrap().resident_pages(), 4);
        // Reads stay shared.
        let a = mm.touch(child, r.start, false).unwrap();
        assert!(a.fault.is_none());
        assert_eq!(
            mm.space(child).unwrap().frame_of(r.start),
            mm.space(parent).unwrap().frame_of(r.start)
        );
    }

    #[test]
    fn write_breaks_cow_with_invalidation() {
        let mut mm = manager();
        let parent = mm.create_space();
        let r = mm
            .mmap(parent, ByteSize::kib(8), Backing::Anonymous)
            .unwrap();
        for vpn in r.iter() {
            mm.touch(parent, vpn, true).unwrap();
        }
        let (child, _inv) = mm.fork_space(parent).unwrap();
        let free_before = mm.free_frames();
        // Child writes: gets a private copy; the stale mapping is
        // reported for IOMMU invalidation.
        let a = mm.touch(child, r.start, true).unwrap();
        let fault = a.fault.expect("COW break is a (minor) fault");
        assert_eq!(fault.kind, FaultKind::Minor);
        assert!(fault.invalidations.contains(&Invalidation {
            space: child,
            vpn: r.start
        }));
        assert_eq!(mm.free_frames(), free_before - 1, "one private copy");
        assert_ne!(
            mm.space(child).unwrap().frame_of(r.start),
            mm.space(parent).unwrap().frame_of(r.start)
        );
        assert_eq!(mm.counters().get("cow_breaks"), 1);
        // Parent's subsequent write is the *last sharer*: no copy.
        let a = mm.touch(parent, r.start, true).unwrap();
        let fault = a.fault.expect("still reported as a transition");
        assert_eq!(mm.free_frames(), free_before - 1, "no extra frame");
        assert!(fault.cost.as_nanos() > 0);
        // Second write is free.
        let a = mm.touch(parent, r.start, true).unwrap();
        assert!(a.fault.is_none());
    }

    #[test]
    fn cow_chain_parent_child_grandchild() {
        let mut mm = manager();
        let parent = mm.create_space();
        let r = mm
            .mmap(parent, ByteSize::kib(4), Backing::Anonymous)
            .unwrap();
        mm.touch(parent, r.start, true).unwrap();
        let (child, _inv) = mm.fork_space(parent).unwrap();
        let (grandchild, _inv2) = mm.fork_space(child).unwrap();
        // Three sharers of one frame.
        let f = mm.space(parent).unwrap().frame_of(r.start).unwrap();
        assert_eq!(mm.space(grandchild).unwrap().frame_of(r.start), Some(f));
        // Each write peels one sharer off.
        mm.touch(grandchild, r.start, true).unwrap();
        assert_ne!(mm.space(grandchild).unwrap().frame_of(r.start), Some(f));
        assert_eq!(mm.space(child).unwrap().frame_of(r.start), Some(f));
        mm.touch(child, r.start, true).unwrap();
        assert_ne!(mm.space(child).unwrap().frame_of(r.start), Some(f));
        // Parent keeps the original frame, now private.
        mm.touch(parent, r.start, true).unwrap();
        assert_eq!(mm.space(parent).unwrap().frame_of(r.start), Some(f));
    }

    #[test]
    fn munmap_of_shared_pages_keeps_frames_for_sharers() {
        let mut mm = manager();
        let parent = mm.create_space();
        let r = mm
            .mmap(parent, ByteSize::kib(8), Backing::Anonymous)
            .unwrap();
        for vpn in r.iter() {
            mm.touch(parent, vpn, true).unwrap();
        }
        let (child, _inv) = mm.fork_space(parent).unwrap();
        let free_before = mm.free_frames();
        mm.munmap(child, r).unwrap();
        assert_eq!(
            mm.free_frames(),
            free_before,
            "shared frames survive the child's unmap"
        );
        // Parent still resident; a parent write is now a last-sharer
        // transition with no copy.
        assert!(mm.space(parent).unwrap().is_resident(r.start));
        mm.touch(parent, r.start, true).unwrap();
        assert!(mm.space(parent).unwrap().is_resident(r.start));
        // Unmapping the parent finally frees them.
        mm.munmap(parent, r).unwrap();
        assert_eq!(mm.free_frames(), free_before + 2);
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn fork_with_pinned_pages_panics() {
        let mut mm = manager();
        let parent = mm.create_space();
        let r = mm
            .mmap(parent, ByteSize::kib(4), Backing::Anonymous)
            .unwrap();
        mm.pin_range(parent, r).unwrap();
        let _ = mm.fork_space(parent);
    }

    #[test]
    fn eviction_of_shared_page_spares_the_frame() {
        // Fork, then pressure the child until its shared page is
        // evicted: the parent keeps the frame.
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(24), // 6 frames
            ..MemConfig::default()
        });
        let parent = mm.create_space();
        let r = mm
            .mmap(parent, ByteSize::kib(4), Backing::Anonymous)
            .unwrap();
        mm.touch(parent, r.start, true).unwrap();
        let (child, _inv) = mm.fork_space(parent).unwrap();
        // The child allocates enough private memory to evict everything
        // reclaimable, including its shared view of the page.
        let big = mm
            .mmap(child, ByteSize::kib(24), Backing::Anonymous)
            .unwrap();
        // Keep the parent's copy hot so the child's is the LRU victim.
        for vpn in big.iter() {
            mm.touch(child, vpn, true).unwrap();
            mm.touch(parent, r.start, false).unwrap();
        }
        assert!(
            mm.space(parent).unwrap().is_resident(r.start),
            "the parent's view must survive"
        );
        // The child's mapping of the shared page is gone or dropped; its
        // private pages may have swapped, but the shared frame survived.
        let f = mm.space(parent).unwrap().frame_of(r.start);
        assert!(f.is_some());
    }
}

#[cfg(test)]
mod tier_tests {
    use super::*;
    use crate::space::Backing;

    fn tiered(ram_kib: u64, tier_kib: u64) -> MemoryManager {
        MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(ram_kib),
            tier: Some(TierConfig {
                capacity: ByteSize::kib(tier_kib),
                disk: DiskConfig::nvm(),
            }),
            ..MemConfig::default()
        })
    }

    #[test]
    fn cold_dirty_pages_demote_to_nvm_before_swap() {
        // 4 frames of DRAM, 2 pages of NVM: walking 8 dirty pages must
        // demote the coldest to the tier first, then fall back to swap.
        let mut mm = tiered(16, 8);
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(32), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        assert_eq!(mm.counters().get("tier_demotions"), 2, "NVM fills first");
        assert!(mm.counters().get("swap_outs") > 0, "overflow goes to swap");
        assert_eq!(mm.tier_pages(), 2);
    }

    #[test]
    fn refault_promotes_from_nvm_and_reports_tier_cost() {
        // Plenty of tier space: every eviction lands in NVM, and the
        // re-fault is a major fault whose I/O is entirely tier cost.
        let mut mm = tiered(16, 64);
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(32), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        assert_eq!(mm.counters().get("swap_outs"), 0, "tier absorbs all");
        let a = mm.touch(s, r.start, false).unwrap();
        let f = a.fault.expect("evicted page re-faults");
        assert_eq!(f.kind, FaultKind::Major);
        assert!(f.tier_cost > SimDuration::ZERO);
        assert_eq!(f.tier_cost, f.io_cost, "all I/O came from the tier");
        assert!(
            f.io_cost < SimDuration::from_micros(10),
            "NVM promotion must be orders of magnitude under disk: {}",
            f.io_cost
        );
        assert_eq!(mm.counters().get("tier_promotions"), 1);
    }

    #[test]
    fn untiered_faults_report_zero_tier_cost() {
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(16),
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(32), Backing::Anonymous).unwrap();
        for vpn in r.iter() {
            mm.touch(s, vpn, true).unwrap();
        }
        let a = mm.touch(s, r.start, false).unwrap();
        let f = a.fault.expect("swapped page re-faults");
        assert_eq!(f.kind, FaultKind::Major);
        assert_eq!(f.tier_cost, SimDuration::ZERO);
        assert!(f.io_cost >= SimDuration::from_millis(5), "HDD swap-in");
    }
}

#[cfg(test)]
mod exhaustion_tests {
    use super::*;
    use crate::space::Backing;

    #[test]
    fn swap_exhaustion_is_reported() {
        // 2 frames of RAM, 1 page of swap: the third dirty page cannot
        // be evicted anywhere.
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(8),
            swap_capacity: ByteSize::kib(4),
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(16), Backing::Anonymous).unwrap();
        let mut result = Ok(());
        for vpn in r.iter() {
            if let Err(e) = mm.touch(s, vpn, true) {
                result = Err(e);
                break;
            }
        }
        assert_eq!(result, Err(MemError::SwapFull));
    }

    #[test]
    fn swap_in_frees_slot_for_reuse() {
        // One frame, two swap slots: pages ping-pong indefinitely (the
        // victim is written out before the faulting page's slot is
        // released, so the device needs one slot of slack).
        let mut mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(4),
            swap_capacity: ByteSize::kib(8),
            ..MemConfig::default()
        });
        let s = mm.create_space();
        let r = mm.mmap(s, ByteSize::kib(8), Backing::Anonymous).unwrap();
        let a = r.start;
        let b = a.next();
        for _ in 0..6 {
            mm.touch(s, a, true).unwrap();
            mm.touch(s, b, true).unwrap();
        }
        assert!(mm.counters().get("major_faults") >= 8, "ping-pong swaps");
    }
}
