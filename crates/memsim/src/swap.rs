//! Swap device and disk model.
//!
//! Major page faults go to secondary storage. The device charges a
//! latency per operation (seek-dominated for the paper's hard drive) plus
//! a transfer component, and tracks slot usage.

use simcore::time::SimDuration;
use simcore::units::Bandwidth;

/// Configuration of a secondary-storage device.
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Fixed per-operation latency (seek + rotation for HDDs).
    pub access_latency: SimDuration,
    /// Sequential transfer bandwidth.
    pub bandwidth: Bandwidth,
}

impl DiskConfig {
    /// The paper's testbed uses a "single high-performance hard drive";
    /// ~5 ms access, 160 MB/s streaming is representative.
    #[must_use]
    pub fn hard_drive() -> Self {
        DiskConfig {
            access_latency: SimDuration::from_millis(5),
            bandwidth: Bandwidth::mbytes_per_sec(160),
        }
    }

    /// A fast NVMe-class device (for ablations).
    #[must_use]
    pub fn nvme() -> Self {
        DiskConfig {
            access_latency: SimDuration::from_micros(80),
            bandwidth: Bandwidth::mbytes_per_sec(3200),
        }
    }

    /// Byte-addressable non-volatile memory (Optane-class), used as the
    /// slow tier of a DRAM/NVM hierarchy. Far faster than any block
    /// device but still several times slower than DRAM.
    #[must_use]
    pub fn nvm() -> Self {
        DiskConfig {
            access_latency: SimDuration::from_micros(1),
            bandwidth: Bandwidth::mbytes_per_sec(8000),
        }
    }

    /// Time to read or write `bytes` in one operation.
    #[must_use]
    pub fn io_time(&self, bytes: u64) -> SimDuration {
        self.access_latency + self.bandwidth.transfer_time(bytes)
    }
}

/// A swap device: slot allocation plus the disk cost model.
#[derive(Debug, Clone)]
pub struct SwapDevice {
    config: DiskConfig,
    free_slots: Vec<u64>,
    next_slot: u64,
    capacity_slots: u64,
    used: u64,
    write_ops: u64,
    read_ops: u64,
}

impl SwapDevice {
    /// Creates a swap device with room for `capacity_slots` pages.
    #[must_use]
    pub fn new(config: DiskConfig, capacity_slots: u64) -> Self {
        SwapDevice {
            config,
            free_slots: Vec::new(),
            next_slot: 0,
            capacity_slots,
            used: 0,
            write_ops: 0,
            read_ops: 0,
        }
    }

    /// Slots currently holding swapped pages.
    #[must_use]
    pub fn used_slots(&self) -> u64 {
        self.used
    }

    /// Total page writes performed.
    #[must_use]
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Total page reads performed.
    #[must_use]
    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }

    /// The underlying disk model.
    #[must_use]
    pub fn config(&self) -> DiskConfig {
        self.config
    }

    /// Writes a page out, returning the slot and the I/O time, or `None`
    /// when the device is full.
    pub fn swap_out(&mut self) -> Option<(u64, SimDuration)> {
        let slot = if let Some(s) = self.free_slots.pop() {
            s
        } else if self.next_slot < self.capacity_slots {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        } else {
            return None;
        };
        self.used += 1;
        self.write_ops += 1;
        Some((slot, self.config.io_time(crate::types::PAGE_SIZE)))
    }

    /// Reads a page back in, freeing the slot, and returns the I/O time.
    ///
    /// # Panics
    ///
    /// Panics if no pages are swapped out (slot bookkeeping bug).
    pub fn swap_in(&mut self, slot: u64) -> SimDuration {
        assert!(self.used > 0, "swap_in with empty swap");
        self.used -= 1;
        self.read_ops += 1;
        self.free_slots.push(slot);
        self.config.io_time(crate::types::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_time_includes_seek_and_transfer() {
        let d = DiskConfig::hard_drive();
        let t = d.io_time(4096);
        assert!(t > SimDuration::from_millis(5));
        assert!(t < SimDuration::from_millis(6));
        // A 512 KiB storage-workload read is transfer-dominated on NVMe.
        let n = DiskConfig::nvme();
        assert!(n.io_time(512 * 1024) < d.io_time(512 * 1024));
    }

    #[test]
    fn slots_recycle() {
        let mut s = SwapDevice::new(DiskConfig::hard_drive(), 2);
        let (a, _) = s.swap_out().expect("slot");
        let (b, _) = s.swap_out().expect("slot");
        assert_ne!(a, b);
        assert!(s.swap_out().is_none(), "capacity enforced");
        s.swap_in(a);
        let (c, _) = s.swap_out().expect("slot reuse");
        assert_eq!(c, a);
        assert_eq!(s.write_ops(), 3);
        assert_eq!(s.read_ops(), 1);
        assert_eq!(s.used_slots(), 2);
    }
}
