//! A paged, direct-indexed map from virtual page numbers to entries.
//!
//! The translation fast path stores page-table state in fixed-size leaf
//! chunks held in a slab. The chunk directory is a plain vector indexed
//! by `vpn >> LEAF_BITS` for the dense low region every address space
//! actually uses (mmap allocates upward from a small base; the testbeds'
//! fixed I/O buffers sit a few thousand chunks up), with a hash-map
//! fallback only for sparse outlier chunks beyond [`DIRECT_CHUNKS`]. A
//! lookup in the common case is two array indexes — no hashing, no tree
//! walk — and a range scan resolves each leaf once per [`LEAF_LEN`]
//! pages instead of once per page.
//!
//! Iteration order is ascending VPN (direct chunks in index order, then
//! sparse chunks sorted), so every observable traversal is deterministic
//! by construction — unlike the `HashMap` storage this replaces.

use std::collections::{BTreeMap, HashMap};

use crate::types::{PageRange, Vpn};

/// log2 of the number of entries per leaf chunk.
pub const LEAF_BITS: u32 = 9;

/// Entries per leaf chunk (one 4 KiB-page-table's worth, as in a real
/// x86 page-table level).
pub const LEAF_LEN: usize = 1 << LEAF_BITS;

const LEAF_MASK: u64 = (LEAF_LEN as u64) - 1;

/// Chunk ids below this are direct-indexed; at 512 pages per chunk this
/// covers VPNs below 2^21 (8 GiB of virtual address space), which holds
/// every region the simulator allocates. Anything above falls back to
/// the sparse map so a stray huge VPN cannot balloon the directory.
const DIRECT_CHUNKS: u64 = 1 << 12;

#[derive(Debug, Clone)]
struct Leaf<T> {
    /// Occupied slots in this leaf; the leaf is recycled at zero.
    used: u32,
    slots: Box<[Option<T>]>,
}

impl<T> Leaf<T> {
    fn empty() -> Self {
        Leaf {
            used: 0,
            slots: (0..LEAF_LEN).map(|_| None).collect(),
        }
    }
}

/// A map from [`Vpn`] to `T` backed by slab-allocated leaf chunks.
///
/// Besides the 4 KiB entries, a chunk can hold one *huge* (2 MiB) leaf
/// entry covering all [`LEAF_LEN`] of its pages — the structural
/// analogue of a superpage PTE. Huge entries live beside the 4 KiB
/// entries (they never alias: callers fold the 512 base entries into one
/// huge entry and split back on demotion) and are kept in a `BTreeMap`
/// so every traversal stays deterministic. [`PageMap::len`] counts only
/// 4 KiB entries; huge entries are counted by [`PageMap::huge_len`].
#[derive(Debug, Clone)]
pub struct PageMap<T> {
    leaves: Vec<Leaf<T>>,
    free: Vec<u32>,
    /// Direct directory: chunk id → slab slot + 1 (0 = absent).
    direct: Vec<u32>,
    /// Fallback directory for chunks at or beyond [`DIRECT_CHUNKS`].
    sparse: HashMap<u64, u32>,
    /// Huge (2 MiB) leaf entries, keyed by chunk id.
    huge: BTreeMap<u64, T>,
    len: usize,
}

impl<T> Default for PageMap<T> {
    fn default() -> Self {
        PageMap::new()
    }
}

impl<T> PageMap<T> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        PageMap {
            leaves: Vec::new(),
            free: Vec::new(),
            direct: Vec::new(),
            sparse: HashMap::new(),
            huge: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of entries present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, chunk: u64) -> Option<u32> {
        if chunk < DIRECT_CHUNKS {
            match self.direct.get(chunk as usize) {
                Some(&s) if s != 0 => Some(s - 1),
                _ => None,
            }
        } else {
            self.sparse.get(&chunk).copied()
        }
    }

    fn slot_of_or_create(&mut self, chunk: u64) -> u32 {
        if let Some(s) = self.slot_of(chunk) {
            return s;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.leaves.push(Leaf::empty());
                u32::try_from(self.leaves.len() - 1).expect("leaf slab fits in u32")
            }
        };
        if chunk < DIRECT_CHUNKS {
            let idx = usize::try_from(chunk).expect("chunk fits usize");
            if self.direct.len() <= idx {
                self.direct.resize(idx + 1, 0);
            }
            self.direct[idx] = slot + 1;
        } else {
            self.sparse.insert(chunk, slot);
        }
        slot
    }

    fn clear_dir(&mut self, chunk: u64) {
        if chunk < DIRECT_CHUNKS {
            self.direct[chunk as usize] = 0;
        } else {
            self.sparse.remove(&chunk);
        }
    }

    /// The entry for `vpn`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, vpn: Vpn) -> Option<&T> {
        let slot = self.slot_of(vpn.0 >> LEAF_BITS)?;
        self.leaves[slot as usize].slots[(vpn.0 & LEAF_MASK) as usize].as_ref()
    }

    /// Mutable access to the entry for `vpn`, if present.
    #[inline]
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut T> {
        let slot = self.slot_of(vpn.0 >> LEAF_BITS)?;
        self.leaves[slot as usize].slots[(vpn.0 & LEAF_MASK) as usize].as_mut()
    }

    /// `true` when `vpn` has an entry.
    #[inline]
    #[must_use]
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.get(vpn).is_some()
    }

    /// Inserts an entry, returning the previous one if any.
    pub fn insert(&mut self, vpn: Vpn, value: T) -> Option<T> {
        let slot = self.slot_of_or_create(vpn.0 >> LEAF_BITS);
        let leaf = &mut self.leaves[slot as usize];
        let prev = leaf.slots[(vpn.0 & LEAF_MASK) as usize].replace(value);
        if prev.is_none() {
            leaf.used += 1;
            self.len += 1;
        }
        prev
    }

    /// The entry for `vpn`, inserting `default()` first if absent.
    pub fn get_mut_or_insert_with(&mut self, vpn: Vpn, default: impl FnOnce() -> T) -> &mut T {
        let slot = self.slot_of_or_create(vpn.0 >> LEAF_BITS);
        let leaf = &mut self.leaves[slot as usize];
        let entry = &mut leaf.slots[(vpn.0 & LEAF_MASK) as usize];
        if entry.is_none() {
            *entry = Some(default());
            leaf.used += 1;
            self.len += 1;
        }
        entry.as_mut().expect("just filled")
    }

    /// Removes and returns the entry for `vpn`.
    pub fn remove(&mut self, vpn: Vpn) -> Option<T> {
        let chunk = vpn.0 >> LEAF_BITS;
        let slot = self.slot_of(chunk)?;
        let leaf = &mut self.leaves[slot as usize];
        let prev = leaf.slots[(vpn.0 & LEAF_MASK) as usize].take();
        if prev.is_some() {
            leaf.used -= 1;
            self.len -= 1;
            if leaf.used == 0 {
                // Recycle the leaf (slots are all `None` again) so a
                // churning workload does not leak chunks.
                self.clear_dir(chunk);
                self.free.push(slot);
            }
        }
        prev
    }

    /// Calls `f(vpn, entry)` for every page of `range` in ascending
    /// order, resolving each leaf chunk once per run instead of once per
    /// page — the structural half of the batched §4.3 walk.
    pub fn scan_range<F: FnMut(Vpn, Option<&T>)>(&self, range: PageRange, mut f: F) {
        let mut vpn = range.start.0;
        let end = range.end().0;
        while vpn < end {
            let chunk = vpn >> LEAF_BITS;
            let run_end = end.min((chunk + 1) << LEAF_BITS);
            match self.slot_of(chunk) {
                Some(slot) => {
                    let leaf = &self.leaves[slot as usize];
                    for v in vpn..run_end {
                        f(Vpn(v), leaf.slots[(v & LEAF_MASK) as usize].as_ref());
                    }
                }
                None => {
                    for v in vpn..run_end {
                        f(Vpn(v), None);
                    }
                }
            }
            vpn = run_end;
        }
    }

    // ------------------------------------------------------------------
    // Huge (2 MiB) leaf entries.
    // ------------------------------------------------------------------

    /// The base VPN of the 2 MiB chunk containing `vpn`.
    #[inline]
    #[must_use]
    pub fn chunk_base(vpn: Vpn) -> Vpn {
        Vpn(vpn.0 & !LEAF_MASK)
    }

    /// Number of 4 KiB entries present in `vpn`'s chunk (0–[`LEAF_LEN`]).
    #[must_use]
    pub fn chunk_population(&self, vpn: Vpn) -> usize {
        self.slot_of(vpn.0 >> LEAF_BITS)
            .map_or(0, |s| self.leaves[s as usize].used as usize)
    }

    /// The huge entry covering `vpn`, if its chunk is huge-mapped.
    #[inline]
    #[must_use]
    pub fn huge(&self, vpn: Vpn) -> Option<&T> {
        self.huge.get(&(vpn.0 >> LEAF_BITS))
    }

    /// `true` when `vpn`'s chunk holds a huge entry.
    #[inline]
    #[must_use]
    pub fn is_huge(&self, vpn: Vpn) -> bool {
        self.huge.contains_key(&(vpn.0 >> LEAF_BITS))
    }

    /// Number of huge entries present.
    #[must_use]
    pub fn huge_len(&self) -> usize {
        self.huge.len()
    }

    /// Installs a huge entry covering `base`'s chunk, returning the
    /// previous one if any.
    ///
    /// # Panics
    ///
    /// Panics when `base` is not 2 MiB-aligned.
    pub fn insert_huge(&mut self, base: Vpn, value: T) -> Option<T> {
        assert_eq!(base.0 & LEAF_MASK, 0, "huge entry base must be aligned");
        self.huge.insert(base.0 >> LEAF_BITS, value)
    }

    /// Removes and returns the huge entry covering `vpn`, if any.
    pub fn remove_huge(&mut self, vpn: Vpn) -> Option<T> {
        self.huge.remove(&(vpn.0 >> LEAF_BITS))
    }

    /// Drains every 4 KiB entry of `vpn`'s chunk, returning them in
    /// ascending VPN order (the promotion fold's input).
    pub fn take_chunk(&mut self, vpn: Vpn) -> Vec<(Vpn, T)> {
        let chunk = vpn.0 >> LEAF_BITS;
        let Some(slot) = self.slot_of(chunk) else {
            return Vec::new();
        };
        let leaf = &mut self.leaves[slot as usize];
        let mut out = Vec::with_capacity(leaf.used as usize);
        for (i, e) in leaf.slots.iter_mut().enumerate() {
            if let Some(v) = e.take() {
                out.push((Vpn((chunk << LEAF_BITS) | i as u64), v));
            }
        }
        self.len -= out.len();
        leaf.used = 0;
        self.clear_dir(chunk);
        self.free.push(slot);
        out
    }

    /// Iterates the huge entries in ascending base-VPN order.
    pub fn iter_huge(&self) -> impl Iterator<Item = (Vpn, &T)> + '_ {
        self.huge.iter().map(|(&c, v)| (Vpn(c << LEAF_BITS), v))
    }

    /// Iterates all entries in ascending VPN order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &T)> + '_ {
        let mut chunks: Vec<(u64, u32)> = self
            .direct
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0)
            .map(|(c, &s)| (c as u64, s - 1))
            .collect();
        let mut outliers: Vec<(u64, u32)> = self.sparse.iter().map(|(&c, &s)| (c, s)).collect();
        outliers.sort_unstable();
        chunks.extend(outliers);
        chunks.into_iter().flat_map(move |(chunk, slot)| {
            self.leaves[slot as usize]
                .slots
                .iter()
                .enumerate()
                .filter_map(move |(i, t)| {
                    t.as_ref()
                        .map(|v| (Vpn((chunk << LEAF_BITS) | i as u64), v))
                })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PageMap<u64> = PageMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(Vpn(5), 50), None);
        assert_eq!(m.insert(Vpn(5), 51), Some(50));
        assert_eq!(m.get(Vpn(5)), Some(&51));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(Vpn(5)), Some(51));
        assert_eq!(m.remove(Vpn(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn sparse_outliers_use_fallback() {
        let mut m: PageMap<u64> = PageMap::new();
        let far = Vpn(1 << 40); // chunk far beyond DIRECT_CHUNKS
        m.insert(far, 1);
        m.insert(Vpn(3), 2);
        assert_eq!(m.get(far), Some(&1));
        assert_eq!(m.get(Vpn(3)), Some(&2));
        assert_eq!(m.len(), 2);
        // Iteration stays ascending across the direct/sparse boundary.
        let keys: Vec<u64> = m.iter().map(|(v, _)| v.0).collect();
        assert_eq!(keys, vec![3, 1 << 40]);
        assert_eq!(m.remove(far), Some(1));
        assert!(!m.contains(far));
    }

    #[test]
    fn leaves_recycle_when_emptied() {
        let mut m: PageMap<u64> = PageMap::new();
        for i in 0..LEAF_LEN as u64 {
            m.insert(Vpn(i), i);
        }
        for i in 0..LEAF_LEN as u64 {
            m.remove(Vpn(i));
        }
        let slabs_before = m.leaves.len();
        // A fresh chunk elsewhere must reuse the recycled leaf.
        m.insert(Vpn(10_000), 1);
        assert_eq!(m.leaves.len(), slabs_before, "leaf slab reused");
        assert_eq!(m.get(Vpn(10_000)), Some(&1));
    }

    #[test]
    fn iteration_is_vpn_sorted() {
        let mut m: PageMap<u64> = PageMap::new();
        for &v in &[900, 3, 512, 511, 4096, 0x4000_0000] {
            m.insert(Vpn(v), v);
        }
        let keys: Vec<u64> = m.iter().map(|(v, _)| v.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn scan_range_crosses_leaves_and_holes() {
        let mut m: PageMap<u64> = PageMap::new();
        m.insert(Vpn(510), 510);
        m.insert(Vpn(513), 513);
        let mut seen = Vec::new();
        m.scan_range(PageRange::new(Vpn(509), 6), |vpn, e| {
            seen.push((vpn.0, e.copied()));
        });
        assert_eq!(
            seen,
            vec![
                (509, None),
                (510, Some(510)),
                (511, None),
                (512, None),
                (513, Some(513)),
                (514, None),
            ]
        );
        // A scan over an entirely absent chunk reports every page absent.
        let mut holes = 0;
        m.scan_range(PageRange::new(Vpn(5000), 700), |_, e| {
            assert!(e.is_none());
            holes += 1;
        });
        assert_eq!(holes, 700);
    }

    #[test]
    fn huge_entries_fold_and_split() {
        let mut m: PageMap<u64> = PageMap::new();
        for i in 0..LEAF_LEN as u64 {
            m.insert(Vpn(512 + i), 1000 + i);
        }
        assert_eq!(m.chunk_population(Vpn(700)), LEAF_LEN);
        let drained = m.take_chunk(Vpn(700));
        assert_eq!(drained.len(), LEAF_LEN);
        assert_eq!(drained[0], (Vpn(512), 1000));
        assert!(m.is_empty());
        assert_eq!(m.insert_huge(Vpn(512), 42), None);
        assert!(m.is_huge(Vpn(900)));
        assert!(!m.is_huge(Vpn(1024)));
        assert_eq!(m.huge(Vpn(700)), Some(&42));
        assert_eq!(m.huge_len(), 1);
        assert_eq!(PageMap::<u64>::chunk_base(Vpn(700)), Vpn(512));
        // Split: remove the huge entry; 4 KiB entries come back in.
        assert_eq!(m.remove_huge(Vpn(600)), Some(42));
        assert!(!m.is_huge(Vpn(600)));
        assert_eq!(m.huge_len(), 0);
    }

    #[test]
    #[should_panic(expected = "huge entry base must be aligned")]
    fn unaligned_huge_base_panics() {
        let mut m: PageMap<u64> = PageMap::new();
        m.insert_huge(Vpn(513), 1);
    }

    #[test]
    fn get_mut_or_insert_with_fills_once() {
        let mut m: PageMap<u64> = PageMap::new();
        *m.get_mut_or_insert_with(Vpn(7), || 1) += 10;
        *m.get_mut_or_insert_with(Vpn(7), || 99) += 10;
        assert_eq!(m.get(Vpn(7)), Some(&21));
        assert_eq!(m.len(), 1);
    }
}
