//! # memsim — simulated host virtual-memory subsystem
//!
//! Models the OS side of the NPF paper's Figure 2: physical frames,
//! per-IOuser address spaces with demand paging and delayed allocation,
//! a swap device, LRU reclaim with invalidation effects (the MMU-notifier
//! path the NPF driver hooks), a page cache shared with mapped memory,
//! cgroup resident limits, and mlock/`RLIMIT_MEMLOCK` pinning.
//!
//! The manager is *sans-IO*: every operation returns the simulated time
//! it cost plus any [`manager::Invalidation`] effects; the testbed event
//! loop decides when those costs elapse.
//!
//! # Examples
//!
//! ```
//! use memsim::manager::{MemConfig, MemoryManager};
//! use memsim::space::Backing;
//! use simcore::units::ByteSize;
//!
//! let mut mm = MemoryManager::new(MemConfig::default());
//! let space = mm.create_space();
//! let range = mm.mmap(space, ByteSize::mib(1), Backing::Anonymous)?;
//! // First touch demand-allocates the page: a minor fault with a cost.
//! let access = mm.touch(space, range.start, true)?;
//! assert!(access.fault.is_some());
//! # Ok::<(), memsim::manager::MemError>(())
//! ```

pub mod dense;
pub mod frame;
pub mod lru;
pub mod manager;
pub mod pagecache;
pub mod space;
pub mod swap;
pub mod types;

pub use manager::{
    Access, CgroupId, FaultKind, FaultResolution, Invalidation, MemConfig, MemError, MemoryManager,
    PinOutcome,
};
pub use space::{AddressSpace, Backing, PageState, Pte, SpaceError, Vma};
pub use swap::{DiskConfig, SwapDevice};
pub use types::{FileId, FrameId, PageRange, SpaceId, VirtAddr, Vpn, PAGE_SIZE};
