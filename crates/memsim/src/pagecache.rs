//! Page cache over simulated files.
//!
//! Caches `(file, page)` blocks in physical frames. The storage workload
//! (Figure 8) is driven by page-cache economics: the more frames the cache
//! may use, the fewer reads reach the disk.

use std::collections::HashMap;

use crate::types::{FileId, FrameId, PAGE_SIZE};

use simcore::time::SimDuration;

use crate::swap::DiskConfig;

/// Key of one cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Backing file.
    pub file: FileId,
    /// Page index within the file.
    pub page: u64,
}

/// Outcome of a cached read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedRead {
    /// `true` when the page was already cached.
    pub hit: bool,
    /// Time charged for the access (disk time on a miss, negligible on a
    /// hit — the CPU copy is charged by the caller).
    pub cost: SimDuration,
}

/// An LRU page cache backed by the shared frame pool.
///
/// The cache does not own a `FrameAllocator`; the
/// [`crate::manager::MemoryManager`] hands frames in and reclaims them,
/// so file cache and anonymous memory compete for the same physical
/// memory, as in Linux.
#[derive(Debug, Default)]
pub struct PageCache {
    map: HashMap<CacheKey, FrameId>,
    lru: crate::lru::LruTracker,
    // LruTracker keys on (SpaceId, Vpn); the cache reuses it by packing
    // the file id into the space id and the page into the vpn.
    hits: u64,
    misses: u64,
}

fn lru_key(key: CacheKey) -> (crate::types::SpaceId, crate::types::Vpn) {
    (
        crate::types::SpaceId(key.file.0),
        crate::types::Vpn(key.page),
    )
}

impl PageCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Number of cached pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits since creation.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; zero before any access.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up a page, promoting it in LRU order on a hit. `tick` is
    /// the shared recency clock value of this access.
    pub fn lookup(&mut self, key: CacheKey, tick: u64) -> Option<FrameId> {
        let frame = self.map.get(&key).copied();
        if let Some(_f) = frame {
            let (s, v) = lru_key(key);
            self.lru.touch_tick(s, v, tick);
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        frame
    }

    /// Checks residency without affecting statistics or LRU order.
    #[must_use]
    pub fn contains(&self, key: CacheKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts a page read from disk into `frame` at recency `tick`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already cached (the manager must look up
    /// before inserting).
    pub fn insert(&mut self, key: CacheKey, frame: FrameId, tick: u64) {
        let prev = self.map.insert(key, frame);
        assert!(prev.is_none(), "page already cached");
        let (s, v) = lru_key(key);
        self.lru.touch_tick(s, v, tick);
    }

    /// The recency tick of the oldest cached page, if any.
    #[must_use]
    pub fn oldest_tick(&self) -> Option<u64> {
        self.lru.oldest_tick()
    }

    /// Evicts the least-recently-used page, returning its frame.
    pub fn evict_oldest(&mut self) -> Option<FrameId> {
        let (s, v) = self.lru.pop_oldest()?;
        let key = CacheKey {
            file: FileId(s.0),
            page: v.0,
        };
        Some(self.map.remove(&key).expect("lru/map out of sync"))
    }

    /// Removes a specific page, returning its frame if it was cached.
    pub fn remove(&mut self, key: CacheKey) -> Option<FrameId> {
        let frame = self.map.remove(&key)?;
        let (s, v) = lru_key(key);
        self.lru.remove(s, v);
        Some(frame)
    }

    /// The disk cost of filling one page on a miss.
    #[must_use]
    pub fn miss_cost(disk: &DiskConfig) -> SimDuration {
        disk.io_time(PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(page: u64) -> CacheKey {
        CacheKey {
            file: FileId(1),
            page,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = PageCache::new();
        assert_eq!(c.lookup(key(5), 1), None);
        c.insert(key(5), FrameId(9), 2);
        assert_eq!(c.lookup(key(5), 3), Some(FrameId(9)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_first() {
        let mut c = PageCache::new();
        c.insert(key(1), FrameId(1), 1);
        c.insert(key(2), FrameId(2), 2);
        c.lookup(key(1), 3); // promote 1
        assert_eq!(c.oldest_tick(), Some(2));
        assert_eq!(c.evict_oldest(), Some(FrameId(2)));
        assert_eq!(c.evict_oldest(), Some(FrameId(1)));
        assert_eq!(c.evict_oldest(), None);
    }

    #[test]
    fn files_do_not_collide() {
        let mut c = PageCache::new();
        c.insert(
            CacheKey {
                file: FileId(1),
                page: 7,
            },
            FrameId(1),
            1,
        );
        c.insert(
            CacheKey {
                file: FileId(2),
                page: 7,
            },
            FrameId(2),
            2,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.remove(CacheKey {
                file: FileId(2),
                page: 7
            }),
            Some(FrameId(2))
        );
        assert_eq!(c.len(), 1);
    }
}
