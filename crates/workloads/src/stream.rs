//! Stream (maximum-bandwidth) benchmarks for the what-if analysis
//! (§6.4, Figure 10).
//!
//! The sender transmits fixed-size messages continuously; the receiver
//! counts delivered bytes. Synthetic rNPFs are injected by a
//! [`SyntheticFaults`] generator at a configurable per-packet
//! frequency; both benchmarks "pre-fault the receive ring at startup to
//! eliminate the cold ring problem", which maps to starting the
//! generator only after warm-up.

use simcore::rng::SimRng;
use simcore::time::SimTime;

/// Configuration of a stream run.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Message size the sender loops on (the paper uses 64 KB).
    pub message_bytes: u64,
    /// Synthetic rNPF probability per received packet (the paper sweeps
    /// 2⁻¹⁰ … 2⁻³⁰).
    pub fault_frequency: f64,
    /// Whether injected faults are major (disk) or minor.
    pub major_faults: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            message_bytes: 64 * 1024,
            fault_frequency: 0.0,
            major_faults: false,
        }
    }
}

/// Per-packet synthetic fault generator.
#[derive(Debug)]
pub struct SyntheticFaults {
    frequency: f64,
    rng: SimRng,
    injected: u64,
    armed: bool,
}

impl SyntheticFaults {
    /// Creates a generator injecting with probability `frequency` per
    /// packet. Starts disarmed (cold-ring warm-up); call
    /// [`SyntheticFaults::arm`] once the ring is warm.
    #[must_use]
    pub fn new(frequency: f64, rng: SimRng) -> Self {
        SyntheticFaults {
            frequency,
            rng,
            injected: 0,
            armed: false,
        }
    }

    /// Starts injecting.
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// `true` when injecting.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decides whether this packet hits a synthetic rNPF.
    pub fn should_fault(&mut self) -> bool {
        if !self.armed || self.frequency <= 0.0 {
            return false;
        }
        let hit = self.rng.chance(self.frequency);
        if hit {
            self.injected += 1;
        }
        hit
    }
}

/// Receiver-side byte counter and goodput calculator.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamReceiver {
    bytes: u64,
    messages: u64,
    started: Option<SimTime>,
    last: Option<SimTime>,
}

impl StreamReceiver {
    /// Creates an idle receiver.
    #[must_use]
    pub fn new() -> Self {
        StreamReceiver::default()
    }

    /// Records delivery of `bytes` at `now`.
    pub fn deliver(&mut self, now: SimTime, bytes: u64) {
        if self.started.is_none() {
            self.started = Some(now);
        }
        self.last = Some(now);
        self.bytes += bytes;
        self.messages += 1;
    }

    /// Total bytes delivered.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Messages delivered.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Goodput in Gb/s between the first and last delivery.
    #[must_use]
    pub fn goodput_gbps(&self) -> f64 {
        match (self.started, self.last) {
            (Some(a), Some(b)) if b > a => {
                (self.bytes as f64 * 8.0) / b.saturating_since(a).as_secs_f64() / 1e9
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn disarmed_generator_never_faults() {
        let mut g = SyntheticFaults::new(1.0, SimRng::new(1));
        for _ in 0..100 {
            assert!(!g.should_fault());
        }
        g.arm();
        assert!(g.should_fault(), "p=1 always faults once armed");
        assert_eq!(g.injected(), 1);
    }

    #[test]
    fn frequency_is_respected() {
        let mut g = SyntheticFaults::new(1.0 / 64.0, SimRng::new(2));
        g.arm();
        let n = 64_000;
        let hits = (0..n).filter(|_| g.should_fault()).count();
        assert!(
            (700..1300).contains(&hits),
            "expected ~1000 faults, got {hits}"
        );
    }

    #[test]
    fn goodput_computation() {
        let mut r = StreamReceiver::new();
        let t0 = SimTime::from_secs(1);
        r.deliver(t0, 0); // start marker
        r.deliver(t0 + SimDuration::from_secs(1), 1_250_000_000);
        // 1.25 GB in 1 s = 10 Gb/s.
        assert!((r.goodput_gbps() - 10.0).abs() < 1e-9);
        assert_eq!(r.messages(), 2);
    }

    #[test]
    fn empty_receiver_reports_zero() {
        let r = StreamReceiver::new();
        assert_eq!(r.goodput_gbps(), 0.0);
        assert_eq!(r.bytes(), 0);
    }
}
