//! A memcached-like key-value cache and its memaslap-like load
//! generator (§5's running example; §6.1's memory-utilization
//! experiments).
//!
//! The server is an LRU cache bounded by `max_bytes`, exactly like
//! memcached: when the working set exceeds the configured capacity,
//! hit rate drops proportionally. Item values live at deterministic
//! addresses in the server's address space, so GET/SET translate into
//! page touches that the testbed charges against the host memory
//! subsystem (faults, swapping, cgroup pressure — the Figure 7
//! dynamics).

use simcore::fxhash::FxHashMap;

use memsim::types::VirtAddr;
use simcore::rng::SimRng;
use simcore::time::SimDuration;
use simcore::units::ByteSize;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemcachedConfig {
    /// Cache capacity (`-m` in memcached).
    pub max_bytes: ByteSize,
    /// Value size of every item (memaslap uses fixed-size items).
    pub value_size: u64,
    /// Base address of the item slab in the server's address space.
    pub slab_base: VirtAddr,
    /// CPU time to parse + hash + respond to one request, excluding
    /// memory-touch costs.
    pub cpu_per_op: SimDuration,
}

impl Default for MemcachedConfig {
    fn default() -> Self {
        MemcachedConfig {
            max_bytes: ByteSize::gib(1),
            value_size: 1024,
            slab_base: VirtAddr(0x1_0000_0000),
            // Calibrated: ~8 us of parse+hash+respond per operation
            // saturates four 3.1 GHz cores near the paper's aggregate
            // throughput (Table 5).
            cpu_per_op: SimDuration::from_micros(8),
        }
    }
}

/// A request the client sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get {
        /// Key.
        key: u64,
    },
    /// Write a key.
    Set {
        /// Key.
        key: u64,
    },
}

/// Outcome of processing one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvOutcome {
    /// `true` for a GET that found the item.
    pub hit: bool,
    /// Memory range the server touched (value bytes), if any.
    pub touch: Option<(VirtAddr, u64, bool)>, // (addr, len, write)
    /// CPU cost excluding memory touches.
    pub cpu: SimDuration,
    /// Response payload size in bytes.
    pub response_bytes: u64,
}

/// The server.
#[derive(Debug)]
pub struct Memcached {
    config: MemcachedConfig,
    /// key -> (slot, lru tick)
    items: FxHashMap<u64, (u64, u64)>,
    /// slot -> key (for eviction bookkeeping). Slot ids are dense
    /// (0..max_items), so this is a flat table, not a map.
    slots: Vec<u64>,
    free_slots: Vec<u64>,
    next_slot: u64,
    max_items: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Memcached {
    /// Creates a server with `config`.
    #[must_use]
    pub fn new(config: MemcachedConfig) -> Self {
        let max_items = (config.max_bytes.bytes() / config.value_size).max(1);
        Memcached {
            config,
            items: FxHashMap::default(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            max_items,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemcachedConfig {
        &self.config
    }

    /// Pre-sizes the item table for an expected number of distinct keys
    /// (capped at capacity). A bulk preload that skips this pays for a
    /// cascade of rehashes as the table doubles its way up.
    pub fn reserve_keys(&mut self, keys: u64) {
        let n = keys.min(self.max_items);
        self.items.reserve(usize::try_from(n).unwrap_or(usize::MAX));
        self.slots.reserve(usize::try_from(n).unwrap_or(usize::MAX));
    }

    /// Items currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// GET hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// GET misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit ratio in `[0, 1]`.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Size of the virtual slab region the server needs mapped
    /// (`max_items * value_size`, page aligned).
    #[must_use]
    pub fn slab_bytes(&self) -> ByteSize {
        ByteSize::bytes_exact(self.max_items * self.config.value_size)
    }

    fn slot_addr(&self, slot: u64) -> VirtAddr {
        VirtAddr(self.config.slab_base.0 + slot * self.config.value_size)
    }

    /// Processes one operation, returning what to touch and charge.
    pub fn process(&mut self, op: KvOp) -> KvOutcome {
        self.tick += 1;
        match op {
            KvOp::Get { key } => match self.items.get_mut(&key) {
                Some((slot, tick)) => {
                    *tick = self.tick;
                    let slot = *slot;
                    let addr = VirtAddr(self.config.slab_base.0 + slot * self.config.value_size);
                    self.hits += 1;
                    KvOutcome {
                        hit: true,
                        touch: Some((addr, self.config.value_size, false)),
                        cpu: self.config.cpu_per_op,
                        response_bytes: self.config.value_size + 48,
                    }
                }
                None => {
                    self.misses += 1;
                    KvOutcome {
                        hit: false,
                        touch: None,
                        cpu: self.config.cpu_per_op,
                        response_bytes: 32,
                    }
                }
            },
            KvOp::Set { key } => {
                let slot = if let Some(entry) = self.items.get_mut(&key) {
                    entry.1 = self.tick;
                    entry.0
                } else {
                    let slot = if let Some(s) = self.free_slots.pop() {
                        s
                    } else if self.next_slot < self.max_items {
                        let s = self.next_slot;
                        self.next_slot += 1;
                        s
                    } else {
                        // LRU eviction. Ticks are unique per operation,
                        // so the minimum is unambiguous regardless of
                        // map iteration order.
                        let (&victim_key, &(victim_slot, _)) = self
                            .items
                            .iter()
                            .min_by_key(|(_, &(_, t))| t)
                            .expect("cache full implies nonempty");
                        self.items.remove(&victim_key);
                        self.evictions += 1;
                        victim_slot
                    };
                    self.items.insert(key, (slot, self.tick));
                    let idx = usize::try_from(slot).expect("slot fits usize");
                    if idx >= self.slots.len() {
                        self.slots.resize(idx + 1, u64::MAX);
                    }
                    self.slots[idx] = key;
                    slot
                };
                KvOutcome {
                    hit: false,
                    touch: Some((self.slot_addr(slot), self.config.value_size, true)),
                    cpu: self.config.cpu_per_op,
                    response_bytes: 16,
                }
            }
        }
    }
}

/// Key popularity of the generated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely (memaslap's default; what the paper's
    /// experiments use).
    Uniform,
    /// Zipf-like skew with the given exponent (realistic cache traffic;
    /// useful for sensitivity studies).
    Zipf(f64),
}

/// memaslap-like closed-loop load generator: 90 % GET / 10 % SET over a
/// sliding key window (the "working set").
#[derive(Debug)]
pub struct Memaslap {
    /// Number of distinct keys in the working set.
    working_set_keys: u64,
    /// First key of the window (shifting it changes the working set,
    /// Figure 7).
    window_start: u64,
    /// Probability of GET (the rest are SETs).
    get_fraction: f64,
    value_size: u64,
    distribution: KeyDistribution,
    rng: SimRng,
    issued: u64,
}

impl Memaslap {
    /// Creates a generator over `working_set_keys` keys with the
    /// canonical 90/10 GET/SET mix and uniform key popularity.
    #[must_use]
    pub fn new(working_set_keys: u64, value_size: u64, rng: SimRng) -> Self {
        Memaslap {
            working_set_keys: working_set_keys.max(1),
            window_start: 0,
            get_fraction: 0.9,
            value_size,
            distribution: KeyDistribution::Uniform,
            rng,
            issued: 0,
        }
    }

    /// Switches the key popularity model.
    pub fn set_distribution(&mut self, distribution: KeyDistribution) {
        self.distribution = distribution;
    }

    /// Operations issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Current working-set size in keys.
    #[must_use]
    pub fn working_set_keys(&self) -> u64 {
        self.working_set_keys
    }

    /// Resizes the working set (Figure 7's 100 MB↔900 MB shift). The
    /// window stays anchored: growing keeps the old items hot, shrinking
    /// keeps a hot subset — "the set increases by a factor of nine".
    pub fn resize_working_set(&mut self, keys: u64) {
        self.working_set_keys = keys.max(1);
    }

    /// Draws the next operation and its request size in bytes.
    pub fn next_op(&mut self) -> (KvOp, u64) {
        self.issued += 1;
        let offset = match self.distribution {
            KeyDistribution::Uniform => self.rng.below(self.working_set_keys),
            KeyDistribution::Zipf(s) => self.rng.zipf(self.working_set_keys, s),
        };
        let key = self.window_start + offset;
        if self.rng.unit() < self.get_fraction {
            (KvOp::Get { key }, 40)
        } else {
            (KvOp::Set { key }, self.value_size + 40)
        }
    }
}

/// Tenant popularity for multi-tenant scale-out: how client load is
/// split across memcached instances sharing one NIC.
///
/// A Zipf exponent of 0 (or [`TenantPopularity::uniform`]) spreads load
/// evenly; larger exponents concentrate it on low-numbered tenants the
/// way real multi-tenant hosts see a few hot customers and a long cold
/// tail.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPopularity {
    /// Unnormalized per-tenant weights, indexed by tenant.
    weights: Vec<f64>,
}

impl TenantPopularity {
    /// Every tenant equally popular.
    #[must_use]
    pub fn uniform(tenants: u32) -> Self {
        TenantPopularity {
            weights: vec![1.0; tenants.max(1) as usize],
        }
    }

    /// Zipf popularity: tenant `i` gets weight `1 / (i + 1)^s`.
    #[must_use]
    pub fn zipf(tenants: u32, s: f64) -> Self {
        let weights = (0..tenants.max(1))
            .map(|i| 1.0 / f64::from(i + 1).powf(s))
            .collect();
        TenantPopularity { weights }
    }

    /// Number of tenants.
    #[must_use]
    pub fn tenants(&self) -> u32 {
        u32::try_from(self.weights.len()).unwrap_or(u32::MAX)
    }

    /// Tenant `i`'s share of the total load in `[0, 1]`.
    #[must_use]
    pub fn share(&self, i: u32) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights.get(i as usize).copied().unwrap_or(0.0) / total
    }

    /// Splits `total` connections across tenants proportionally to
    /// their weights, deterministically (largest-remainder rounding,
    /// ties to the lower tenant id). When `total >= tenants`, every
    /// tenant keeps at least one connection so nobody is starved out of
    /// the closed loop entirely.
    #[must_use]
    pub fn allocate(&self, total: u32) -> Vec<u32> {
        let n = self.weights.len();
        let mut conns = vec![0u32; n];
        if total == 0 {
            return conns;
        }
        let floor = u32::from(total as usize >= n);
        let mut remaining = total - floor * u32::try_from(n).unwrap_or(total);
        conns.fill(floor);
        let weight_sum: f64 = self.weights.iter().sum();
        // Ideal fractional shares of the remainder, floored; then hand
        // out the leftover one-by-one to the largest fractional parts.
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut assigned = 0u32;
        let pool = f64::from(remaining);
        for (i, w) in self.weights.iter().enumerate() {
            let ideal = pool * w / weight_sum;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let whole = ideal.floor() as u32;
            conns[i] += whole;
            assigned += whole;
            fracs.push((i, ideal - ideal.floor()));
        }
        remaining -= assigned;
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (i, _) in fracs.into_iter().take(remaining as usize) {
            conns[i] += 1;
            remaining -= 1;
        }
        // Floating-point slack can leave a connection unassigned; give
        // any leftovers to the most popular tenants.
        let mut i = 0;
        while remaining > 0 {
            conns[i % n] += 1;
            remaining -= 1;
            i += 1;
        }
        conns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(max_items: u64) -> Memcached {
        Memcached::new(MemcachedConfig {
            max_bytes: ByteSize::bytes_exact(max_items * 1024),
            value_size: 1024,
            ..MemcachedConfig::default()
        })
    }

    #[test]
    fn get_miss_then_set_then_hit() {
        let mut s = server(10);
        let miss = s.process(KvOp::Get { key: 5 });
        assert!(!miss.hit);
        assert!(miss.touch.is_none());
        let set = s.process(KvOp::Set { key: 5 });
        let (_, len, write) = set.touch.expect("set touches the value");
        assert_eq!(len, 1024);
        assert!(write);
        let hit = s.process(KvOp::Get { key: 5 });
        assert!(hit.hit);
        let (_, _, write) = hit.touch.expect("hit touches the value");
        assert!(!write);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let mut s = server(2);
        s.process(KvOp::Set { key: 1 });
        s.process(KvOp::Set { key: 2 });
        s.process(KvOp::Get { key: 1 }); // promote 1
        s.process(KvOp::Set { key: 3 }); // evicts 2
        assert_eq!(s.evictions(), 1);
        assert!(s.process(KvOp::Get { key: 1 }).hit);
        assert!(!s.process(KvOp::Get { key: 2 }).hit);
        assert!(s.process(KvOp::Get { key: 3 }).hit);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn items_reuse_slot_addresses() {
        let mut s = server(4);
        let a = s.process(KvOp::Set { key: 1 }).touch.expect("touch").0;
        let b = s.process(KvOp::Set { key: 1 }).touch.expect("touch").0;
        assert_eq!(a, b, "same key keeps its slot");
        let c = s.process(KvOp::Set { key: 2 }).touch.expect("touch").0;
        assert_ne!(a, c);
    }

    #[test]
    fn hit_ratio_tracks_capacity_pressure() {
        // Working set double the capacity: steady-state hit rate falls
        // well below 1.
        let mut s = server(100);
        let mut gen = Memaslap::new(200, 1024, SimRng::new(5));
        for _ in 0..20_000 {
            let (op, _) = gen.next_op();
            s.process(op);
        }
        assert!(
            s.hit_ratio() < 0.75,
            "over-capacity working set must miss: {}",
            s.hit_ratio()
        );
        assert!(s.evictions() > 0);
    }

    #[test]
    fn full_capacity_working_set_hits() {
        let mut s = server(256);
        let mut gen = Memaslap::new(200, 1024, SimRng::new(5));
        for _ in 0..20_000 {
            let (op, _) = gen.next_op();
            s.process(op);
        }
        assert!(
            s.hit_ratio() > 0.85,
            "in-capacity working set should mostly hit: {}",
            s.hit_ratio()
        );
    }

    #[test]
    fn resize_keeps_window_anchored() {
        let mut gen = Memaslap::new(100, 1024, SimRng::new(6));
        let (KvOp::Get { key } | KvOp::Set { key }, _) = gen.next_op();
        assert!(key < 100);
        gen.resize_working_set(900);
        assert_eq!(gen.working_set_keys(), 900);
        let mut saw_old = false;
        for _ in 0..200 {
            let (KvOp::Get { key } | KvOp::Set { key }, _) = gen.next_op();
            assert!(key < 900, "anchored window: {key}");
            saw_old |= key < 100;
        }
        assert!(saw_old, "old keys stay in the set");
    }

    #[test]
    fn request_sizes_differ_by_op() {
        let mut gen = Memaslap::new(10, 2048, SimRng::new(7));
        let mut get_size = 0;
        let mut set_size = 0;
        for _ in 0..200 {
            let (op, bytes) = gen.next_op();
            match op {
                KvOp::Get { .. } => get_size = bytes,
                KvOp::Set { .. } => set_size = bytes,
            }
        }
        assert_eq!(get_size, 40);
        assert_eq!(set_size, 2088);
    }
}

#[cfg(test)]
mod distribution_tests {
    use super::*;

    #[test]
    fn zipf_load_concentrates_on_hot_keys() {
        let mut s = Memcached::new(MemcachedConfig {
            max_bytes: ByteSize::bytes_exact(100 * 1024),
            value_size: 1024,
            ..MemcachedConfig::default()
        });
        // Working set 10x the capacity: uniform traffic would miss a lot;
        // Zipf traffic concentrates on the cached head.
        let mut uniform = Memaslap::new(1000, 1024, SimRng::new(1));
        for _ in 0..20_000 {
            let (op, _) = uniform.next_op();
            s.process(op);
        }
        let uniform_hits = s.hit_ratio();

        let mut s2 = Memcached::new(MemcachedConfig {
            max_bytes: ByteSize::bytes_exact(100 * 1024),
            value_size: 1024,
            ..MemcachedConfig::default()
        });
        let mut zipf = Memaslap::new(1000, 1024, SimRng::new(1));
        zipf.set_distribution(KeyDistribution::Zipf(0.99));
        for _ in 0..20_000 {
            let (op, _) = zipf.next_op();
            s2.process(op);
        }
        assert!(
            s2.hit_ratio() > uniform_hits + 0.15,
            "zipf {:.2} vs uniform {:.2}",
            s2.hit_ratio(),
            uniform_hits
        );
    }
}

#[cfg(test)]
mod tenant_tests {
    use super::*;

    #[test]
    fn uniform_allocation_is_even() {
        let pop = TenantPopularity::uniform(8);
        let conns = pop.allocate(64);
        assert_eq!(conns, vec![8; 8]);
        assert_eq!(conns.iter().sum::<u32>(), 64);
    }

    #[test]
    fn zipf_allocation_is_skewed_but_complete() {
        let pop = TenantPopularity::zipf(16, 1.0);
        let conns = pop.allocate(160);
        assert_eq!(conns.iter().sum::<u32>(), 160, "every connection lands");
        assert!(conns[0] > conns[15] * 3, "head tenant dominates: {conns:?}");
        assert!(
            conns.iter().all(|&c| c >= 1),
            "no tenant starved: {conns:?}"
        );
        // Monotone non-increasing by construction.
        for w in conns.windows(2) {
            assert!(w[0] >= w[1], "monotone: {conns:?}");
        }
    }

    #[test]
    fn zipf_zero_matches_uniform() {
        let z = TenantPopularity::zipf(10, 0.0);
        let u = TenantPopularity::uniform(10);
        assert_eq!(z.allocate(100), u.allocate(100));
    }

    #[test]
    fn allocation_smaller_than_tenant_count() {
        let pop = TenantPopularity::zipf(8, 1.0);
        let conns = pop.allocate(3);
        assert_eq!(conns.iter().sum::<u32>(), 3);
    }

    #[test]
    fn shares_sum_to_one() {
        let pop = TenantPopularity::zipf(32, 0.9);
        let total: f64 = (0..32).map(|i| pop.share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }
}
