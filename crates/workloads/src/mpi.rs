//! MPI collective schedules (§6.2, Figure 9 / Table 6).
//!
//! Each collective is compiled into rounds of point-to-point transfers;
//! the testbed executes one round at a time over RC QPs (all transfers
//! of a round proceed in parallel, rounds synchronize — the standard
//! way MPI libraries schedule collectives).
//!
//! The IMB "off_cache" mode is modelled by rotating through a pool of
//! send/receive buffers so that each iteration touches different pages —
//! this is what forces pin-down caches to register many buffers and ODP
//! to fault on first touch.

/// One point-to-point transfer inside a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Synchronization round this transfer belongs to.
    pub round: u32,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Bytes moved.
    pub bytes: u64,
}

/// The collectives the paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// IMB `sendrecv`: a ring where every rank sends to its right
    /// neighbour and receives from its left, simultaneously.
    SendRecv,
    /// IMB `bcast`: binomial tree from rank 0.
    Bcast,
    /// IMB `alltoall`: every rank sends a distinct block to every other
    /// rank, in `n-1` balanced rounds.
    AllToAll,
    /// IMB `allreduce`: recursive doubling; each round exchanges the
    /// full vector and reduces on the CPU.
    AllReduce,
}

impl Collective {
    /// Human-readable name matching the IMB benchmark.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Collective::SendRecv => "sendrecv",
            Collective::Bcast => "bcast",
            Collective::AllToAll => "alltoall",
            Collective::AllReduce => "allreduce",
        }
    }

    /// `true` when the collective reduces on the CPU (forcing the data
    /// through the cache, which is why allreduce shows little benefit
    /// from zero copy — §6.2).
    #[must_use]
    pub fn reduces_on_cpu(self) -> bool {
        matches!(self, Collective::AllReduce)
    }

    /// Compiles the schedule for `ranks` ranks moving `bytes` per rank.
    ///
    /// # Panics
    ///
    /// Panics when `ranks < 2`.
    #[must_use]
    pub fn schedule(self, ranks: u32, bytes: u64) -> Vec<Transfer> {
        assert!(ranks >= 2, "collectives need at least two ranks");
        match self {
            Collective::SendRecv => (0..ranks)
                .map(|r| Transfer {
                    round: 0,
                    src: r,
                    dst: (r + 1) % ranks,
                    bytes,
                })
                .collect(),
            Collective::Bcast => {
                // Binomial tree: in round k, ranks < 2^k forward to
                // rank + 2^k.
                let mut out = Vec::new();
                let mut round = 0;
                let mut reach = 1;
                while reach < ranks {
                    for src in 0..reach.min(ranks) {
                        let dst = src + reach;
                        if dst < ranks {
                            out.push(Transfer {
                                round,
                                src,
                                dst,
                                bytes,
                            });
                        }
                    }
                    reach *= 2;
                    round += 1;
                }
                out
            }
            Collective::AllToAll => {
                // Balanced pairwise rounds: in round k, rank r exchanges
                // a block with rank r XOR k (power-of-two ranks) or the
                // rotation (r + k) % n otherwise.
                let mut out = Vec::new();
                let per_peer = bytes / u64::from(ranks.max(1));
                for k in 1..ranks {
                    for r in 0..ranks {
                        let dst = (r + k) % ranks;
                        out.push(Transfer {
                            round: k - 1,
                            src: r,
                            dst,
                            bytes: per_peer.max(1),
                        });
                    }
                }
                out
            }
            Collective::AllReduce => {
                // Recursive doubling over the next power of two; ranks
                // beyond it fold into partners first (simplified:
                // schedule only the power-of-two core when not exact).
                let mut out = Vec::new();
                let p = ranks.next_power_of_two().min(ranks);
                let core = if p == ranks { ranks } else { ranks / 2 * 2 };
                let mut stride = 1;
                let mut round = 0;
                while stride < core {
                    for r in 0..core {
                        let partner = r ^ stride;
                        if partner < core && r < partner {
                            // Both directions exchange simultaneously.
                            out.push(Transfer {
                                round,
                                src: r,
                                dst: partner,
                                bytes,
                            });
                            out.push(Transfer {
                                round,
                                src: partner,
                                dst: r,
                                bytes,
                            });
                        }
                    }
                    stride *= 2;
                    round += 1;
                }
                out
            }
        }
    }

    /// Number of synchronization rounds in the schedule.
    #[must_use]
    pub fn rounds(self, ranks: u32) -> u32 {
        self.schedule(ranks, 1)
            .iter()
            .map(|t| t.round + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Buffer rotation for IMB `off_cache` mode.
#[derive(Debug, Clone)]
pub struct BufferPool {
    /// Base of the pool in the rank's address space.
    pub base: u64,
    /// Size of one buffer (= message size, page aligned up).
    pub buffer_stride: u64,
    /// Number of buffers rotated through.
    pub buffers: u64,
    cursor: u64,
}

impl BufferPool {
    /// A pool of `buffers` buffers of `message_bytes` each.
    #[must_use]
    pub fn new(base: u64, message_bytes: u64, buffers: u64) -> Self {
        let stride = message_bytes.div_ceil(memsim::PAGE_SIZE) * memsim::PAGE_SIZE;
        BufferPool {
            base,
            buffer_stride: stride.max(memsim::PAGE_SIZE),
            buffers: buffers.max(1),
            cursor: 0,
        }
    }

    /// The next buffer address (rotating).
    pub fn next_buffer(&mut self) -> u64 {
        let addr = self.base + (self.cursor % self.buffers) * self.buffer_stride;
        self.cursor += 1;
        addr
    }

    /// Total pool footprint in bytes.
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.buffers * self.buffer_stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sendrecv_is_a_ring() {
        let s = Collective::SendRecv.schedule(4, 1000);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|t| t.dst == (t.src + 1) % 4));
        assert_eq!(Collective::SendRecv.rounds(4), 1);
    }

    #[test]
    fn bcast_tree_reaches_everyone_once() {
        let s = Collective::Bcast.schedule(8, 1000);
        // 7 transfers reach 7 non-root ranks.
        assert_eq!(s.len(), 7);
        let mut reached = [false; 8];
        reached[0] = true;
        let mut by_round = s.clone();
        by_round.sort_by_key(|t| t.round);
        for t in by_round {
            assert!(reached[t.src as usize], "src must already hold the data");
            assert!(!reached[t.dst as usize], "no duplicate delivery");
            reached[t.dst as usize] = true;
        }
        assert!(reached.iter().all(|&r| r));
        assert_eq!(Collective::Bcast.rounds(8), 3, "log2(8) rounds");
    }

    #[test]
    fn bcast_handles_non_power_of_two() {
        let s = Collective::Bcast.schedule(6, 1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn alltoall_exchanges_all_pairs() {
        let s = Collective::AllToAll.schedule(4, 4000);
        assert_eq!(s.len(), 12, "4 ranks x 3 peers");
        for t in &s {
            assert_ne!(t.src, t.dst);
            assert_eq!(t.bytes, 1000, "per-peer block");
        }
        assert_eq!(Collective::AllToAll.rounds(4), 3);
    }

    #[test]
    fn allreduce_is_symmetric_log_rounds() {
        let s = Collective::AllReduce.schedule(8, 1000);
        assert_eq!(Collective::AllReduce.rounds(8), 3);
        // Every rank sends exactly once per round.
        for round in 0..3 {
            let mut senders: Vec<u32> = s
                .iter()
                .filter(|t| t.round == round)
                .map(|t| t.src)
                .collect();
            senders.sort_unstable();
            assert_eq!(senders, (0..8).collect::<Vec<_>>());
        }
        assert!(Collective::AllReduce.reduces_on_cpu());
    }

    #[test]
    fn buffer_pool_rotates_and_wraps() {
        let mut p = BufferPool::new(0x1000_0000, 10_000, 4);
        let a = p.next_buffer();
        let b = p.next_buffer();
        assert_ne!(a, b);
        assert_eq!(b - a, 12288, "10 KB rounds up to 3 pages");
        p.next_buffer();
        p.next_buffer();
        assert_eq!(p.next_buffer(), a, "wraps after 4");
        assert_eq!(p.footprint(), 4 * 12288);
    }
}
