//! # workloads — the paper's evaluation applications
//!
//! Application-level state machines for every workload §6 evaluates:
//!
//! * [`memcached`] — the LRU key-value cache and its memaslap load
//!   generator (cold ring, overcommit, and dynamic working-set
//!   experiments: Figure 4, Table 5, Figure 7),
//! * [`storage`] — a tgt-like iSER target with per-transaction
//!   communication chunks and a fio-like random-read client
//!   (Figure 8),
//! * [`mpi`] — collective schedules (sendrecv/bcast/alltoall/allreduce)
//!   and IMB off-cache buffer rotation (Figure 9, Table 6),
//! * [`stream`] — netperf/ib_send_bw-style maximum-bandwidth streams
//!   with synthetic rNPF injection (Figure 10).
//!
//! Workloads are pure: they emit *plans* (which addresses to touch,
//! which transfers to make, what CPU to charge); the `testbed` crate
//! executes plans against hosts and the network.

pub mod memcached;
pub mod mpi;
pub mod storage;
pub mod stream;

pub use memcached::{KeyDistribution, KvOp, KvOutcome, Memaslap, Memcached, MemcachedConfig};
pub use mpi::{BufferPool, Collective, Transfer};
pub use storage::{FioClient, ReadPlan, StorageConfig, StorageTarget};
pub use stream::{StreamConfig, StreamReceiver, SyntheticFaults};
