//! The storage workload: a tgt-like iSER target and a fio-like random
//! read initiator (§6.1 "Storage", Figure 8).
//!
//! The target exposes one LUN backed by a simulated disk file. Reads go
//! through the host page cache; data travels to the initiator through
//! per-transaction *communication buffers*. tgt's quirk — it
//! "allocates a fixed size chunk (512 KB) for each transaction,
//! regardless of its actual size" — is modelled directly, because it is
//! what makes Figure 8(b) interesting: with 64 KB blocks most of each
//! chunk is never touched, so under ODP it is never backed by frames.

use memsim::types::{FileId, VirtAddr};
use simcore::rng::SimRng;
use simcore::time::SimDuration;
use simcore::units::ByteSize;

/// Target configuration.
#[derive(Debug, Clone, Copy)]
pub struct StorageConfig {
    /// The LUN's backing file.
    pub lun_file: FileId,
    /// LUN size.
    pub lun_size: ByteSize,
    /// Fixed per-transaction communication chunk (tgt uses 512 KB).
    pub chunk_size: u64,
    /// Total communication chunks in the global pool (tgt statically
    /// sizes this; 2048 x 512 KB = 1 GiB).
    pub total_chunks: u64,
    /// Base address of the communication-buffer pool in the target's
    /// address space.
    pub comm_base: VirtAddr,
    /// CPU cost per I/O transaction (SCSI processing).
    pub cpu_per_io: SimDuration,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            lun_file: FileId(1),
            lun_size: ByteSize::gib(4),
            chunk_size: 512 * 1024,
            total_chunks: 2048,
            comm_base: VirtAddr(0x2_0000_0000),
            cpu_per_io: SimDuration::from_micros(6),
        }
    }
}

/// One read transaction plan: what the target must do for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPlan {
    /// First LUN page to read.
    pub first_page: u64,
    /// Pages to read from the LUN (via the page cache).
    pub pages: u64,
    /// The communication buffer the payload is staged in. Only
    /// `touch_len` bytes of the `chunk_size` chunk are written.
    pub comm_buffer: VirtAddr,
    /// The pool chunk backing `comm_buffer`; return it with
    /// [`StorageTarget::release_chunk`] when the transfer completes.
    pub chunk: u64,
    /// Bytes actually staged (the request size).
    pub touch_len: u64,
    /// CPU cost of the transaction.
    pub cpu: SimDuration,
}

/// The target.
///
/// Chunks are allocated from a global LIFO free list, as an allocator
/// would: under a fixed queue depth only a small hot subset of the pool
/// is ever touched, which is what lets ODP leave most of the static
/// pool unbacked (Figure 8).
#[derive(Debug)]
pub struct StorageTarget {
    config: StorageConfig,
    free_chunks: Vec<u64>,
    ios: u64,
    peak_outstanding: u64,
}

impl StorageTarget {
    /// Creates a target serving `sessions` initiator sessions (sessions
    /// share the global pool).
    #[must_use]
    pub fn new(config: StorageConfig, sessions: u32) -> Self {
        let _ = sessions;
        // LIFO: chunk 0 on top.
        let free_chunks = (0..config.total_chunks).rev().collect();
        StorageTarget {
            config,
            free_chunks,
            ios: 0,
            peak_outstanding: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Transactions served.
    #[must_use]
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Most chunks simultaneously outstanding.
    #[must_use]
    pub fn peak_outstanding(&self) -> u64 {
        self.peak_outstanding
    }

    /// Total communication-pool bytes (what the pinned baseline must
    /// lock — tgt's static 1 GB allocation).
    #[must_use]
    pub fn comm_pool_bytes(&self) -> ByteSize {
        ByteSize::bytes_exact(self.config.chunk_size * self.config.total_chunks)
    }

    /// The base address of pool chunk `c`.
    fn chunk_addr(&self, chunk: u64) -> VirtAddr {
        VirtAddr(self.config.comm_base.0 + chunk * self.config.chunk_size)
    }

    /// Plans one read of `len` bytes at `offset` for `session`.
    ///
    /// # Panics
    ///
    /// Panics when the request exceeds the chunk size, falls outside
    /// the LUN, or the pool is exhausted (queue depth exceeded the
    /// pool — a configuration error).
    pub fn plan_read(&mut self, session: u32, offset: u64, len: u64) -> ReadPlan {
        let _ = session;
        assert!(len <= self.config.chunk_size, "request exceeds chunk");
        assert!(
            offset + len <= self.config.lun_size.bytes(),
            "read beyond LUN"
        );
        let chunk = self
            .free_chunks
            .pop()
            .expect("communication pool exhausted");
        self.ios += 1;
        let outstanding = self.config.total_chunks - self.free_chunks.len() as u64;
        self.peak_outstanding = self.peak_outstanding.max(outstanding);
        ReadPlan {
            first_page: offset / memsim::PAGE_SIZE,
            pages: len.div_ceil(memsim::PAGE_SIZE),
            comm_buffer: self.chunk_addr(chunk),
            chunk,
            touch_len: len,
            cpu: self.config.cpu_per_io,
        }
    }

    /// Returns a chunk to the pool once its transfer completed.
    pub fn release_chunk(&mut self, chunk: u64) {
        debug_assert!(chunk < self.config.total_chunks);
        self.free_chunks.push(chunk);
    }
}

/// fio-like random-read generator.
#[derive(Debug)]
pub struct FioClient {
    block_size: u64,
    lun_size: u64,
    rng: SimRng,
    issued: u64,
}

impl FioClient {
    /// Creates a generator issuing `block_size` random reads over a
    /// `lun_size` device.
    #[must_use]
    pub fn new(block_size: u64, lun_size: ByteSize, rng: SimRng) -> Self {
        FioClient {
            block_size,
            lun_size: lun_size.bytes(),
            rng,
            issued: 0,
        }
    }

    /// Requests issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The configured block size.
    #[must_use]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Draws the next `(offset, len)`, block-aligned.
    pub fn next_read(&mut self) -> (u64, u64) {
        self.issued += 1;
        let blocks = self.lun_size / self.block_size;
        let block = self.rng.below(blocks);
        (block * self.block_size, self.block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_reuses_the_hottest_chunk() {
        let mut t = StorageTarget::new(StorageConfig::default(), 1);
        let a = t.plan_read(0, 0, 512 * 1024);
        t.release_chunk(a.chunk);
        let b = t.plan_read(0, 512 * 1024, 512 * 1024);
        assert_eq!(a.comm_buffer, b.comm_buffer, "freed chunk reused first");
        assert_eq!(a.pages, 128);
    }

    #[test]
    fn queue_depth_bounds_touched_chunks() {
        let mut t = StorageTarget::new(StorageConfig::default(), 4);
        // Depth-3 pipeline over many requests touches exactly 3 chunks.
        let mut seen = std::collections::HashSet::new();
        let mut live = std::collections::VecDeque::new();
        for i in 0..100u64 {
            let p = t.plan_read(0, (i % 8) * 512 * 1024, 512 * 1024);
            seen.insert(p.chunk);
            live.push_back(p.chunk);
            if live.len() > 3 {
                t.release_chunk(live.pop_front().expect("live"));
            }
        }
        assert!(seen.len() <= 4, "LIFO keeps the hot set small: {seen:?}");
        assert_eq!(t.peak_outstanding(), 4);
    }

    #[test]
    fn small_blocks_touch_less_than_chunk() {
        let mut t = StorageTarget::new(StorageConfig::default(), 1);
        let p = t.plan_read(0, 0, 64 * 1024);
        assert_eq!(p.touch_len, 64 * 1024);
        assert_eq!(t.config().chunk_size, 512 * 1024);
        assert_eq!(p.pages, 16);
    }

    #[test]
    fn comm_pool_size_matches_tgt() {
        let t = StorageTarget::new(StorageConfig::default(), 32);
        // 512 KB * 2048 chunks = 1 GiB — tgt's static buffer.
        assert_eq!(t.comm_pool_bytes(), ByteSize::gib(1));
    }

    #[test]
    fn fio_reads_are_aligned_and_in_bounds() {
        let mut f = FioClient::new(512 * 1024, ByteSize::gib(4), SimRng::new(1));
        for _ in 0..1000 {
            let (off, len) = f.next_read();
            assert_eq!(off % (512 * 1024), 0);
            assert!(off + len <= ByteSize::gib(4).bytes());
        }
        assert_eq!(f.issued(), 1000);
    }

    #[test]
    #[should_panic(expected = "beyond LUN")]
    fn read_past_lun_panics() {
        let mut t = StorageTarget::new(StorageConfig::default(), 1);
        t.plan_read(0, ByteSize::gib(4).bytes(), 4096);
    }
}
