//! The IOprovider side of the backup ring (§5 "Driver").
//!
//! The backup ring's interrupt handler drains NIC-provided entries into
//! a per-IOuser software queue `q` and wakes a resolver thread `T`.
//! `T` resolves each packet's rNPF (faulting the IOuser buffer in,
//! updating the IOMMU), copies the packet into the IOuser ring, and
//! notifies the NIC (`resolve_rNPFs`). When the IOuser ring has no room
//! (the IOuser cannot post buffers because it has not been told about
//! new packets), `T` asks the NIC for a tail interrupt and waits.
//!
//! All IOusers stay **unaware**: they observe only their own ring, with
//! packets arriving in order.

use std::collections::{HashMap, VecDeque};

use memsim::manager::MemError;
use memsim::types::VirtAddr;
use nicsim::rx::{BackupEntry, RingId, RxEngine};
use simcore::journal;
use simcore::stats::Counters;
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{self, ArgValue};

use iommu::DomainId;

use crate::npf::NpfEngine;

/// One step outcome of the resolver thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveStep {
    /// A packet was merged back. `notify_iouser` reports whether the
    /// ring head advanced (deliver an IOuser interrupt). `cost` is the
    /// CPU+device time consumed; `ready_at` is when the merge completes
    /// (fault resolution may dominate).
    Resolved {
        /// Ring the packet went to.
        ring: RingId,
        /// Whether the IOuser should be interrupted.
        notify_iouser: bool,
        /// When the work finishes.
        ready_at: SimTime,
    },
    /// The target IOuser ring has no descriptor for the packet yet; the
    /// driver armed a tail interrupt and parked the packet.
    WaitingForRing(RingId),
    /// Nothing queued.
    Idle,
}

/// Per-tenant resolver activity (scale-out metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Backup entries drained for this ring.
    pub drained: u64,
    /// Packets merged back into this ring.
    pub merged: u64,
    /// Times this ring's resolver parked awaiting a tail interrupt.
    pub parked: u64,
}

/// The backup-ring driver.
#[derive(Debug)]
pub struct BackupDriver<P> {
    /// Per-IOuser software queues (`q` in the paper).
    queues: HashMap<RingId, VecDeque<BackupEntry<P>>>,
    /// Rings whose resolver is parked awaiting a tail interrupt.
    parked: HashMap<RingId, bool>,
    /// Domain of each ring (for IOMMU updates).
    domains: HashMap<RingId, DomainId>,
    /// Number of buffer slots each ring cycles through (slot address
    /// reconstruction).
    ring_slots: HashMap<RingId, u64>,
    /// Per-ring resolver activity.
    ring_stats: HashMap<RingId, RingStats>,
    counters: Counters,
}

impl<P: Clone> Default for BackupDriver<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Clone> BackupDriver<P> {
    /// Creates an idle driver.
    #[must_use]
    pub fn new() -> Self {
        BackupDriver {
            queues: HashMap::new(),
            parked: HashMap::new(),
            domains: HashMap::new(),
            ring_slots: HashMap::new(),
            ring_stats: HashMap::new(),
            counters: Counters::new(),
        }
    }

    /// Statistics: `drained`, `merged`, `parked`.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-tenant resolver activity for one ring.
    #[must_use]
    pub fn ring_stats(&self, ring: RingId) -> RingStats {
        self.ring_stats.get(&ring).copied().unwrap_or_default()
    }

    /// Associates a ring with its IOMMU domain and its buffer-slot
    /// count (channel setup). Ring buffers follow the testbed
    /// convention: a page-per-slot array at [`crate::RX_BUFFER_BASE`],
    /// reused modulo `slots`.
    pub fn bind_ring(&mut self, ring: RingId, domain: DomainId, slots: u64) {
        self.domains.insert(ring, domain);
        self.ring_slots.insert(ring, slots.max(1));
    }

    /// Total packets parked in software queues.
    #[must_use]
    pub fn queued_packets(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Backup-ring interrupt handler: drains the NIC's backup entries
    /// into per-IOuser queues. Returns the rings that now have work and
    /// the handler's CPU cost.
    pub fn on_backup_interrupt(
        &mut self,
        engine: &NpfEngine,
        rx: &mut RxEngine<P>,
    ) -> (Vec<RingId>, SimDuration) {
        let mut woken = Vec::new();
        let mut drained = 0u64;
        while let Some(entry) = rx.pop_backup() {
            let ring = entry.ring;
            self.queues.entry(ring).or_default().push_back(entry);
            self.ring_stats.entry(ring).or_default().drained += 1;
            if !woken.contains(&ring) {
                woken.push(ring);
            }
            drained += 1;
        }
        self.counters.add("drained", drained);
        if trace::enabled() {
            trace::instant_now(
                "backup_driver",
                "backup_interrupt",
                vec![("drained", ArgValue::U64(drained))],
            );
            trace::counter_now("backup_driver", "queue_depth", self.queued_packets() as f64);
            trace::metrics(|m| m.counter_add("backup_driver.drained", drained));
        }
        let cost = engine.config().cost.interrupt_dispatch
            + engine.config().cost.backup_resolver_per_packet * drained.max(1);
        (woken, cost)
    }

    /// One resolver-thread step for `ring`: take the head packet of its
    /// queue, resolve the fault, merge the packet back.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from fault resolution.
    pub fn resolve_step(
        &mut self,
        now: SimTime,
        engine: &mut NpfEngine,
        rx: &mut RxEngine<P>,
        ring: RingId,
    ) -> Result<ResolveStep, MemError> {
        let Some(q) = self.queues.get_mut(&ring) else {
            return Ok(ResolveStep::Idle);
        };
        let Some(entry) = q.front() else {
            return Ok(ResolveStep::Idle);
        };
        let domain = *self.domains.get(&ring).expect("ring bound to a domain");

        // Find where the packet must land. The descriptor may not be
        // posted yet: park and request a tail interrupt.
        let target_index = entry.target_index;
        if target_index >= rx.tail(ring) {
            rx.request_tail_interrupt(ring);
            self.parked.insert(ring, true);
            self.counters.bump("parked");
            self.ring_stats.entry(ring).or_default().parked += 1;
            if trace::enabled() {
                trace::instant(
                    now,
                    "backup_driver",
                    "parked",
                    vec![
                        ("ring", ArgValue::U64(u64::from(ring.0))),
                        ("target_index", ArgValue::U64(target_index)),
                    ],
                );
                trace::metrics(|m| m.counter_add("backup_driver.parked", 1));
            }
            return Ok(ResolveStep::WaitingForRing(ring));
        }

        let entry = q.pop_front().expect("checked front");
        // Resolve the rNPF: make the buffer pages resident and mapped.
        // The descriptor address comes from the NIC metadata via the
        // ring slot; target buffers are page-sized in our testbeds, so
        // fault the page(s) the packet touches.
        let buf_addr = self.slot_addr(rx, ring, target_index);
        let mut ready_at = now;
        let mut cost = engine.config().cost.backup_resolver_per_packet;
        if !engine.dma_ready(domain, buf_addr, entry.len.max(1), true) {
            if let Some(fid) = engine.pending_fault_covering(domain, buf_addr, entry.len.max(1)) {
                // Another packet already started this fault; wait for it.
                let rec = engine.pending_fault(fid).expect("pending");
                ready_at = ready_at.max(rec.ready_at);
                // The mapping installs when that fault completes; the
                // testbed orders completion before this merge by time.
            } else {
                let rec = engine
                    .begin_fault(now, domain, buf_addr, entry.len.max(1), true, None)?
                    .clone();
                ready_at = ready_at.max(rec.ready_at);
                engine.complete_fault(rec.id);
            }
        }
        // Copy the packet into the IOuser buffer.
        cost += engine.config().cost.memcpy(entry.len);
        let placed = rx.place_resolved(ring, target_index, entry.payload.clone(), entry.len);
        assert!(placed, "descriptor checked above");
        let notify = rx.resolve_rnpfs(ring, entry.bit_index);
        self.counters.bump("merged");
        self.ring_stats.entry(ring).or_default().merged += 1;
        journal::mark_at(ready_at + cost, journal::MarkKind::ReplayDrain, entry.len);
        if trace::enabled() {
            trace::span(
                now,
                (ready_at + cost).saturating_since(now),
                "backup_driver",
                "merge_back",
                vec![
                    ("ring", ArgValue::U64(u64::from(ring.0))),
                    ("len", ArgValue::U64(entry.len)),
                    ("notify_iouser", ArgValue::Bool(notify)),
                ],
            );
            trace::counter(
                now,
                "backup_driver",
                "queue_depth",
                self.queued_packets() as f64,
            );
            trace::metrics(|m| m.counter_add("backup_driver.merged", 1));
        }
        Ok(ResolveStep::Resolved {
            ring,
            notify_iouser: notify,
            ready_at: ready_at + cost,
        })
    }

    /// The IOuser posted descriptors (tail interrupt fired): unpark the
    /// ring's resolver. Returns `true` when it was parked.
    pub fn on_tail_interrupt(&mut self, ring: RingId) -> bool {
        self.parked.remove(&ring).unwrap_or(false)
    }

    /// `true` when `ring` still has queued packets.
    #[must_use]
    pub fn has_work(&self, ring: RingId) -> bool {
        self.queues.get(&ring).is_some_and(|q| !q.is_empty())
    }

    /// The buffer address of slot `index` — in the real hardware this
    /// comes from the descriptor; the testbeds use page-aligned
    /// per-slot buffers recorded at post time. We reconstruct it from
    /// the NIC's metadata path.
    fn slot_addr(&self, _rx: &RxEngine<P>, ring: RingId, index: u64) -> VirtAddr {
        // Testbed convention: ring buffers are a contiguous page-per-
        // slot array starting at RX_BUFFER_BASE in every IOuser space,
        // reused modulo the ring's slot count.
        let slots = self.ring_slots.get(&ring).copied().unwrap_or(4096);
        VirtAddr(crate::RX_BUFFER_BASE + (index % slots) * memsim::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npf::{NpfConfig, NpfEngine};
    use memsim::manager::{MemConfig, MemoryManager};
    use memsim::space::Backing;
    use memsim::types::PageRange;
    use nicsim::rx::{RxDescriptor, RxFaultMode, RxVerdict};
    use simcore::rng::SimRng;
    use simcore::units::ByteSize;

    const R: RingId = RingId(0);

    fn setup() -> (
        NpfEngine,
        RxEngine<&'static str>,
        BackupDriver<&'static str>,
    ) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(64),
            ..MemConfig::default()
        });
        let mut engine = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(3));
        let space = engine.memory_mut().create_space();
        // Map the testbed's RX buffer region in the IOuser space.
        let base_vpn = memsim::types::VirtAddr(crate::RX_BUFFER_BASE).vpn();
        let range = PageRange::new(base_vpn, 4096);
        engine
            .memory_mut()
            .mmap_fixed(space, range, Backing::Anonymous)
            .expect("fixed RX buffer mapping");
        let domain = engine.create_channel(space);
        let mut rx = RxEngine::new(RxFaultMode::BackupRing { capacity: 256 });
        rx.create_ring(R, 64, 128);
        let mut driver = BackupDriver::new();
        driver.bind_ring(R, domain, 64);
        (engine, rx, driver)
    }

    fn post(rx: &mut RxEngine<&'static str>, n: u64, start: u64) {
        for i in 0..n {
            rx.post_descriptor(
                R,
                RxDescriptor {
                    addr: VirtAddr(crate::RX_BUFFER_BASE + ((start + i) % 4096) * 4096),
                    capacity: 2048,
                },
            );
        }
    }

    #[test]
    fn faulting_packet_merges_back_in_order() {
        let (mut engine, mut rx, mut driver) = setup();
        post(&mut rx, 4, 0);
        // Cold buffers: the first packet faults into the backup ring.
        let v = rx.recv(R, "p0", 1000, false);
        assert!(matches!(v, RxVerdict::Backup { .. }));
        // Subsequent packet stores fine (pretend present) but stays
        // unannounced.
        rx.recv(R, "p1", 900, true);
        assert_eq!(rx.readable_packets(R), 0);

        let (woken, cost) = driver.on_backup_interrupt(&engine, &mut rx);
        assert_eq!(woken, vec![R]);
        assert!(cost > SimDuration::ZERO);

        let step = driver
            .resolve_step(SimTime::ZERO, &mut engine, &mut rx, R)
            .expect("step");
        let ResolveStep::Resolved {
            ring,
            notify_iouser,
            ready_at,
        } = step
        else {
            panic!("expected resolution, got {step:?}");
        };
        assert_eq!(ring, R);
        assert!(notify_iouser, "head advanced past both packets");
        assert!(ready_at > SimTime::from_micros(100), "fault dominates");
        assert_eq!(rx.readable_packets(R), 2);
        assert_eq!(rx.consume(R), Some(("p0", 1000)));
        assert_eq!(rx.consume(R), Some(("p1", 900)));
    }

    #[test]
    fn missing_descriptor_parks_until_tail_interrupt() {
        let (mut engine, mut rx, mut driver) = setup();
        // No descriptors posted at all: packet goes to backup with a
        // future target.
        let v = rx.recv(R, "p0", 500, true);
        assert!(matches!(v, RxVerdict::Backup { .. }));
        driver.on_backup_interrupt(&engine, &mut rx);
        let step = driver
            .resolve_step(SimTime::ZERO, &mut engine, &mut rx, R)
            .expect("step");
        assert_eq!(step, ResolveStep::WaitingForRing(R));
        assert!(driver.has_work(R));
        // IOuser posts; the tail interrupt unparks the resolver.
        let fired = rx.post_descriptor(
            R,
            RxDescriptor {
                addr: VirtAddr(crate::RX_BUFFER_BASE),
                capacity: 2048,
            },
        );
        assert!(fired);
        assert!(driver.on_tail_interrupt(R));
        let step = driver
            .resolve_step(SimTime::from_micros(10), &mut engine, &mut rx, R)
            .expect("step");
        assert!(matches!(step, ResolveStep::Resolved { .. }));
        assert_eq!(rx.consume(R), Some(("p0", 500)));
    }

    #[test]
    fn idle_ring_reports_idle() {
        let (mut engine, mut rx, mut driver) = setup();
        let step = driver
            .resolve_step(SimTime::ZERO, &mut engine, &mut rx, R)
            .expect("step");
        assert_eq!(step, ResolveStep::Idle);
    }
}
