//! The NPF engine: the IOprovider driver of Figure 2.
//!
//! Owns the host [`MemoryManager`] and the [`Iommu`] and implements both
//! flows of Figure 2:
//!
//! * **NPF flow (1–4):** the NIC raises a fault; the driver queries the
//!   OS (allocating / swapping in pages), batch-updates the I/O page
//!   tables, and tells the NIC to resume. Batching and pre-faulting of
//!   whole scatter-gather ranges is the paper's third optimization; the
//!   firmware-bypass resume is the second; the per-channel concurrency
//!   limit (four outstanding faults) is the first.
//! * **Invalidation flow (a–d):** when the OS reclaims a page (an MMU
//!   notifier in Linux), the driver removes the IOMMU mapping — cheap
//!   when the page was never mapped, since ODP maps lazily.
//!
//! The engine is sans-IO: `begin_fault` computes *when* the fault will
//! be resolved and `complete_fault` applies the IOMMU update; the
//! testbed schedules the completion event.

use simcore::fxhash::FxHashMap;
use std::collections::HashMap;

use iommu::{DomainId, Iommu, TableMode};
use memsim::manager::{Invalidation, MemError, MemoryManager};
use memsim::types::{PageRange, SpaceId, VirtAddr, Vpn};
use memsim::FrameId;
use simcore::chaos::{invariant, ChaosEngine, NpfFate};
use simcore::rng::SimRng;
use simcore::stats::{Counters, DurationHistogram};
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{self, ArgValue};

use crate::cost::{CostModel, NpfBreakdown};

/// Engine configuration: the paper's optimizations as toggles, for the
/// ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct NpfConfig {
    /// Costs in force.
    pub cost: CostModel,
    /// Maximum concurrently-serviced faults per channel (the prototype
    /// uses four, §4). Extra faults queue behind outstanding ones.
    pub concurrent_faults_per_channel: u32,
    /// Resolve the NIC-provided *entire* scatter-gather range per fault
    /// event (`true`, the paper's design) or one page per event (ATS/PRI
    /// discipline — the ablation showing >220 ms cold 4 MB messages).
    pub batch_resolution: bool,
    /// Use the firmware-bypass fast resume.
    pub firmware_bypass: bool,
}

impl Default for NpfConfig {
    fn default() -> Self {
        NpfConfig {
            cost: CostModel::default(),
            concurrent_faults_per_channel: 4,
            batch_resolution: true,
            firmware_bypass: false,
        }
    }
}

/// A fault in flight.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// Correlation id.
    pub id: u64,
    /// Faulting channel's IOMMU domain.
    pub domain: DomainId,
    /// Owning address space.
    pub space: SpaceId,
    /// Pages being resolved by this event.
    pub range: PageRange,
    /// Write access?
    pub write: bool,
    /// When resolution completes and the NIC may resume.
    pub ready_at: SimTime,
    /// Cost breakdown (for Figure 3 / Table 4).
    pub breakdown: NpfBreakdown,
    /// Mappings to install at completion.
    mappings: Vec<(Vpn, FrameId)>,
}

/// The NPF engine.
#[derive(Debug)]
pub struct NpfEngine {
    config: NpfConfig,
    mm: MemoryManager,
    iommu: Iommu,
    bindings: FxHashMap<DomainId, SpaceId>,
    pending: FxHashMap<u64, FaultRecord>,
    /// Completion times of outstanding faults, per domain (concurrency
    /// limiting).
    outstanding: FxHashMap<DomainId, Vec<SimTime>>,
    next_fault: u64,
    rng: SimRng,
    /// Invariant-note namespace: salts fault ids (and, via the
    /// allocator and IOMMU, frame/domain ids) so engines never alias
    /// inside one process-global checker.
    chaos_ns: u64,
    /// Fault injector for the NPF resolution path (None = chaos off).
    chaos: Option<ChaosEngine>,
    counters: Counters,
    fault_latency: DurationHistogram,
    fault_latency_by_tag: HashMap<&'static str, DurationHistogram>,
    last_breakdown: Option<NpfBreakdown>,
}

impl NpfEngine {
    /// Creates an engine over `mm` with an IOTLB of 4096 entries.
    #[must_use]
    pub fn new(config: NpfConfig, mut mm: MemoryManager, rng: SimRng) -> Self {
        // One shared note namespace per engine: the allocator's frame
        // ids and the IOMMU's domain/frame ids must agree with each
        // other but never alias another node's.
        let ns = invariant::fresh_namespace();
        mm.set_chaos_namespace(ns);
        let mut iommu = Iommu::new(4096);
        iommu.set_chaos_namespace(ns);
        NpfEngine {
            config,
            mm,
            iommu,
            bindings: FxHashMap::default(),
            pending: FxHashMap::default(),
            outstanding: FxHashMap::default(),
            next_fault: 0,
            rng,
            chaos_ns: ns,
            chaos: None,
            counters: Counters::new(),
            fault_latency: DurationHistogram::new(),
            fault_latency_by_tag: HashMap::new(),
            last_breakdown: None,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &NpfConfig {
        &self.config
    }

    /// The host memory manager.
    #[must_use]
    pub fn memory(&self) -> &MemoryManager {
        &self.mm
    }

    /// Mutable host memory access — for CPU-side workload touches. Use
    /// [`NpfEngine::touch`] instead when invalidation propagation is
    /// needed (it almost always is).
    pub fn memory_mut(&mut self) -> &mut MemoryManager {
        &mut self.mm
    }

    /// The IOMMU.
    #[must_use]
    pub fn iommu(&self) -> &Iommu {
        &self.iommu
    }

    /// Mutable IOMMU access.
    pub fn iommu_mut(&mut self) -> &mut Iommu {
        &mut self.iommu
    }

    /// Statistics: `npf_events`, `npf_pages`, `npf_major`,
    /// `invalidations`, `invalidations_mapped`.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// End-to-end fault latency histogram (Table 4).
    pub fn fault_latency(&mut self) -> &mut DurationHistogram {
        &mut self.fault_latency
    }

    /// Latency histogram for faults recorded under `tag` (e.g. one per
    /// message size).
    pub fn fault_latency_tagged(&mut self, tag: &'static str) -> &mut DurationHistogram {
        self.fault_latency_by_tag.entry(tag).or_default()
    }

    /// The breakdown of the most recent fault (Figure 3a plumbing).
    #[must_use]
    pub fn last_breakdown(&self) -> Option<NpfBreakdown> {
        self.last_breakdown
    }

    /// Creates an IOchannel: a page-fault-capable IOMMU domain bound to
    /// `space`.
    pub fn create_channel(&mut self, space: SpaceId) -> DomainId {
        let d = self.iommu.create_domain(TableMode::PageFaultCapable);
        self.bindings.insert(d, space);
        d
    }

    /// Creates a legacy (pinned-only) channel for baseline
    /// configurations.
    pub fn create_pinned_channel(&mut self, space: SpaceId) -> DomainId {
        let d = self.iommu.create_domain(TableMode::PinnedOnly);
        self.bindings.insert(d, space);
        d
    }

    /// The space a domain is bound to.
    ///
    /// # Panics
    ///
    /// Panics for unbound domains (wiring bug).
    #[must_use]
    pub fn space_of(&self, domain: DomainId) -> SpaceId {
        *self.bindings.get(&domain).expect("unbound domain")
    }

    /// Whether a DMA of `len` bytes at `addr` would currently succeed.
    #[must_use]
    pub fn dma_ready(&self, domain: DomainId, addr: VirtAddr, len: u64, write: bool) -> bool {
        self.iommu
            .probe_range(domain, PageRange::covering(addr, len.max(1)), write)
    }

    /// Is any pending fault already covering `addr..addr+len`? Returns
    /// its id — the NIC's in-flight-fault bitmap (§4's second
    /// optimization) maps onto this: repeated faults on the same range
    /// do not raise new events.
    #[must_use]
    pub fn pending_fault_covering(
        &self,
        domain: DomainId,
        addr: VirtAddr,
        len: u64,
    ) -> Option<u64> {
        let r = PageRange::covering(addr, len.max(1));
        // Lowest id, not first hit: `pending` is a HashMap, and when
        // several in-flight faults overlap the range, the winner must
        // not depend on hasher state. The lowest id is the earliest
        // raised — the fault the hardware bitmap would have kept.
        self.pending
            .values()
            .filter(|f| f.domain == domain && f.range.overlaps(r))
            .map(|f| f.id)
            .min()
    }

    /// A pending fault by id.
    #[must_use]
    pub fn pending_fault(&self, id: u64) -> Option<&FaultRecord> {
        self.pending.get(&id)
    }

    /// Number of unresolved faults.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Begins resolving an NPF for `addr..addr+len` in `domain`,
    /// optionally tagging the latency sample. Returns the fault record;
    /// the caller schedules `complete_fault(id)` at `record.ready_at`.
    ///
    /// The OS work (allocation, swap-in, reclaim) happens *now*; the
    /// IOMMU mappings are installed at completion. Invalidation costs of
    /// any reclaim are folded into the driver component.
    ///
    /// # Errors
    ///
    /// Propagates memory errors (OOM, swap full).
    pub fn begin_fault(
        &mut self,
        now: SimTime,
        domain: DomainId,
        addr: VirtAddr,
        len: u64,
        write: bool,
        tag: Option<&'static str>,
    ) -> Result<&FaultRecord, MemError> {
        let space = self.space_of(domain);
        let full_range = PageRange::covering(addr, len.max(1));
        // ATS/PRI ablation: one page per fault event.
        let range = if self.config.batch_resolution {
            full_range
        } else {
            PageRange::new(full_range.start, 1)
        };

        // Resolve all non-resident pages and collect mappings for the
        // whole (possibly batched) range.
        let mut os_cost = SimDuration::ZERO;
        let mut mappings = Vec::new();
        let mut invalidation_cost = SimDuration::ZERO;
        let mut major = false;
        // One pass over the page tables for the whole scatter-gather
        // range (the VMA and each PTE leaf are resolved once), then the
        // per-page fault logic runs on the collected entries.
        let mut ptes = Vec::with_capacity(range.pages as usize);
        self.mm
            .space(space)?
            .for_each_pte(range, |vpn, pte| ptes.push((vpn, pte)))?;
        for (vpn, pte) in ptes {
            let frame = if let Some(f) = pte.frame() {
                if write && pte.cow {
                    // A DMA write to a COW-shared page must break the
                    // sharing first (otherwise the device would scribble
                    // on the other sharers' frame).
                    let access = self.mm.touch(space, vpn, true)?;
                    let broke = access.fault.expect("COW break reports a fault");
                    os_cost += broke.cost;
                    for inv in &broke.invalidations {
                        invalidation_cost += self.run_invalidation(*inv);
                    }
                    broke.frame
                } else {
                    f
                }
            } else {
                let res = self.mm.resolve_fault(space, vpn, write)?;
                // Only the I/O share: the driver's own software costs
                // (per-page translation, PT updates) come from the
                // calibrated cost model below.
                os_cost += res.io_cost;
                major |= res.kind == memsim::FaultKind::Major;
                if res.kind == memsim::FaultKind::Major {
                    self.counters.bump("npf_major");
                }
                // Reclaim may have revoked other pages: purge their
                // IOMMU mappings now (Figure 2 a–d).
                for inv in &res.invalidations {
                    invalidation_cost += self.run_invalidation(*inv);
                }
                res.frame
            };
            mappings.push((vpn, frame));
        }

        let breakdown = self.config.cost.npf(
            range.pages,
            os_cost + invalidation_cost,
            self.config.firmware_bypass,
            &mut self.rng,
        );

        // Concurrency limiting: if the channel already has the maximum
        // outstanding faults, this one starts after the earliest
        // completes.
        let slots = self.outstanding.entry(domain).or_default();
        slots.retain(|&t| t > now);
        let start = if slots.len() >= self.config.concurrent_faults_per_channel as usize {
            let (idx, &earliest) = slots
                .iter()
                .enumerate()
                .min_by_key(|&(_, t)| *t)
                .expect("nonempty");
            slots.remove(idx);
            earliest
        } else {
            now
        };
        let ready_at = start + breakdown.total();
        // Chaos: NPF resolution delay / transient-failure / retry. The
        // perturbed time extends the outstanding slot too, so the
        // concurrency limiter sees the real completion.
        let ready_at = match self.chaos.as_mut().map(ChaosEngine::npf_fate) {
            None | Some(NpfFate::Normal) => ready_at,
            Some(NpfFate::Delay { extra }) => {
                self.counters.bump("npf_chaos_delays");
                ready_at + extra
            }
            Some(NpfFate::Transient {
                retries,
                retry_delay,
            }) => {
                self.counters.add("npf_chaos_retries", u64::from(retries));
                ready_at + SimDuration::from_nanos(retry_delay.as_nanos() * u64::from(retries))
            }
        };
        slots.push(ready_at);

        let id = self.next_fault;
        self.next_fault += 1;
        self.counters.bump("npf_events");
        self.counters.add("npf_pages", range.pages);
        let latency = ready_at.saturating_since(now);
        self.fault_latency.record(latency);
        if let Some(t) = tag {
            self.fault_latency_by_tag
                .entry(t)
                .or_default()
                .record(latency);
        }
        self.last_breakdown = Some(breakdown);

        if trace::enabled() {
            // The fault lifecycle span, decomposed into Figure 3's five
            // components (i)–(v). The children tile the parent exactly:
            // `driver` = pure driver software + the OS translation work
            // it blocks on, split here so the trace shows both.
            let os_total = os_cost + invalidation_cost;
            let driver_sw = breakdown.driver.saturating_sub(os_total);
            let os_span = breakdown.driver - driver_sw;
            let parent = trace::span(
                start,
                breakdown.total(),
                "npf",
                "npf",
                vec![
                    ("fault_id", ArgValue::U64(id)),
                    ("pages", ArgValue::U64(range.pages)),
                    ("write", ArgValue::Bool(write)),
                    ("major", ArgValue::Bool(major)),
                    (
                        "queued_us",
                        ArgValue::F64(start.saturating_since(now).as_micros_f64()),
                    ),
                ],
            );
            if let Some(parent) = parent {
                let mut at = start;
                for (name, d) in [
                    ("fault_trigger", breakdown.trigger_interrupt),
                    ("driver_sw", driver_sw),
                    ("os_translate", os_span),
                    ("update_hw_pt", breakdown.update_hw_pt),
                    ("resume", breakdown.resume),
                ] {
                    trace::child_span(at, d, "npf", name, parent, Vec::new());
                    at += d;
                }
            }
            trace::counter(
                now,
                "npf",
                "pending_faults",
                (self.pending.len() + 1) as f64,
            );
            trace::metrics(|m| {
                m.counter_add("npf.events", 1);
                m.counter_add("npf.pages", range.pages);
                m.duration_record("npf.latency", latency);
            });
        }

        let record = FaultRecord {
            id,
            domain,
            space,
            range,
            write,
            ready_at,
            breakdown,
            mappings,
        };
        invariant::note_fault_begun((self.chaos_ns << 32) | id, now);
        self.pending.insert(id, record);
        Ok(self.pending.get(&id).expect("just inserted"))
    }

    /// Completes a fault: installs the IOMMU mappings so subsequent DMA
    /// succeeds. Call at `ready_at`.
    ///
    /// # Panics
    ///
    /// Panics for unknown fault ids.
    pub fn complete_fault(&mut self, id: u64) -> FaultRecord {
        let record = self.pending.remove(&id).expect("unknown fault id");
        invariant::note_fault_resolved((self.chaos_ns << 32) | id);
        if trace::enabled() {
            trace::instant(
                record.ready_at,
                "npf",
                "fault_complete",
                vec![
                    ("fault_id", ArgValue::U64(id)),
                    ("pages", ArgValue::U64(record.range.pages)),
                ],
            );
            trace::counter(
                record.ready_at,
                "npf",
                "pending_faults",
                self.pending.len() as f64,
            );
        }
        // Pages may have been reclaimed again between fault start and
        // completion under extreme pressure; map only what is still
        // resident (the next access faults again, which is correct).
        let still_resident: Vec<(Vpn, FrameId)> = match self.mm.space(record.space) {
            Ok(s) => record
                .mappings
                .iter()
                .copied()
                .filter(|&(vpn, frame)| s.frame_of(vpn) == Some(frame))
                .collect(),
            Err(_) => Vec::new(),
        };
        self.iommu
            .map_batch(record.domain, &still_resident, true);
        record
    }

    /// Arms the NPF-resolution fault injector. The engine draws one
    /// [`NpfFate`] per fault from the injector's dedicated stream.
    pub fn set_chaos(&mut self, chaos: ChaosEngine) {
        self.chaos = Some(chaos);
    }

    /// The engine's fault injector, when armed.
    #[must_use]
    pub fn chaos(&self) -> Option<&ChaosEngine> {
        self.chaos.as_ref()
    }

    /// Chaos memory pressure: forcibly reclaims up to `pages` pages and
    /// runs the Figure 2 invalidation flow for every revoked mapping,
    /// exactly as organic reclaim would. Returns pages invalidated.
    pub fn chaos_evict(&mut self, pages: u64) -> u64 {
        let invalidations = self.mm.reclaim(pages);
        let n = invalidations.len() as u64;
        for inv in invalidations {
            self.run_invalidation(inv);
        }
        n
    }

    /// Chaos IOTLB shootdown: flushes every cached translation, racing
    /// any in-flight resolution. Returns entries flushed.
    pub fn chaos_shootdown(&mut self) -> u64 {
        self.iommu.shootdown_all()
    }

    /// Runs the Figure 2 invalidation flow for one revoked page,
    /// returning its cost.
    fn run_invalidation(&mut self, inv: Invalidation) -> SimDuration {
        self.counters.bump("invalidations");
        // Find the domains bound to the space that lost the page.
        // Sorted: `bindings` is a HashMap, and its iteration order
        // depends on the map's hasher state — the one thing allowed to
        // differ between two runs of the same seed. Every observable
        // consequence (trace records, cost attribution order) must not.
        let mut domains: Vec<DomainId> = self
            .bindings
            .iter()
            .filter(|(_, &s)| s == inv.space)
            .map(|(&d, _)| d)
            .collect();
        domains.sort_unstable();
        let mut cost = SimDuration::ZERO;
        for d in domains {
            let was_mapped = self.iommu.invalidate(d, inv.vpn);
            if was_mapped {
                self.counters.bump("invalidations_mapped");
            }
            cost += self.config.cost.invalidation(1, was_mapped).total();
            if trace::enabled() {
                // No `now` in scope (invalidations arrive from MMU
                // notifier callbacks); stamp with the recorder clock.
                trace::instant_now(
                    "npf",
                    "invalidation",
                    vec![
                        ("vpn", ArgValue::U64(inv.vpn.0)),
                        ("was_mapped", ArgValue::Bool(was_mapped)),
                    ],
                );
                trace::metrics(|m| m.counter_add("npf.invalidations", 1));
            }
        }
        cost
    }

    /// Forks an IOuser's address space with COW sharing and runs the
    /// resulting invalidation storm against the IOMMU (§5 names forking
    /// as a cause of cold sequences: every formerly-mapped page must be
    /// re-faulted before the NIC can DMA again). Returns the child space
    /// and the total invalidation cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn fork_iouser(&mut self, parent: SpaceId) -> Result<(SpaceId, SimDuration), MemError> {
        let (child, invalidations) = self.mm.fork_space(parent)?;
        let mut cost = SimDuration::ZERO;
        for inv in invalidations {
            cost += self.run_invalidation(inv);
        }
        Ok((child, cost))
    }

    /// CPU-side touch with invalidation propagation: workloads use this
    /// instead of raw `MemoryManager::touch`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn touch(
        &mut self,
        space: SpaceId,
        vpn: Vpn,
        write: bool,
    ) -> Result<SimDuration, MemError> {
        let access = self.mm.touch(space, vpn, write)?;
        let mut cost = access.cost();
        for inv in access.invalidations().to_vec() {
            cost += self.run_invalidation(inv);
        }
        Ok(cost)
    }

    /// Touches a whole byte range (see [`NpfEngine::touch`]).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn touch_range(
        &mut self,
        space: SpaceId,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> Result<SimDuration, MemError> {
        let (cpu, io) = self.touch_range_split(space, addr, len, write)?;
        Ok(cpu + io)
    }

    /// Like [`NpfEngine::touch_range`] but splits the cost into a CPU
    /// share and a blocking-I/O share (major-fault disk waits). Hosts
    /// with a CPU model charge only the CPU share to a core; the I/O
    /// share is wall-clock sleep.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn touch_range_split(
        &mut self,
        space: SpaceId,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> Result<(SimDuration, SimDuration), MemError> {
        let mut cpu = SimDuration::ZERO;
        let mut io = SimDuration::ZERO;
        for vpn in PageRange::covering(addr, len.max(1)).iter() {
            let access = self.mm.touch(space, vpn, write)?;
            let total = access.cost();
            let fault_io = access
                .fault
                .as_ref()
                .map_or(SimDuration::ZERO, |res| res.io_cost);
            cpu += total.saturating_sub(fault_io);
            io += fault_io;
            for inv in access.invalidations().to_vec() {
                cpu += self.run_invalidation(inv);
            }
        }
        Ok((cpu, io))
    }

    /// Pins a range and maps it in the IOMMU (registration-time work of
    /// the pinning strategies). Returns the total cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors, including `RLIMIT_MEMLOCK`.
    pub fn pin_and_map(
        &mut self,
        domain: DomainId,
        range: PageRange,
    ) -> Result<SimDuration, MemError> {
        let space = self.space_of(domain);
        let outcome = self.mm.pin_range(space, range)?;
        let mut cost = outcome.cost;
        for inv in outcome.invalidations {
            cost += self.run_invalidation(inv);
        }
        let mut mappings = Vec::with_capacity(range.pages as usize);
        {
            let s = self.mm.space(space)?;
            for vpn in range.iter() {
                let frame = s.frame_of(vpn).expect("pinned page is resident");
                mappings.push((vpn, frame));
            }
        }
        self.iommu.map_batch(domain, &mappings, true);
        cost += self.config.cost.register_pinned(range.pages);
        Ok(cost)
    }

    /// Unpins and unmaps a range, returning the cost.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn unpin_and_unmap(
        &mut self,
        domain: DomainId,
        range: PageRange,
    ) -> Result<SimDuration, MemError> {
        let space = self.space_of(domain);
        self.mm.unpin_range(space, range)?;
        self.iommu.invalidate_range(domain, range);
        Ok(self.config.cost.deregister_pinned(range.pages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    fn engine() -> (NpfEngine, SpaceId, DomainId, PageRange) {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(16),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let space = e.memory_mut().create_space();
        let range = e
            .memory_mut()
            .mmap(space, ByteSize::mib(4), Backing::Anonymous)
            .expect("mmap");
        let domain = e.create_channel(space);
        (e, space, domain, range)
    }

    #[test]
    fn fault_lifecycle_installs_mappings() {
        let (mut e, _s, d, r) = engine();
        let addr = r.start.base();
        assert!(!e.dma_ready(d, addr, 4096, true));
        let rec = e
            .begin_fault(SimTime::ZERO, d, addr, 4096, true, None)
            .expect("fault")
            .clone();
        assert!(rec.ready_at > SimTime::ZERO);
        assert!(
            !e.dma_ready(d, addr, 4096, true),
            "mapping invisible until completion"
        );
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, addr, 4096, true));
        assert_eq!(e.counters().get("npf_events"), 1);
    }

    #[test]
    fn minor_4kb_fault_latency_matches_paper() {
        let (mut e, _s, d, r) = engine();
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        let us = rec.ready_at.saturating_since(SimTime::ZERO).as_micros_f64();
        assert!((150.0..350.0).contains(&us), "got {us:.1} us");
    }

    #[test]
    fn batched_fault_resolves_whole_range() {
        let (mut e, _s, d, r) = engine();
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4 << 20, true, None)
            .expect("fault")
            .clone();
        assert_eq!(rec.range.pages, 1024);
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 4 << 20, true));
        assert_eq!(e.counters().get("npf_pages"), 1024);
    }

    #[test]
    fn unbatched_mode_resolves_one_page() {
        let mm = MemoryManager::new(MemConfig::default());
        let mut e = NpfEngine::new(
            NpfConfig {
                batch_resolution: false,
                ..NpfConfig::default()
            },
            mm,
            SimRng::new(1),
        );
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::mib(4), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4 << 20, true, None)
            .expect("fault")
            .clone();
        assert_eq!(rec.range.pages, 1);
        e.complete_fault(rec.id);
        assert!(!e.dma_ready(d, r.start.base(), 4 << 20, true));
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
    }

    #[test]
    fn concurrency_limit_queues_fifth_fault() {
        let (mut e, _s, d, r) = engine();
        let mut readies = Vec::new();
        for i in 0..5 {
            let rec = e
                .begin_fault(
                    SimTime::ZERO,
                    d,
                    Vpn(r.start.0 + i).base(),
                    4096,
                    true,
                    None,
                )
                .expect("fault")
                .clone();
            readies.push(rec.ready_at);
        }
        let min_first_four = readies[..4].iter().min().copied().expect("four");
        assert!(
            readies[4] >= min_first_four + SimDuration::from_micros(150),
            "fifth fault must wait for a slot: {readies:?}"
        );
    }

    #[test]
    fn pending_fault_covering_suppresses_duplicates() {
        let (mut e, _s, d, r) = engine();
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 8192, true, None)
            .expect("fault")
            .clone();
        assert_eq!(
            e.pending_fault_covering(d, r.start.base(), 4096),
            Some(rec.id)
        );
        assert_eq!(
            e.pending_fault_covering(d, Vpn(r.start.0 + 100).base(), 1),
            None
        );
        e.complete_fault(rec.id);
        assert_eq!(e.pending_fault_covering(d, r.start.base(), 4096), None);
    }

    #[test]
    fn reclaim_invalidates_iommu_mappings() {
        // Tiny memory: faulting in new pages evicts old ones, whose
        // IOMMU mappings must disappear.
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(32), // 8 frames
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        // Map the first page via a fault.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 1, true));
        // Touch every other page from the CPU until the first is
        // evicted.
        for vpn in r.iter().skip(1) {
            e.touch(s, vpn, true).expect("touch");
        }
        assert!(
            !e.dma_ready(d, r.start.base(), 1, true),
            "stale IOMMU mapping survived reclaim"
        );
        assert!(e.counters().get("invalidations_mapped") >= 1);
    }

    #[test]
    fn pin_and_map_makes_dma_ready() {
        let (mut e, _s, d, r) = engine();
        let sub = PageRange::new(r.start, 16);
        let cost = e.pin_and_map(d, sub).expect("pin");
        assert!(cost > SimDuration::ZERO);
        assert!(e.dma_ready(d, r.start.base(), 16 * 4096, true));
        let uncost = e.unpin_and_unmap(d, sub).expect("unpin");
        assert!(uncost > SimDuration::ZERO);
        assert!(!e.dma_ready(d, r.start.base(), 1, true));
    }

    #[test]
    fn major_faults_cost_disk_time() {
        // Force swapping with tiny memory, then fault a swapped page
        // back via the NPF path.
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::kib(16),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(1));
        let s = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(s, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(s);
        for vpn in r.iter() {
            e.touch(s, vpn, true).expect("touch");
        }
        // The first page was swapped out; an NPF on it is major.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 1, true, None)
            .expect("fault")
            .clone();
        assert!(
            rec.breakdown.total() > SimDuration::from_millis(4),
            "major fault must include disk latency, got {}",
            rec.breakdown.total()
        );
        assert_eq!(e.counters().get("npf_major"), 1);
    }
}

#[cfg(test)]
mod cow_fork_tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    /// §5's fork-causes-cold-sequences story, end to end: a DMA-ready
    /// channel loses its mappings when the IOuser forks, and the next
    /// DMA takes an NPF instead of corrupting the now-shared frame.
    #[test]
    fn fork_invalidates_dma_mappings() {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(32),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(5));
        let parent = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(parent, ByteSize::kib(64), Backing::Anonymous)
            .expect("mmap");
        let d = e.create_channel(parent);
        // Warm the channel: DMA-ready across the whole buffer.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 64 * 1024, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 64 * 1024, true));

        // Fork: the invalidation storm purges the parent's mappings.
        let (child, cost) = e.fork_iouser(parent).expect("fork");
        assert!(
            cost > SimDuration::from_micros(100),
            "16 invalidations cost time"
        );
        assert!(
            !e.dma_ready(d, r.start.base(), 1, true),
            "stale writable mapping must not survive the fork"
        );
        assert!(e.counters().get("invalidations_mapped") >= 16);

        // The cold sequence: the next DMA faults; resolution breaks COW
        // (write fault on a shared page) and the channel re-warms.
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("refault")
            .clone();
        e.complete_fault(rec.id);
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
        // The child still shares the remaining pages untouched.
        assert_eq!(e.memory().space(child).expect("child").resident_pages(), 16);
    }
}

#[cfg(test)]
mod cow_dma_tests {
    use super::*;
    use memsim::manager::MemConfig;
    use memsim::space::Backing;
    use simcore::units::ByteSize;

    /// A DMA write fault on a COW page breaks the sharing: the channel
    /// maps a *private* frame, never the shared one.
    #[test]
    fn dma_write_fault_breaks_cow() {
        let mm = MemoryManager::new(MemConfig {
            total_memory: ByteSize::mib(8),
            ..MemConfig::default()
        });
        let mut e = NpfEngine::new(NpfConfig::default(), mm, SimRng::new(6));
        let parent = e.memory_mut().create_space();
        let r = e
            .memory_mut()
            .mmap(parent, ByteSize::kib(4), Backing::Anonymous)
            .expect("mmap");
        e.memory_mut()
            .touch(parent, r.start, true)
            .expect("populate");
        let (child, _cost) = e.fork_iouser(parent).expect("fork");
        let shared = e.memory().space(child).expect("child").frame_of(r.start);

        // The parent's channel DMA-writes the page.
        let d = e.create_channel(parent);
        let rec = e
            .begin_fault(SimTime::ZERO, d, r.start.base(), 4096, true, None)
            .expect("fault")
            .clone();
        e.complete_fault(rec.id);
        let parent_frame = e.memory().space(parent).expect("parent").frame_of(r.start);
        assert_ne!(
            parent_frame, shared,
            "the DMA target must be a private copy, not the shared frame"
        );
        assert_eq!(
            e.memory().space(child).expect("child").frame_of(r.start),
            shared,
            "the child keeps the original"
        );
        assert!(e.dma_ready(d, r.start.base(), 4096, true));
        assert!(e.counters().get("npf_events") >= 1);
        assert_eq!(e.memory().counters().get("cow_breaks"), 1);
    }
}
